"""Baseline pipeline timing model (repro.uarch.pipeline), SP disabled."""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel, simulate


def run(instrs, config=None):
    return simulate(Trace(instrs), config or MachineConfig())


class TestBandwidth:
    def test_alu_ipc_is_width(self):
        stats = run([Instr(Op.ALU)] * 400)
        assert abs(stats.ipc - 4.0) < 0.5

    def test_instruction_count(self):
        stats = run([Instr(Op.ALU)] * 100)
        assert stats.instructions == 100

    def test_empty_trace(self):
        stats = run([])
        assert stats.cycles == 0
        assert stats.instructions == 0


class TestLoads:
    def test_cold_load_pays_full_miss(self):
        stats = run([Instr(Op.LOAD, 0x1000)])
        assert stats.cycles >= 105  # NVMM read dominates

    def test_warm_load_is_cheap(self):
        stats = run([Instr(Op.LOAD, 0x1000), Instr(Op.LOAD, 0x1000, meta="x")])
        # second load hits L1; total stays near the single miss
        assert stats.cycles < 160

    def test_dependent_chain_serialises(self):
        chain = [Instr(Op.LOAD, 0x1000 + i * 4096) for i in range(10)]
        stats = run(chain)
        assert stats.cycles >= 10 * 105

    def test_streaming_loads_overlap(self):
        streaming = [Instr(Op.LOAD, 0x1000 + i * 4096, meta="bulk") for i in range(10)]
        stats = run(streaming)
        assert stats.cycles < 2 * (2 + 11 + 20 + 105)

    def test_same_block_fields_share_fill(self):
        stats = run([Instr(Op.LOAD, 0x1000), Instr(Op.LOAD, 0x1010)])
        assert stats.cycles < 1.5 * (2 + 11 + 20 + 105)


class TestStores:
    def test_stores_do_not_stall_retirement(self):
        # stores retire at width pace even though they miss
        stats = run([Instr(Op.STORE, 0x1000 + i * 4096) for i in range(100)])
        assert stats.cycles < 500

    def test_store_counts(self):
        stats = run([Instr(Op.STORE, 0x40), Instr(Op.XCHG, 0x80)])
        assert stats.stores == 2


class TestSfenceSemantics:
    def test_sfence_waits_for_store_visibility(self):
        trace = [Instr(Op.STORE, 0x1000), Instr(Op.SFENCE)]
        stats = run(trace)
        assert stats.sfence_stall_cycles > 0

    def test_sfence_after_nothing_is_cheap(self):
        stats = run([Instr(Op.ALU), Instr(Op.SFENCE)])
        assert stats.sfence_stall_cycles == 0

    def test_barrier_stalls_for_pcommit(self):
        trace = [
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
        ]
        stats = run(trace)
        assert stats.sfence_stall_cycles > 50
        assert stats.pcommits == 1
        assert stats.sfences == 2

    def test_lone_pcommit_does_not_stall(self):
        trace = [Instr(Op.STORE, 0x1000), Instr(Op.CLWB, 0x1000), Instr(Op.PCOMMIT)]
        stats = run(trace)
        assert stats.sfence_stall_cycles == 0

    def test_barrier_cost_visible_in_cycles(self):
        body = [Instr(Op.ALU)] * 50
        plain = run(body * 4)
        barrier = [
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
        ]
        fenced = run((body + barrier) * 4)
        assert fenced.cycles > plain.cycles + 200


class TestBackpressure:
    def test_long_stall_causes_fetch_queue_stalls(self):
        barrier = [
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
        ]
        # enough trailing work to fill ROB + fetch queue during the stall
        trace = barrier + [Instr(Op.ALU)] * 400
        stats = run(trace)
        assert stats.fetch_stall_cycles > 0

    def test_no_fetch_stalls_without_fences(self):
        stats = run([Instr(Op.ALU)] * 400)
        assert stats.fetch_stall_cycles == 0


class TestInflightPcommitStats:
    def test_multiple_outstanding_pcommits(self):
        trace = []
        for i in range(6):
            trace.append(Instr(Op.STORE, 0x1000 + i * 64))
            trace.append(Instr(Op.CLWB, 0x1000 + i * 64))
            trace.append(Instr(Op.PCOMMIT))
        stats = run(trace)
        assert stats.max_inflight_pcommits >= 2

    def test_stores_during_pcommit_counted(self):
        trace = [
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.PCOMMIT),
            Instr(Op.STORE, 0x2000),
            Instr(Op.STORE, 0x3000),
        ]
        stats = run(trace)
        assert stats.stores_during_pcommit >= 2


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        trace = Trace(
            [Instr(Op.LOAD, 0x1000), Instr(Op.STORE, 0x2000), Instr(Op.ALU)] * 30
        )
        a = simulate(trace, MachineConfig())
        b = simulate(trace, MachineConfig())
        assert a.cycles == b.cycles

    def test_model_reusable_objects_fresh(self):
        trace = Trace([Instr(Op.LOAD, 0x1000)])
        first = PipelineModel(MachineConfig()).run(trace)
        second = PipelineModel(MachineConfig()).run(trace)
        assert first.cycles == second.cycles
