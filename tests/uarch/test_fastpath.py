"""Segment-walker fast path vs the reference model at its seams.

The walker switches regimes at fetch-queue/ROB occupancy boundaries,
between its warm-up/saturated/closed-form compute loops, and between the
fast phase and exact stepping around speculation.  These tests aim
synthetic traces squarely at those seams and require cycle-for-cycle
agreement with the reference model (repro.uarch.pipeline_ref).
"""

import pytest

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel, _deoptimized, simulate
from repro.uarch.pipeline_ref import ReferencePipelineModel, simulate_reference


def alu(n):
    return [Instr(Op.ALU) for _ in range(n)]


def chase_loads(n, base=0x10000, stride=4096):
    """Pointer-chase loads on distinct blocks (cold misses, long latency)."""
    return [Instr(Op.LOAD, base + i * stride) for i in range(n)]


def barrier():
    return [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]


def assert_equivalent(trace, config=None):
    config = config or MachineConfig()
    fast = simulate(trace, config).as_dict()
    ref = simulate_reference(trace, config).as_dict()
    assert fast == ref


class TestOccupancyBoundaries:
    """Compute runs sized exactly at the fetchq/ROB capacity seams."""

    @pytest.mark.parametrize("run", [1, 3, 4, 5, 46, 47, 48, 49, 50])
    def test_fetchq_exactly_full(self, run):
        # a cold chase miss blocks retirement; `run` compute ops then pile
        # into the front end around the fetchq-full (48) boundary
        instrs = []
        for i in range(4):
            instrs += [Instr(Op.LOAD, 0x40000 + i * 8192)] + alu(run)
        instrs += [Instr(Op.STORE, 0x9000)]
        assert_equivalent(Trace(instrs))

    @pytest.mark.parametrize("run", [126, 127, 128, 129, 130])
    def test_rob_exactly_full(self, run):
        instrs = []
        for i in range(3):
            instrs += [Instr(Op.LOAD, 0x80000 + i * 8192)] + alu(run)
        instrs += [Instr(Op.CLWB, 0x80000), Instr(Op.STORE, 0x9040)]
        assert_equivalent(Trace(instrs))

    @pytest.mark.parametrize("run", [136, 137, 138, 139, 200, 600])
    def test_steady_state_threshold(self, run):
        # runs straddling the closed-form advance's minimum length, after
        # a saturating preamble so the jump precondition can arm
        instrs = chase_loads(2) + alu(300)
        instrs += [Instr(Op.STORE, 0x9000)] + alu(run)
        instrs += [Instr(Op.LOAD, 0xA0000)] + alu(run)
        assert_equivalent(Trace(instrs))

    def test_long_pure_compute_uses_closed_form(self):
        # the jump must engage (streak >= max(fetchq, rob)) and still be
        # cycle-exact against the per-op reference
        instrs = alu(4000) + [Instr(Op.STORE, 0x9000)] + barrier() + alu(500)
        assert_equivalent(Trace(instrs))

    def test_event_dense_no_compute(self):
        # zero-length runs between events: the walker's per-entry overhead
        # paths with no compute prefix at all
        instrs = []
        for i in range(40):
            instrs += [
                Instr(Op.STORE, 0x5000 + (i % 6) * 64, meta="log"),
                Instr(Op.CLWB, 0x5000 + (i % 6) * 64, meta="log"),
                Instr(Op.LOAD, 0x70000 + i * 128),
            ]
        instrs += barrier()
        assert_equivalent(Trace(instrs))


class TestSpeculationSeams:
    """Fast-phase handoff to exact stepping around speculative epochs."""

    def test_compute_run_spans_speculation_exit(self):
        # the barrier enters speculation; the following long compute run
        # starts under speculation (exact stepping) and finishes after the
        # epoch commits — the walker must not re-enter the fast phase
        # mid-entry with a stale prefix
        config = MachineConfig().with_sp(256)
        instrs = (
            [Instr(Op.STORE, 0x2000, meta="log"), Instr(Op.CLWB, 0x2000)]
            + barrier()
            + alu(3000)
            + [Instr(Op.STORE, 0x3000)]
            + alu(50)
        )
        assert_equivalent(Trace(instrs), config)

    def test_back_to_back_barriers_under_speculation(self):
        config = MachineConfig().with_sp(256)
        instrs = []
        for i in range(6):
            instrs += [
                Instr(Op.STORE, 0x2000 + i * 64, meta="log"),
                Instr(Op.CLWB, 0x2000 + i * 64),
            ]
            instrs += barrier()
            instrs += alu(20)
        instrs += alu(2500)
        assert_equivalent(Trace(instrs), config)

    def test_probe_splits_compute_run_mid_speculation(self):
        # a coherence probe lands inside a compute run while the machine
        # is speculating on a store the probe conflicts with: rollback and
        # re-execution must match the reference exactly
        config = MachineConfig().with_sp(256)
        instrs = (
            [Instr(Op.STORE, 0x3000, meta="log"), Instr(Op.CLWB, 0x3000)]
            + barrier()
            + alu(30)
            + [Instr(Op.STORE, 0x3000)]
            + alu(200)
            + barrier()
            + alu(10)
        )
        trace = Trace(instrs)
        probe_index = 100  # inside the 200-op compute run
        fast = PipelineModel(config)
        fast.schedule_probe(probe_index, 0x3000)
        ref = ReferencePipelineModel(config)
        ref.schedule_probe(probe_index, 0x3000)
        fast_stats = fast.run(trace).as_dict()
        ref_stats = ref.run(trace).as_dict()
        assert fast_stats["rollbacks"] == 1
        assert fast_stats == ref_stats

    def test_resumed_run_mid_speculation(self):
        # run(finish=False) leaves an epoch open; a follow-up run() must
        # step exactly until the epoch drains instead of entering the
        # non-speculative fast phase with speculative state live
        config = MachineConfig().with_sp(256)
        part1 = (
            [Instr(Op.STORE, 0x2000, meta="log"), Instr(Op.CLWB, 0x2000)]
            + barrier()
            + alu(10)
        )
        part2 = alu(400) + [Instr(Op.STORE, 0x4000)] + alu(40)
        fast = PipelineModel(config)
        fast.run(Trace(part1), finish=False)
        fast_stats = fast.run(Trace(part2)).as_dict()
        ref_stats = simulate_reference(Trace(part1 + part2), config).as_dict()
        assert fast_stats == ref_stats


class TestDeoptimisationGuard:
    """Patched or subclassed models must abandon the inlined walker."""

    def test_pristine_model_uses_fast_path(self):
        assert not _deoptimized(PipelineModel(MachineConfig()))

    def test_subclass_is_deoptimized(self):
        class Tweaked(PipelineModel):
            pass

        assert _deoptimized(Tweaked(MachineConfig()))

    def test_instance_override_is_deoptimized(self):
        model = PipelineModel(MachineConfig())
        model._compute_batch = lambda count: None
        assert _deoptimized(model)

    def test_class_patch_is_deoptimized_and_restored(self):
        original = PipelineModel._compute_batch
        try:
            PipelineModel._compute_batch = original
            assert not _deoptimized(PipelineModel(MachineConfig()))
            PipelineModel._compute_batch = lambda self, count: original(
                self, count
            )
            assert _deoptimized(PipelineModel(MachineConfig()))
        finally:
            PipelineModel._compute_batch = original
        assert not _deoptimized(PipelineModel(MachineConfig()))

    def test_deoptimized_subclass_still_exact(self):
        class Tweaked(PipelineModel):
            pass

        trace = Trace(
            chase_loads(3) + alu(100) + [Instr(Op.STORE, 0x9000)] + barrier()
        )
        config = MachineConfig()
        tweaked = Tweaked(config).run(trace).as_dict()
        assert tweaked == simulate_reference(trace, config).as_dict()
