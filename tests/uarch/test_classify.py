"""Batched cache classification vs the scalar walk.

The classification engine's contract (repro.uarch.classify) is
cycle-for-cycle identity with the per-access scalar walk: same RunStats,
same cache residency, LRU dict order, dirty bits, stamps, and counters,
same deferred writeback times — on every trace, in every mode.  These
tests pin that contract with directed batteries aimed at the engine's
own seams (same-set thrash beyond associativity, dirty-victim cascades
through all three levels, the eviction-free fast path, flush-segmented
batches), a hypothesis profile biased to small heaps and high set
conflict, and the mode-resolution / auto-routing plumbing.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import build_trace, clear_trace_cache
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.uarch import classify, kernel
from repro.uarch.config import MachineConfig, PipelineConfig
from repro.uarch.pipeline import PipelineModel

requires_numpy = pytest.mark.skipif(
    not kernel.numpy_available(),
    reason=f"numpy backend unavailable: {kernel.unavailable_reason()}",
)

#: L1 geometry of the default machine, used to aim traces at one set.
_CFG = MachineConfig()
_BLOCK = _CFG.l1.block_size
_L1_SETS = _CFG.l1.n_sets
_L1_WAYS = _CFG.l1.ways
_SET_STRIDE = _L1_SETS * _BLOCK


def _cache_state(model):
    """Everything the scalar walk leaves behind in the hierarchy."""
    out = []
    for level in model.caches.levels:
        out.append((level.name, level.stamp, level.hits, level.misses,
                    level.writebacks,
                    [list(ways.items()) for ways in level._sets]))
    out.append(("acc", model.caches.accesses, model.caches.nvmm_reads))
    return out


def _run_mode(trace, mode, config=None, exact_max=0):
    """Run *trace* on the numpy kernel with the classification *mode*
    pinned; *exact_max* lowers the exact-path cutoff so short directed
    traces still reach the engine."""
    saved = os.environ.get("REPRO_CLASSIFY")
    saved_cutoff = kernel._CLASSIFY_EXACT_MAX
    os.environ["REPRO_CLASSIFY"] = mode
    kernel._CLASSIFY_EXACT_MAX = exact_max
    try:
        model = PipelineModel(
            config or MachineConfig(),
            pipeline=PipelineConfig(kernel="numpy", kernel_min_batch=1),
        )
        stats = model.run(trace)
    finally:
        kernel._CLASSIFY_EXACT_MAX = saved_cutoff
        if saved is None:
            os.environ.pop("REPRO_CLASSIFY", None)
        else:
            os.environ["REPRO_CLASSIFY"] = saved
    return model, stats


def assert_modes_agree(trace, config=None):
    """Byte-identical stats *and* hierarchy state, batch vs scalar."""
    ms, ss = _run_mode(trace, "scalar", config)
    mb, sb = _run_mode(trace, "batch", config)
    assert sb.as_dict() == ss.as_dict()
    assert _cache_state(mb) == _cache_state(ms)
    return ms, mb


def loads(addrs):
    return [Instr(Op.LOAD, a) for a in addrs]


def stores(addrs):
    return [Instr(Op.STORE, a) for a in addrs]


# ----------------------------------------------------------------------
# mode resolution
# ----------------------------------------------------------------------
class TestModeResolution:
    def test_explicit(self):
        assert classify.resolve_mode("scalar") == "scalar"
        assert classify.resolve_mode("batch") == "batch"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLASSIFY", raising=False)
        assert classify.resolve_mode(None) == "auto"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown classification mode"):
            classify.resolve_mode("simd")

    def test_request_is_normalised(self):
        assert classify.resolve_mode(" Batch ") == "batch"

    def test_auto_defers_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLASSIFY", "scalar")
        assert classify.resolve_mode(None) == "scalar"
        assert classify.resolve_mode("auto") == "scalar"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLASSIFY", "scalar")
        assert classify.resolve_mode("batch") == "batch"

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLASSIFY", "turbo")
        with pytest.raises(ValueError, match="unknown classification mode"):
            classify.resolve_mode(None)


# ----------------------------------------------------------------------
# directed batteries: the engine's own seams
# ----------------------------------------------------------------------
@requires_numpy
class TestDirected:
    def test_same_set_thrash_beyond_associativity(self):
        # W+4 distinct blocks all landing in L1 set 0, chased for laps:
        # every lap evicts, so the recency-tensor rounds handle every
        # set and the victim choice must match LRU exactly
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS + 4)]
        body = []
        for lap in range(24):
            body += loads(blocks) if lap % 3 else stores(blocks)
        assert_modes_agree(Trace(body))

    def test_dirty_victim_cascade_l1_l2_l3(self):
        # dirty a footprint far past every level's per-set capacity —
        # stride of the *L3* set count makes every block collide in one
        # set of all three levels — so dirty victims cascade
        # L1→L2→L3→WPQ; the deferred writeback records must land at the
        # same times the scalar walk emits them
        deep_stride = _CFG.l3.n_sets * _BLOCK
        blocks = [i * deep_stride for i in range(_CFG.l3.ways + 8)]
        body = stores(blocks)
        for lap in range(6):
            body += stores([b + (lap % 2) * 8 for b in blocks])
            body += loads(list(reversed(blocks)))
        ms, mb = assert_modes_agree(Trace(body))
        assert ms.caches.l3.writebacks > 0  # the cascade actually ran

    def test_eviction_free_fast_path(self):
        # footprint fits the set: after first touch everything hits, so
        # the whole stream resolves on the eviction-free fast path
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS - 2)]
        body = []
        for lap in range(30):
            body += loads(blocks) + stores(blocks[:2])
        ms, mb = assert_modes_agree(Trace(body))
        assert mb.caches.l1.misses == len(blocks)  # first touches only

    def test_partial_eligibility_split(self):
        # one quiet set (eviction-free) interleaved with one thrashing
        # set: the fast path and the tensor rounds must compose
        quiet = [i * _SET_STRIDE for i in range(4)]
        noisy = [_BLOCK + i * _SET_STRIDE for i in range(_L1_WAYS + 3)]
        body = []
        for lap in range(20):
            body += loads(quiet) + stores(noisy[: lap % len(noisy) + 1])
        assert_modes_agree(Trace(body))

    def test_flush_segmented_batch(self):
        # flushes break the stack property; segments on either side must
        # replay cleans/invalidations on the mirrored state exactly
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS + 2)]
        body = []
        for lap in range(10):
            body += stores(blocks)
            body.append(Instr(Op.CLWB if lap % 2 else Op.CLFLUSHOPT,
                              blocks[lap % len(blocks)]))
            body += loads(blocks)
        assert_modes_agree(Trace(body))

    def test_speculative_machine_agrees(self):
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS + 3)]
        body = []
        for lap in range(8):
            body += stores(blocks)
            body += [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
        assert_modes_agree(Trace(body), MachineConfig().with_sp(256))

    def test_benchmark_traces_agree(self):
        clear_trace_cache()
        for abbrev in ("LL", "HM"):
            trace = build_trace(abbrev, PersistMode.LOG_P_SF,
                                init_ops=800, sim_ops=60)
            assert_modes_agree(trace)
        clear_trace_cache()


# ----------------------------------------------------------------------
# auto routing: probe accepts residency, declines thrash — and either
# way the result is identical
# ----------------------------------------------------------------------
@requires_numpy
class TestAutoRouting:
    def _verdicts(self, trace):
        """Run under ``auto`` and record each batch's engine verdict."""
        verdicts = []
        orig = classify.classify_batch

        def spy(*args, **kwargs):
            result = orig(*args, **kwargs)
            verdicts.append(result is not None)
            return result

        classify.classify_batch = spy
        try:
            model, stats = _run_mode(trace, "auto")
        finally:
            classify.classify_batch = orig
        return verdicts, model, stats

    def test_auto_accepts_resident_stream(self):
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS - 2)]
        body = []
        for lap in range(40):
            body += loads(blocks)
        verdicts, _, _ = self._verdicts(Trace(body))
        assert verdicts and all(verdicts)

    def test_auto_declines_thrash_stream(self):
        blocks = [i * _SET_STRIDE for i in range(_L1_WAYS + 8)]
        body = []
        for lap in range(40):
            body += loads([b + 8 * (lap % 3) for b in blocks])
        verdicts, _, _ = self._verdicts(Trace(body))
        assert verdicts and not any(verdicts)

    def test_auto_matches_scalar_either_way(self):
        quiet = [i * _SET_STRIDE for i in range(3)]
        noisy = [i * _SET_STRIDE for i in range(_L1_WAYS + 8)]
        for pool in (quiet, noisy):
            body = []
            for lap in range(30):
                body += loads(pool) + stores(pool[:2])
            trace = Trace(body)
            ms, ss = _run_mode(trace, "scalar")
            ma, sa = _run_mode(trace, "auto")
            assert sa.as_dict() == ss.as_dict()
            assert _cache_state(ma) == _cache_state(ms)


# ----------------------------------------------------------------------
# hypothesis: small heaps, high set conflict
# ----------------------------------------------------------------------
#: A conflict-heavy address pool: a handful of L1 sets, each with more
#: distinct blocks than associativity, so random draws sit right on the
#: hit/evict boundary the engine must resolve exactly.
_CONFLICT_SETS = (0, 1, 2)
_CONFLICT_ADDRS = [
    si * _BLOCK + way * _SET_STRIDE
    for si in _CONFLICT_SETS
    for way in range(_L1_WAYS + 4)
]

_conflict_op = st.one_of(
    st.builds(
        lambda a, s: Instr(Op.STORE if s else Op.LOAD, a),
        st.sampled_from(_CONFLICT_ADDRS),
        st.booleans(),
    ),
    st.builds(
        lambda a, inv: Instr(Op.CLFLUSHOPT if inv else Op.CLWB, a),
        st.sampled_from(_CONFLICT_ADDRS),
        st.booleans(),
    ),
)


@st.composite
def conflict_traces(draw):
    # mostly memory traffic with sparse flushes, long enough that one
    # batch covers several evictions per set
    ops = draw(st.lists(_conflict_op, min_size=20, max_size=220))
    return Trace(ops)


@requires_numpy
class TestConflictFuzz:
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=conflict_traces())
    def test_base_machine(self, trace):
        assert_modes_agree(trace)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=conflict_traces())
    def test_speculative_machine(self, trace):
        assert_modes_agree(trace, MachineConfig().with_sp(256))
