"""Determinism + linearizability properties of the multi-core system.

Two contracts, fuzzed over seeds/cores/contention:

(a) **Determinism** — the same seed produces byte-identical per-core
    stats no matter how the cell is computed: repeated in-process runs,
    parallel worker processes (the ``--jobs`` path), and — at zero
    contention, where the single-core identity holds — every kernel
    backend.

(b) **Linearizability** — the final shared heap equals a serial
    execution of the committed-transaction order (the tape), checked by
    the serial oracle, and recovery finds nothing to roll back.
"""

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import cache
from repro.harness.runner import clear_trace_cache, run_system
from repro.txn.modes import PersistMode
from repro.uarch import kernel
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.uarch.system import SystemModel, simulate_system
from repro.workloads.concurrent import generate_concurrent, serial_oracle_check

SP = MachineConfig().with_sp(256)
#: small but non-trivial cells so hypothesis stays fast
FUZZ_OPS = dict(init_ops=24, sim_ops=12)

cells = st.tuples(
    st.sampled_from(["HM", "BT"]),
    st.integers(min_value=2, max_value=3),       # cores
    st.sampled_from([0.0, 0.3, 0.7, 1.0]),       # contention
    st.integers(min_value=0, max_value=40),      # seed
)


def _stats_blob(result):
    return json.dumps(
        [stats.as_dict() for stats in result.per_core], sort_keys=True
    ).encode()


def _cell_digest(cell):
    """run_system digest for one cell — runs in worker processes too."""
    abbrev, cores, contention, seed = cell
    stats = run_system(
        abbrev, PersistMode.LOG_P_SF, SP,
        seed=seed, cores=cores, contention=contention, **FUZZ_OPS,
    )
    return hashlib.sha256(
        json.dumps(stats.as_dict(), sort_keys=True).encode()
    ).hexdigest()


class TestDeterminism:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(cells)
    def test_same_seed_byte_identical(self, cell):
        abbrev, cores, contention, seed = cell
        blobs = []
        for _ in range(2):
            run = generate_concurrent(
                abbrev, PersistMode.LOG_P_SF,
                n_cores=cores, contention=contention, seed=seed, **FUZZ_OPS,
            )
            result = simulate_system(run.traces, SP)
            blobs.append(_stats_blob(result))
        assert blobs[0] == blobs[1]

    def test_zero_contention_identical_across_kernel_backends(self):
        """At p=0 each core is cycle-identical to a standalone run, so
        the per-core stats must match every kernel backend's simulate()
        byte for byte."""
        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=2, contention=0.0, seed=3
        )
        system = SystemModel(SP, n_cores=2)
        result = system.run(run.traces)
        assert result.conflict_aborts == 0
        backends = ["python"]
        if kernel.numpy_available():
            backends.append("numpy")
        for backend in backends:
            for stats, trace in zip(result.per_core, run.traces):
                alone = simulate(trace, SP, kernel=backend)
                assert (
                    json.dumps(stats.as_dict(), sort_keys=True)
                    == json.dumps(alone.as_dict(), sort_keys=True)
                ), backend

    def test_digest_identical_across_jobs(self, tmp_path, monkeypatch):
        """The --jobs path: worker processes computing the same cell
        from scratch reach the same digest as the in-process run."""
        monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
        clear_trace_cache()
        cell = ("HM", 2, 0.7, 9)
        local = _cell_digest(cell)
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_cell_digest, [cell, cell]))
        clear_trace_cache()
        assert remote == [local, local]


class TestLinearizability:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(cells)
    def test_recovered_heap_equals_serial_execution(self, cell):
        abbrev, cores, contention, seed = cell
        run = generate_concurrent(
            abbrev, PersistMode.LOG_P_SF,
            n_cores=cores, contention=contention, seed=seed, **FUZZ_OPS,
        )
        result = simulate_system(run.traces, SP)
        # timing-layer conflicts never corrupt the functional heap
        assert serial_oracle_check(run) is None
        assert run.check_invariants() is None
        # a clean run leaves no transaction to roll back
        assert run.recover_all() == 0
        if contention == 0.0:
            assert result.conflict_aborts == 0
