"""Cache hierarchy behaviour (repro.uarch.caches)."""

from repro.uarch.caches import CacheHierarchy, CacheLevel
from repro.uarch.config import CacheConfig, MachineConfig


class _StubMC:
    def __init__(self):
        self.writebacks = []

    def enqueue_writeback(self, block, now):
        self.writebacks.append((block, now))
        return now + 1


def make_hierarchy():
    mc = _StubMC()
    return CacheHierarchy(MachineConfig(), mc), mc


class TestCacheLevel:
    def test_miss_then_hit(self):
        level = CacheLevel(CacheConfig(1024, 2, 1), "L1")
        assert not level.lookup(0x40)
        level.fill(0x40)
        assert level.lookup(0x40)

    def test_lru_eviction(self):
        level = CacheLevel(CacheConfig(2 * 64, 2, 1), "tiny")  # 1 set, 2 ways
        level.fill(0x000)
        level.fill(0x1000)
        level.lookup(0x000)          # refresh LRU: 0x1000 is now LRU
        victim = level.fill(0x2000)
        assert victim == (0x1000, False)

    def test_dirty_victim_reported(self):
        level = CacheLevel(CacheConfig(2 * 64, 2, 1), "tiny")
        level.fill(0x000, dirty=True)
        level.fill(0x1000)
        victim = level.fill(0x2000)
        assert victim == (0x000, True)
        assert level.writebacks == 1

    def test_lookup_sets_dirty(self):
        level = CacheLevel(CacheConfig(1024, 2, 1), "L1")
        level.fill(0x40)
        level.lookup(0x40, make_dirty=True)
        assert level.is_dirty(0x40)

    def test_clean_clears_dirty(self):
        level = CacheLevel(CacheConfig(1024, 2, 1), "L1")
        level.fill(0x40, dirty=True)
        assert level.clean(0x40)
        assert not level.is_dirty(0x40)
        assert not level.clean(0x40)

    def test_evict_returns_dirty_bit(self):
        level = CacheLevel(CacheConfig(1024, 2, 1), "L1")
        level.fill(0x40, dirty=True)
        assert level.evict(0x40) is True
        assert level.evict(0x40) is None
        assert 0x40 not in level


class TestHierarchyLatency:
    def test_l1_hit_latency(self):
        h, _ = make_hierarchy()
        h.access(0x40, False, 0)  # install
        assert h.access(0x40, False, 10) == 2

    def test_cold_miss_latency_includes_nvmm(self):
        h, _ = make_hierarchy()
        latency = h.access(0x40, False, 0)
        assert latency == 2 + 11 + 20 + 105

    def test_l2_hit_latency(self):
        h, _ = make_hierarchy()
        h.access(0x40, False, 0)
        # evict from L1 only by filling its set (8 ways, 64 sets)
        for i in range(1, 9):
            h.access(0x40 + i * 64 * 64, False, 0)
        assert h.access(0x40, False, 100) == 2 + 11

    def test_miss_counts(self):
        h, _ = make_hierarchy()
        h.access(0x40, False, 0)
        h.access(0x40, False, 1)
        assert h.l1.misses == 1
        assert h.l1.hits == 1
        assert h.nvmm_reads == 1


class TestWritebackRouting:
    def test_dirty_l3_victim_reaches_memory_controller(self):
        h, mc = make_hierarchy()
        sets = h.l3.n_sets
        # Stream enough conflicting dirty blocks through one L3 set that
        # dirty data cascades L1 -> L2 -> L3 and finally spills to the MC.
        n = h.l1.ways + h.l2.ways + h.l3.ways + 4
        for i in range(n):
            h.access(0x40 + i * sets * 64, True, i)
        assert mc.writebacks, "dirty L3 victim should have been written back"

    def test_clean_victims_not_written_back(self):
        h, mc = make_hierarchy()
        sets = h.l3.n_sets
        for i in range(h.l3.ways + 1):
            h.access(0x40 + i * sets * 64, False, i)
        assert not mc.writebacks


class TestFlush:
    def test_clwb_writes_back_dirty_block(self):
        h, mc = make_hierarchy()
        h.access(0x40, True, 0)
        latency, wrote = h.flush(0x40, invalidate=False, now=10)
        assert wrote
        assert latency == 2 + 11 + 20
        assert mc.writebacks
        assert 0x40 in h.l1  # clwb keeps the block resident

    def test_clwb_clean_block_no_writeback(self):
        h, mc = make_hierarchy()
        h.access(0x40, False, 0)
        _, wrote = h.flush(0x40, invalidate=False, now=10)
        assert not wrote
        assert not mc.writebacks

    def test_clflushopt_evicts(self):
        h, mc = make_hierarchy()
        h.access(0x40, True, 0)
        _, wrote = h.flush(0x40, invalidate=True, now=10)
        assert wrote
        assert 0x40 not in h.l1
        assert 0x40 not in h.l2
        assert 0x40 not in h.l3

    def test_flush_clears_dirty_everywhere(self):
        h, _ = make_hierarchy()
        h.access(0x40, True, 0)
        h.flush(0x40, invalidate=False, now=10)
        assert not h.is_dirty_anywhere(0x40)

    def test_double_flush_single_writeback(self):
        h, mc = make_hierarchy()
        h.access(0x40, True, 0)
        h.flush(0x40, invalidate=False, now=10)
        h.flush(0x40, invalidate=False, now=20)
        assert len(mc.writebacks) == 1
