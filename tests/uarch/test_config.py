"""Machine configuration values (repro.uarch.config) — paper Tables 2-3."""

import pytest

from repro.uarch.config import CacheConfig, MachineConfig, SSB_LATENCY_TABLE, ssb_latency


class TestTable2Defaults:
    def test_core_parameters(self):
        config = MachineConfig()
        assert config.width == 4
        assert config.rob_entries == 128
        assert config.fetchq_entries == 48
        assert config.issueq_entries == 48
        assert config.lsq_entries == 48

    def test_cache_parameters(self):
        config = MachineConfig()
        assert (config.l1.size_bytes, config.l1.ways, config.l1.latency) == (32 << 10, 8, 2)
        assert (config.l2.size_bytes, config.l2.ways, config.l2.latency) == (256 << 10, 8, 11)
        assert (config.l3.size_bytes, config.l3.ways, config.l3.latency) == (2 << 20, 16, 20)

    def test_nvmm_latencies_match_50_150_ns(self):
        config = MachineConfig()
        assert config.nvmm_read_cycles == round(50 * 2.1)
        assert config.nvmm_write_cycles == round(150 * 2.1)

    def test_checkpoint_buffer_is_four(self):
        assert MachineConfig().checkpoint_entries == 4

    def test_sp_disabled_by_default(self):
        assert not MachineConfig().sp_enabled


class TestTable3:
    def test_all_paper_rows(self):
        assert SSB_LATENCY_TABLE == {32: 2, 64: 3, 128: 4, 256: 5, 512: 7, 1024: 10}

    @pytest.mark.parametrize("entries,latency", sorted(SSB_LATENCY_TABLE.items()))
    def test_lookup(self, entries, latency):
        assert ssb_latency(entries) == latency

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            ssb_latency(100)


class TestHelpers:
    def test_with_sp(self):
        config = MachineConfig().with_sp(128)
        assert config.sp_enabled
        assert config.ssb_entries == 128
        assert config.ssb_latency == 4

    def test_with_sp_does_not_mutate_original(self):
        base = MachineConfig()
        base.with_sp(64)
        assert not base.sp_enabled

    def test_ns_conversion(self):
        assert MachineConfig().ns_to_cycles(100) == 210

    def test_cache_set_count_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 1).n_sets

    def test_cache_set_count(self):
        assert CacheConfig(32 * 1024, 8, 2).n_sets == 64
