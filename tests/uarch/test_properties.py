"""Cross-cutting timing-model properties.

These are the "physics" the model must obey regardless of trace shape:
slower memory never speeds a run up, speculation never loses, bigger
structures never hurt, and simulation is deterministic.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate

BASE = MachineConfig()

_OPS = [Op.ALU, Op.BRANCH, Op.LOAD, Op.STORE, Op.CLWB]


def random_trace(draw_ops, barriers_every=0):
    instrs = []
    for index, (op, slot) in enumerate(draw_ops):
        addr = 0x10000 + slot * 64
        instrs.append(Instr(op, addr if op in (Op.LOAD, Op.STORE, Op.CLWB) else 0))
        if barriers_every and (index + 1) % barriers_every == 0:
            instrs += [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
    return Trace(instrs)


trace_strategy = st.lists(
    st.tuples(st.sampled_from(_OPS), st.integers(min_value=0, max_value=63)),
    min_size=1,
    max_size=120,
)


class TestDeterminism:
    @given(ops=trace_strategy)
    @settings(max_examples=25, deadline=None)
    def test_repeated_simulation_identical(self, ops):
        trace = random_trace(ops, barriers_every=17)
        first = simulate(trace, BASE)
        second = simulate(trace, BASE)
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
        assert first.fetch_stall_cycles == second.fetch_stall_cycles


class TestMemoryLatencyMonotonicity:
    @given(ops=trace_strategy)
    @settings(max_examples=20, deadline=None)
    def test_slower_nvmm_never_faster(self, ops):
        trace = random_trace(ops, barriers_every=13)
        fast = simulate(trace, BASE)
        slow = simulate(
            trace, replace(BASE, nvmm_read_cycles=400, nvmm_write_cycles=1200)
        )
        assert slow.cycles >= fast.cycles

    @given(ops=trace_strategy)
    @settings(max_examples=20, deadline=None)
    def test_fewer_banks_never_faster(self, ops):
        trace = random_trace(ops, barriers_every=13)
        wide = simulate(trace, BASE)
        narrow = simulate(trace, replace(BASE, nvmm_banks=1))
        assert narrow.cycles >= wide.cycles


class TestSpeculationNeverLoses:
    @given(ops=trace_strategy)
    @settings(max_examples=25, deadline=None)
    def test_sp_never_slower_on_fenced_traces(self, ops):
        trace = random_trace(ops, barriers_every=11)
        stall = simulate(trace, BASE)
        sp = simulate(trace, BASE.with_sp(256))
        # SP pays bloom/SSB latencies, so allow a tiny epsilon, but it can
        # never be meaningfully slower than stalling
        assert sp.cycles <= stall.cycles * 1.02 + 50

    @given(ops=trace_strategy)
    @settings(max_examples=15, deadline=None)
    def test_sp_identical_without_fences(self, ops):
        trace = random_trace(ops, barriers_every=0)
        assert simulate(trace, BASE).cycles == simulate(trace, BASE.with_sp(256)).cycles


class TestStructuralInvariants:
    @given(ops=trace_strategy)
    @settings(max_examples=25, deadline=None)
    def test_instruction_conservation(self, ops):
        trace = random_trace(ops, barriers_every=9)
        stats = simulate(trace, BASE.with_sp(256))
        assert stats.instructions == len(trace)

    @given(ops=trace_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cycles_bounded_below_by_width(self, ops):
        trace = random_trace(ops)
        stats = simulate(trace, BASE)
        assert stats.cycles >= len(trace) // BASE.width

    @given(ops=trace_strategy)
    @settings(max_examples=20, deadline=None)
    def test_machine_always_drains(self, ops):
        from repro.uarch.pipeline import PipelineModel

        model = PipelineModel(BASE.with_sp(64))
        model.run(random_trace(ops, barriers_every=7))
        assert not model.epochs.speculating
        assert len(model.ssb) == 0
        assert model.checkpoints.in_use == 0


class TestConfigSweepSanity:
    @pytest.mark.parametrize("checkpoints", [1, 2, 4, 8])
    def test_more_checkpoints_never_slower(self, checkpoints):
        trace = random_trace(
            [(Op.STORE, i % 40) for i in range(200)], barriers_every=10
        )
        few = simulate(trace, BASE.with_sp(256, checkpoint_entries=1))
        some = simulate(trace, BASE.with_sp(256, checkpoint_entries=checkpoints))
        assert some.cycles <= few.cycles
