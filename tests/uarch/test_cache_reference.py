"""Differential test: the cache hierarchy against a brute-force reference.

A reference model tracks, for one cache level, the exact LRU order of each
set; the real implementation must agree on every hit/miss decision across
randomised access streams.
"""

from hypothesis import given, settings, strategies as st

from repro.uarch.caches import CacheLevel
from repro.uarch.config import CacheConfig


class ReferenceCache:
    """Obviously-correct set-associative LRU cache."""

    def __init__(self, n_sets, ways, block_size=64):
        self.n_sets = n_sets
        self.ways = ways
        self.block_bits = block_size.bit_length() - 1
        self.sets = {i: [] for i in range(n_sets)}

    def access(self, block):
        index = (block >> self.block_bits) % self.n_sets
        lru = self.sets[index]
        hit = block in lru
        if hit:
            lru.remove(block)
        lru.append(block)
        if len(lru) > self.ways:
            lru.pop(0)
        return hit


@given(
    blocks=st.lists(
        st.integers(min_value=0, max_value=255).map(lambda x: x * 64),
        min_size=1,
        max_size=400,
    )
)
@settings(max_examples=60, deadline=None)
def test_lru_decisions_match_reference(blocks):
    config = CacheConfig(size_bytes=8 * 4 * 64, ways=4, latency=1)  # 8 sets
    real = CacheLevel(config, "dut")
    reference = ReferenceCache(config.n_sets, config.ways)
    for block in blocks:
        expected = reference.access(block)
        actual = real.lookup(block)
        if not actual:
            real.fill(block)
        assert actual == expected, f"divergence at block {block:#x}"


@given(
    blocks=st.lists(
        st.integers(min_value=0, max_value=127).map(lambda x: x * 64),
        min_size=1,
        max_size=300,
    ),
    dirty_mask=st.lists(st.booleans(), min_size=1, max_size=300),
)
@settings(max_examples=40, deadline=None)
def test_dirty_bits_survive_lru_refreshes(blocks, dirty_mask):
    """Once a resident block is dirtied, it stays dirty until cleaned or
    evicted — LRU refreshes must not drop the bit."""
    config = CacheConfig(size_bytes=16 * 4 * 64, ways=4, latency=1)
    cache = CacheLevel(config, "dut")
    dirty = set()
    for block, make_dirty in zip(blocks, dirty_mask):
        if cache.lookup(block, make_dirty=make_dirty):
            if make_dirty:
                dirty.add(block)
        else:
            victim = cache.fill(block, dirty=make_dirty)
            if make_dirty:
                dirty.add(block)
            if victim is not None:
                victim_block, victim_dirty = victim
                assert victim_dirty == (victim_block in dirty)
                dirty.discard(victim_block)
        assert cache.is_dirty(block) == (block in dirty)
