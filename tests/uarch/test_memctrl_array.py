"""Multi-controller array semantics (repro.uarch.memctrl)."""

import pytest

from repro.uarch.config import MachineConfig
from repro.uarch.memctrl import MemoryControllerArray
from repro.uarch.pipeline import simulate
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace


def make_array(n=2, **overrides):
    from dataclasses import replace

    return MemoryControllerArray(replace(MachineConfig(), **overrides), n)


class TestInterleaving:
    def test_blocks_spread_across_controllers(self):
        array = make_array(2)
        for i in range(8):
            array.enqueue_writeback(i * 64, 0)
        per_mc = [mc.writes for mc in array.controllers]
        assert per_mc == [4, 4]

    def test_single_controller_degenerates(self):
        array = make_array(1)
        for i in range(8):
            array.enqueue_writeback(i * 64, 0)
        assert array.controllers[0].writes == 8

    def test_zero_controllers_rejected(self):
        with pytest.raises(ValueError):
            make_array(0)


class TestPcommitSemantics:
    def test_pcommit_waits_for_all_controllers(self):
        """The paper: acknowledgement must arrive from *all* controllers."""
        array = make_array(2)
        # load only controller 0 (even blocks)
        for i in range(10):
            array.enqueue_writeback(i * 128, 0)  # 128-stride -> same MC
        busy = array.controllers[0].pcommit(0)
        idle = array.controllers[1].pcommit(0)
        assert busy > idle
        fresh = make_array(2)
        for i in range(10):
            fresh.enqueue_writeback(i * 128, 0)
        assert fresh.pcommit(0) == busy

    def test_parallel_drain_beats_single_controller(self):
        """Spreading the same writes across two controllers halves the
        drain, so the pcommit completes sooner."""
        single = make_array(1)
        double = make_array(2)
        for i in range(16):
            single.enqueue_writeback(i * 64, 0)
            double.enqueue_writeback(i * 64, 0)
        assert double.pcommit(0) < single.pcommit(0)


class TestStatsAggregation:
    def test_total_writes(self):
        array = make_array(2)
        for i in range(6):
            array.enqueue_writeback(i * 64, 0)
        assert array.writes == 6

    def test_occupancy_sums(self):
        array = make_array(2)
        for i in range(6):
            array.enqueue_writeback(i * 64, 0)
        assert array.wpq_occupancy(0) == 6


class TestPipelineIntegration:
    def _fenced_trace(self):
        instrs = []
        for i in range(12):
            instrs += [Instr(Op.STORE, 0x10000 + i * 64), Instr(Op.CLWB, 0x10000 + i * 64)]
        instrs += [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
        return Trace(instrs)

    def test_multi_mc_config_runs(self):
        from dataclasses import replace

        config = replace(MachineConfig(), n_memory_controllers=2)
        stats = simulate(self._fenced_trace(), config)
        assert stats.cycles > 0
        assert stats.pcommits == 1

    def test_more_controllers_never_slower(self):
        from dataclasses import replace

        trace = self._fenced_trace()
        one = simulate(trace, replace(MachineConfig(), n_memory_controllers=1))
        two = simulate(trace, replace(MachineConfig(), n_memory_controllers=2))
        assert two.cycles <= one.cycles

    def test_multi_mc_with_sp(self):
        from dataclasses import replace

        config = replace(MachineConfig(), n_memory_controllers=2).with_sp(256)
        stats = simulate(self._fenced_trace(), config)
        assert stats.cycles > 0
