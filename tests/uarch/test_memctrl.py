"""Memory controller / WPQ timing (repro.uarch.memctrl)."""

from repro.uarch.config import MachineConfig
from repro.uarch.memctrl import MemoryController


def make_mc(**overrides):
    from dataclasses import replace

    return MemoryController(replace(MachineConfig(), **overrides))


class TestWritebackTiming:
    def test_single_write_service_time(self):
        mc = make_mc()
        done = mc.enqueue_writeback(0x40, 100)
        assert done == 100 + mc.service_cycles

    def test_back_to_back_writes_queue(self):
        mc = make_mc()
        first = mc.enqueue_writeback(0x40, 100)
        second = mc.enqueue_writeback(0x80, 100)
        assert second == first + mc.service_cycles

    def test_idle_gap_resets_queue(self):
        mc = make_mc()
        first = mc.enqueue_writeback(0x40, 100)
        second = mc.enqueue_writeback(0x80, first + 1000)
        assert second == first + 1000 + mc.service_cycles

    def test_bank_parallelism_scales_service(self):
        slow = make_mc(nvmm_banks=1)
        fast = make_mc(nvmm_banks=16)
        assert slow.service_cycles == slow.config.nvmm_write_cycles
        assert fast.service_cycles == slow.config.nvmm_write_cycles // 16

    def test_write_counter(self):
        mc = make_mc()
        mc.enqueue_writeback(0x40, 0)
        mc.enqueue_writeback(0x80, 0)
        assert mc.writes == 2


class TestPcommit:
    def test_empty_queue_costs_roundtrip(self):
        mc = make_mc()
        assert mc.pcommit(100) == 100 + mc.config.mc_roundtrip

    def test_pcommit_waits_for_drain(self):
        mc = make_mc()
        done_write = mc.enqueue_writeback(0x40, 100)
        done = mc.pcommit(100)
        assert done == done_write + mc.config.mc_roundtrip

    def test_pcommit_after_drain_is_cheap(self):
        mc = make_mc()
        done_write = mc.enqueue_writeback(0x40, 100)
        done = mc.pcommit(done_write + 50)
        assert done == done_write + 50 + mc.config.mc_roundtrip

    def test_pcommit_scales_with_queue_depth(self):
        mc = make_mc()
        for i in range(10):
            mc.enqueue_writeback(0x40 * i, 100)
        done = mc.pcommit(100)
        assert done == 100 + 10 * mc.service_cycles + mc.config.mc_roundtrip


class TestInflightTracking:
    def test_single_pcommit(self):
        mc = make_mc()
        mc.pcommit(0)
        assert mc.max_inflight_pcommits == 1

    def test_overlapping_pcommits_counted(self):
        mc = make_mc()
        for i in range(5):
            mc.enqueue_writeback(0x40 * i, 0)
        # issue pcommits before the first completes
        mc.pcommit(0)
        mc.pcommit(1)
        mc.pcommit(2)
        assert mc.max_inflight_pcommits == 3

    def test_completed_pcommits_retire_from_tracking(self):
        mc = make_mc()
        first = mc.pcommit(0)
        mc.pcommit(first + 100)  # issued after the first completed
        assert mc.max_inflight_pcommits == 1

    def test_pcommit_counter(self):
        mc = make_mc()
        mc.pcommit(0)
        mc.pcommit(0)
        assert mc.pcommits == 2


class TestOccupancy:
    def test_occupancy_drops_after_drain(self):
        mc = make_mc()
        done = 0
        for i in range(4):
            done = mc.enqueue_writeback(0x40 * i, 0)
        assert mc.wpq_occupancy(0) == 4
        assert mc.wpq_occupancy(done) == 0
        assert mc.max_wpq_occupancy == 4
