"""The optimised pipeline (ALU/BRANCH run-length batching, locals-bound
hot loop) must be cycle-for-cycle identical to the reference model
(repro.uarch.pipeline_ref) on every benchmark and variant."""

import pytest

from repro.harness.runner import build_trace, clear_trace_cache
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel, simulate
from repro.uarch.pipeline_ref import ReferencePipelineModel, simulate_reference
from repro.workloads.registry import WORKLOADS

SMALL = dict(init_ops=100, sim_ops=6)


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.mark.parametrize("abbrev", WORKLOADS)
class TestEquivalenceOnBenchmarks:
    def test_baseline_trace(self, abbrev):
        trace = build_trace(abbrev, PersistMode.BASE, **SMALL)
        config = MachineConfig()
        assert simulate(trace, config).as_dict() == simulate_reference(
            trace, config
        ).as_dict()

    def test_fenced_trace(self, abbrev):
        trace = build_trace(abbrev, PersistMode.LOG_P_SF, **SMALL)
        config = MachineConfig()
        assert simulate(trace, config).as_dict() == simulate_reference(
            trace, config
        ).as_dict()

    def test_speculative_machine(self, abbrev):
        trace = build_trace(abbrev, PersistMode.LOG_P_SF, **SMALL)
        config = MachineConfig().with_sp(256)
        assert simulate(trace, config).as_dict() == simulate_reference(
            trace, config
        ).as_dict()


class TestEquivalenceEdges:
    def test_pure_compute_run_exercises_batching(self):
        # long ALU/BRANCH run: fills the fetch queue and the ROB, so the
        # batch path must reproduce the bandwidth and stall accounting
        trace = Trace(
            [Instr(Op.ALU if i % 3 else Op.BRANCH) for i in range(2000)]
        )
        config = MachineConfig()
        assert simulate(trace, config).as_dict() == simulate_reference(
            trace, config
        ).as_dict()

    def test_rollback_replays_identically(self):
        instrs = [Instr(Op.ALU) for _ in range(40)]
        instrs += [Instr(Op.STORE, 0x1000), Instr(Op.CLWB, 0x1000)]
        instrs += [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
        instrs += [Instr(Op.STORE, 0x3000)]  # speculative: lands in the SSB
        instrs += [Instr(Op.ALU) for _ in range(40)]
        instrs += [Instr(Op.LOAD, 0x2000)]
        trace = Trace(instrs)
        config = MachineConfig().with_sp(256)
        fast = PipelineModel(config)
        fast.schedule_probe(60, 0x3000)
        ref = ReferencePipelineModel(config)
        ref.schedule_probe(60, 0x3000)
        fast_stats = fast.run(trace)
        ref_stats = ref.run(trace)
        assert fast_stats.rollbacks == 1
        assert fast_stats.as_dict() == ref_stats.as_dict()


class TestClflushCounter:
    def test_clflush_counted_separately(self):
        trace = Trace([
            Instr(Op.STORE, 0x40),
            Instr(Op.CLFLUSH, 0x40),
            Instr(Op.STORE, 0x80),
            Instr(Op.CLFLUSHOPT, 0x80),
            Instr(Op.CLWB, 0x80),
        ])
        stats = simulate(trace, MachineConfig())
        assert stats.clflushes == 1
        assert stats.clflushopts == 1
        assert stats.clwbs == 1
        assert stats.as_dict()["clflushes"] == 1
