"""NumPy batch kernel vs the Python segment walker.

The kernel's contract (repro.uarch.kernel) is cycle-for-cycle identity
with the walker: same RunStats, same cache/memory-controller counters,
on every trace.  These tests pin that contract three ways — targeted
traces aimed at the kernel's own seams (batch threshold, same-block run
elision, scalar-chunk bailout), property-based random traces from the
full micro-op grammar, and the benchmark conformance matrix — plus the
backend-selection plumbing (resolution precedence, graceful degradation
without numpy, deoptimisation guard).
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import build_trace, clear_trace_cache
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.uarch import kernel
from repro.uarch.config import MachineConfig, PipelineConfig
from repro.uarch.pipeline import PipelineModel, _deoptimized
from repro.workloads.registry import WORKLOADS

requires_numpy = pytest.mark.skipif(
    not kernel.numpy_available(),
    reason=f"numpy backend unavailable: {kernel.unavailable_reason()}",
)

SMALL = dict(init_ops=300, sim_ops=12)


def run_backend(trace, config, backend, min_batch=1):
    """Run *trace* on an explicit backend; min_batch=1 forces the kernel
    onto spans the auto threshold would leave to the walker."""
    model = PipelineModel(
        config,
        pipeline=PipelineConfig(kernel=backend, kernel_min_batch=min_batch),
    )
    stats = model.run(trace)
    return model, stats


def assert_backends_agree(trace, config=None, min_batch=1):
    config = config or MachineConfig()
    py_model, py_stats = run_backend(trace, config, "python", min_batch)
    np_model, np_stats = run_backend(trace, config, "numpy", min_batch)
    assert np_model.kernel_backend == "numpy"
    assert np_stats.as_dict() == py_stats.as_dict()
    return py_model, np_model


def alu(n):
    return [Instr(Op.ALU) for _ in range(n)]


def barrier():
    return [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_explicit_python(self):
        assert kernel.resolve_backend("python") == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernel.resolve_backend("fortran")

    def test_request_is_normalised(self):
        # case/whitespace-insensitive, like the CLI's env plumbing
        assert kernel.resolve_backend(" Python ") == "python"

    def test_auto_defers_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert kernel.resolve_backend(None) == "python"
        assert kernel.resolve_backend("auto") == "python"

    def test_auto_picks_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        expected = "numpy" if kernel.numpy_available() else "python"
        assert kernel.resolve_backend("auto") == expected

    @requires_numpy
    def test_explicit_request_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert kernel.resolve_backend("numpy") == "numpy"

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        with pytest.raises(ValueError):
            kernel.resolve_backend("auto")


# ----------------------------------------------------------------------
# graceful degradation without numpy
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel, "np", None)
        monkeypatch.setattr(kernel, "_unavailable_reason", "numpy is not installed")
        monkeypatch.setattr(kernel, "_warned_fallback", False)

    def test_warns_once_then_silent(self, no_numpy):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernel.resolve_backend("numpy") == "python"
        # the second request (any spelling) must not warn again
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel.resolve_backend("numpy") == "python"
            assert kernel.resolve_backend("auto") == "python"

    def test_model_degrades_to_walker(self, no_numpy):
        trace = Trace(
            [Instr(Op.LOAD, 0x1000), Instr(Op.STORE, 0x1040)]
            + alu(20)
            + barrier()
        )
        with pytest.warns(RuntimeWarning):
            model = PipelineModel(
                MachineConfig(),
                pipeline=PipelineConfig(kernel="numpy", kernel_min_batch=1),
            )
        assert model.kernel_backend == "python"
        degraded = model.run(trace).as_dict()
        _, reference = run_backend(trace, MachineConfig(), "python")
        assert degraded == reference.as_dict()


# ----------------------------------------------------------------------
# deoptimisation guard under the numpy backend
# ----------------------------------------------------------------------
@requires_numpy
class TestDeoptGuard:
    TRACE = Trace(
        [Instr(Op.LOAD, 0x8000 + i * 4096) for i in range(6)]
        + alu(200)
        + [Instr(Op.STORE, 0x9000)]
        + barrier()
    )

    def test_pristine_model_keeps_kernel(self):
        model = PipelineModel(
            MachineConfig(), pipeline=PipelineConfig(kernel="numpy")
        )
        assert model.kernel_backend == "numpy"
        assert model._kernel_advance is kernel.advance
        assert not _deoptimized(model)

    def test_subclass_routes_to_exact_loop(self):
        class Probed(PipelineModel):
            def _extra_probe(self):
                return None

        model = Probed(
            MachineConfig(),
            pipeline=PipelineConfig(kernel="numpy", kernel_min_batch=1),
        )
        assert _deoptimized(model)
        # the exact loop must never reach the kernel
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("kernel called on a deoptimised model")

        model._kernel_advance = boom
        tweaked = model.run(self.TRACE).as_dict()
        _, reference = run_backend(self.TRACE, MachineConfig(), "python")
        assert tweaked == reference.as_dict()

    def test_instance_override_routes_to_exact_loop(self):
        model = PipelineModel(
            MachineConfig(),
            pipeline=PipelineConfig(kernel="numpy", kernel_min_batch=1),
        )
        model._compute_batch = lambda count: None
        assert _deoptimized(model)


# ----------------------------------------------------------------------
# kernel seams: batch threshold, run elision, scalar bailout
# ----------------------------------------------------------------------
@requires_numpy
class TestKernelSeams:
    @pytest.mark.parametrize("span", [1023, 1024, 1025, 1224])
    def test_min_batch_threshold(self, span):
        # event-free spans straddling KERNEL_MIN_BATCH: below it the
        # walker keeps the span, at/above it the kernel takes over —
        # either way the cycle count must not move
        instrs = []
        for i in range(3):
            instrs += [Instr(Op.LOAD, 0x10000 + i * 8192)]
            instrs += alu(span - 1)
        instrs += [Instr(Op.STORE, 0x9000)] + barrier()
        trace = Trace(instrs)
        config = MachineConfig()
        _, py_stats = run_backend(
            trace, config, "python", min_batch=kernel.KERNEL_MIN_BATCH
        )
        _, np_stats = run_backend(
            trace, config, "numpy", min_batch=kernel.KERNEL_MIN_BATCH
        )
        assert np_stats.as_dict() == py_stats.as_dict()

    def test_same_block_run_dirty_carry(self):
        # a run of loads with one store buried in the tail: the elided
        # tail's dirty bit must carry to the run head, so the later
        # conflict-evictions write the block back on both backends
        blk = 0x40000
        set_stride = 64 * 64  # L1: 64 sets of 64-byte blocks
        instrs = [Instr(Op.LOAD, blk + (i % 6) * 8) for i in range(8)]
        instrs += [Instr(Op.STORE, blk + 16)]
        instrs += [Instr(Op.LOAD, blk + 24)]
        # nine more tags in the same set evict the run's block from L1
        instrs += [
            Instr(Op.LOAD, blk + i * set_stride) for i in range(1, 10)
        ]
        instrs += barrier()
        py_model, np_model = assert_backends_agree(Trace(instrs))
        assert np_model.caches.l1.writebacks >= 1
        assert np_model.caches.l1.writebacks == py_model.caches.l1.writebacks

    def test_store_only_runs_and_flushes(self):
        # same-block store runs interleaved with clwb/clflushopt on the
        # run's own block (flushes break elision runs)
        blk = 0x50000
        instrs = []
        for i in range(10):
            instrs += [Instr(Op.STORE, blk + j * 8) for j in range(5)]
            instrs += [Instr(Op.CLWB if i % 2 else Op.CLFLUSHOPT, blk)]
        instrs += barrier()
        assert_backends_agree(Trace(instrs))

    def test_scalar_bailout_is_exact(self, monkeypatch):
        # the skiplist's ROB-serialised pointer chasing keeps the
        # fixpoint's wave front crawling, which trips the deep-feedback
        # bailout even at tiny scale; the scalar sweep's answer must
        # match the walker's
        calls = []
        real = kernel._scalar_chunk

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(kernel, "_scalar_chunk", spy)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_trace_cache()
        trace = build_trace("SS", PersistMode.BASE, **SMALL)
        clear_trace_cache()
        assert_backends_agree(trace)
        assert calls, "scalar bailout never triggered"


# ----------------------------------------------------------------------
# property tests: random traces from the micro-op grammar
# ----------------------------------------------------------------------
_addr = st.integers(0, 95).map(lambda i: 0x10000 + i * 64 + (i % 8) * 8)

_token = st.one_of(
    st.tuples(st.just("alu"), st.integers(1, 60), st.just(0)),
    st.tuples(st.just("mem"), _addr, st.integers(0, 1)),
    st.tuples(st.just("run"), _addr, st.integers(2, 12)),
    st.tuples(st.just("flush"), _addr, st.integers(0, 2)),
    st.tuples(st.just("atomic"), _addr, st.integers(0, 1)),
    st.tuples(st.just("fence"), st.just(0), st.integers(0, 2)),
    st.tuples(st.just("barrier"), st.just(0), st.just(0)),
)

_FLUSHES = (Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH)
_FENCES = (Op.SFENCE, Op.MFENCE, Op.PCOMMIT)


def _expand(token):
    kind, arg, sub = token
    if kind == "alu":
        return alu(arg)
    if kind == "mem":
        return [Instr(Op.STORE if sub else Op.LOAD, arg)]
    if kind == "run":
        # a same-block run: elision fodder, with stores sprinkled in
        return [
            Instr(Op.STORE if j % 3 == 2 else Op.LOAD, (arg & ~63) + (j % 8) * 8)
            for j in range(sub)
        ]
    if kind == "flush":
        return [Instr(_FLUSHES[sub], arg)]
    if kind == "atomic":
        return [Instr(Op.XCHG if sub else Op.LOCK_RMW, arg)]
    if kind == "fence":
        return [Instr(_FENCES[sub])]
    return barrier()


@st.composite
def grammar_traces(draw):
    tokens = draw(st.lists(_token, min_size=1, max_size=80))
    return Trace([instr for token in tokens for instr in _expand(token)])


@requires_numpy
class TestPropertyEquivalence:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=grammar_traces())
    def test_base_machine(self, trace):
        assert_backends_agree(trace)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=grammar_traces())
    def test_speculative_machine(self, trace):
        assert_backends_agree(trace, MachineConfig().with_sp(256))


# ----------------------------------------------------------------------
# conformance matrix: every benchmark, base + fenced + speculative
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("abbrev", WORKLOADS)
class TestConformanceMatrix:
    @pytest.fixture(autouse=True)
    def fresh_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_trace_cache()
        yield
        clear_trace_cache()

    def test_baseline(self, abbrev):
        trace = build_trace(abbrev, PersistMode.BASE, **SMALL)
        assert_backends_agree(trace)

    def test_fenced(self, abbrev):
        trace = build_trace(abbrev, PersistMode.LOG_P_SF, **SMALL)
        assert_backends_agree(trace)

    def test_speculative(self, abbrev):
        trace = build_trace(abbrev, PersistMode.LOG_P_SF, **SMALL)
        assert_backends_agree(trace, MachineConfig().with_sp(256))
