"""Pipeline edge cases not covered by the main timing tests."""

from dataclasses import replace

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel, simulate

BASE = MachineConfig()


class TestLoneSfence:
    def test_lone_sfence_without_pcommit(self):
        trace = Trace([
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.SFENCE),
            Instr(Op.ALU),
        ])
        stats = simulate(trace, BASE)
        assert stats.sfences == 1
        assert stats.sfence_stall_cycles > 0

    def test_mfence_acts_like_sfence_for_persists(self):
        trace = Trace([
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.MFENCE),
        ])
        stats = simulate(trace, BASE)
        assert stats.sfence_stall_cycles > 0

    def test_lone_sfence_can_start_speculation(self):
        trace = Trace([
            Instr(Op.STORE, 0x1000),
            Instr(Op.CLWB, 0x1000),
            Instr(Op.SFENCE),
            Instr(Op.ALU),
        ])
        stats = simulate(trace, BASE.with_sp(256))
        assert stats.sp_entries == 1
        assert stats.sfence_stall_cycles == 0

    def test_trailing_sfence_pair_without_pcommit(self):
        # two adjacent fences must not be mistaken for a barrier triple
        trace = Trace([Instr(Op.SFENCE), Instr(Op.SFENCE)])
        stats = simulate(trace, BASE)
        assert stats.sfences == 2
        assert stats.pcommits == 0

    def test_truncated_barrier_at_trace_end(self):
        # sfence+pcommit at the very end (no closing sfence)
        trace = Trace([Instr(Op.STORE, 0x1000), Instr(Op.SFENCE), Instr(Op.PCOMMIT)])
        stats = simulate(trace, BASE)
        assert stats.instructions == 3
        assert stats.pcommits == 1


class TestStrongOrderingOutsideSpeculation:
    def test_xchg_without_speculation(self):
        trace = Trace([Instr(Op.XCHG, 0x1000), Instr(Op.ALU)])
        stats = simulate(trace, BASE)
        assert stats.stores == 1
        assert stats.instructions == 2

    def test_lock_rmw(self):
        trace = Trace([Instr(Op.LOCK_RMW, 0x1000)])
        stats = simulate(trace, BASE)
        assert stats.stores == 1

    def test_clflush_without_speculation_stalls_retirement(self):
        fast = simulate(Trace([Instr(Op.STORE, 0x1000), Instr(Op.CLWB, 0x1000),
                               Instr(Op.ALU)]), BASE)
        slow = simulate(Trace([Instr(Op.STORE, 0x1000), Instr(Op.CLFLUSH, 0x1000),
                               Instr(Op.ALU)]), BASE)
        assert slow.cycles > fast.cycles


class TestLSQConstraint:
    def test_lsq_full_throttles_memory_ops(self):
        # a burst of slow independent loads larger than the LSQ
        trace = Trace(
            [Instr(Op.LOAD, 0x100000 + i * 4096, meta="bulk") for i in range(120)]
        )
        tiny = simulate(trace, replace(BASE, lsq_entries=4))
        roomy = simulate(trace, replace(BASE, lsq_entries=512))
        assert tiny.cycles > roomy.cycles

    def test_alu_unaffected_by_lsq(self):
        trace = Trace([Instr(Op.ALU)] * 200)
        tiny = simulate(trace, replace(BASE, lsq_entries=4))
        roomy = simulate(trace, BASE)
        assert tiny.cycles == roomy.cycles


class TestWidthScaling:
    def test_wider_machine_never_slower(self):
        trace = Trace([Instr(Op.ALU)] * 400)
        narrow = simulate(trace, replace(BASE, width=2))
        wide = simulate(trace, replace(BASE, width=8))
        assert wide.cycles <= narrow.cycles

    def test_bigger_rob_never_slower(self):
        instrs = []
        for i in range(8):
            instrs += [Instr(Op.STORE, 0x1000 + i * 64), Instr(Op.CLWB, 0x1000 + i * 64),
                       Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
            instrs += [Instr(Op.ALU)] * 100
        trace = Trace(instrs)
        small = simulate(trace, replace(BASE, rob_entries=32))
        big = simulate(trace, replace(BASE, rob_entries=256))
        assert big.cycles <= small.cycles


class TestStatsSanity:
    def test_op_counts_partition_the_trace(self):
        instrs = (
            [Instr(Op.ALU)] * 10
            + [Instr(Op.LOAD, 0x1000, meta="bulk")] * 5
            + [Instr(Op.STORE, 0x2000)] * 4
            + [Instr(Op.CLWB, 0x2000)] * 3
            + [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
        )
        stats = simulate(Trace(instrs), BASE)
        assert stats.loads == 5
        assert stats.stores == 4
        assert stats.clwbs == 3
        assert stats.pcommits == 1
        assert stats.sfences == 2
        assert stats.instructions == len(instrs)

    def test_model_exposes_component_stats(self):
        model = PipelineModel(BASE)
        model.run(Trace([Instr(Op.LOAD, 0x1000)]))
        assert model.caches.l1.misses == 1
        assert model.stats.nvmm_reads == 1
