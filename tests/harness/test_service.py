"""Simulation-as-a-service (repro.harness.service): sweep request
validation, NDJSON result streaming, and the metrics/liveness probes."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness import cache
from repro.harness import supervisor
from repro.harness import transport
from repro.harness.runner import clear_trace_cache, run_variant
from repro.harness.service import (
    SweepRequestError,
    make_service,
    parse_sweep,
)
from repro.obs import metrics as obs_metrics
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    monkeypatch.delenv(supervisor.ENV_CHAOS, raising=False)
    monkeypatch.delenv(transport.ENV_TRANSPORT, raising=False)
    monkeypatch.delenv(transport.ENV_WORKERS, raising=False)
    clear_trace_cache()
    cache.reset_runtime_disable()
    obs_metrics.reset_metrics()
    supervisor.reset()
    transport.reset()
    yield
    clear_trace_cache()
    supervisor.reset()
    transport.reset()
    obs_metrics.reset_metrics()


@pytest.fixture
def service():
    server = make_service(jobs=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path: str):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def _sweep(server, payload: dict):
    request = urllib.request.Request(
        _url(server, "/sweep"),
        data=json.dumps(payload).encode(),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            lines = [
                json.loads(line)
                for line in response.read().decode().splitlines()
                if line.strip()
            ]
            return response.status, lines
    except urllib.error.HTTPError as exc:
        return exc.code, [json.loads(exc.read().decode())]


class TestParseSweep:
    def test_defaults(self):
        benchmarks, modes, seed, init_ops, sim_ops = parse_sweep({})
        assert len(benchmarks) >= 2  # the full workload registry
        assert [label for label, _m, _c in modes] == [
            "base", "log", "log+p", "log+p+sf", "sp256",
        ]
        assert seed == 7 and init_ops is None and sim_ops is None

    def test_sp_mode_resolution(self):
        _benchmarks, modes, *_rest = parse_sweep({"modes": ["sp64"]})
        label, mode, config = modes[0]
        assert label == "sp64"
        assert mode is PersistMode.LOG_P_SF
        assert config.sp_enabled and config.ssb_entries == 64

    def test_rejections(self):
        for payload, message in (
            ({"benchmarks": ["NOPE"]}, "unknown benchmark"),
            ({"benchmarks": "LL"}, "non-empty list"),
            ({"modes": ["warp9"]}, "unknown mode"),
            ({"modes": ["sp0"]}, "unknown mode"),
            ({"sim_ops": -5}, "positive"),
            ({"seed": "lucky"}, "integer"),
            ({"surprise": 1}, "unknown sweep fields"),
        ):
            with pytest.raises(SweepRequestError, match=message):
                parse_sweep(payload)


class TestServiceEndpoints:
    def test_healthz_and_metrics(self, service):
        status, payload = _get(service, "/healthz")
        assert status == 200 and payload["kind"] == "serve"
        status, snapshot = _get(service, "/metrics")
        assert status == 200
        assert snapshot["schema"] == 5
        assert "transport" in snapshot

    def test_sweep_streams_correct_cells(self, service):
        status, lines = _sweep(
            service,
            {
                "benchmarks": ["LL", "HM"],
                "modes": ["base", "sp256"],
                "init_ops": 40,
                "sim_ops": 4,
            },
        )
        assert status == 200
        summary = lines[-1]
        assert summary["done"] is True and summary["cells"] == 4
        cells = {
            (line["benchmark"], line["mode"]): line for line in lines[:-1]
        }
        assert set(cells) == {
            ("LL", "base"), ("LL", "sp256"), ("HM", "base"), ("HM", "sp256"),
        }
        for (abbrev, label), cell in cells.items():
            mode = PersistMode.BASE if label == "base" else PersistMode.LOG_P_SF
            config = (
                MachineConfig() if label == "base"
                else MachineConfig().with_sp(256)
            )
            expected = run_variant(abbrev, mode, config, init_ops=40, sim_ops=4)
            assert cell["cycles"] == expected.cycles
            assert cell["instructions"] == expected.instructions

    def test_bad_sweep_is_a_400(self, service):
        status, lines = _sweep(service, {"benchmarks": ["NOPE"]})
        assert status == 400
        assert lines[0]["ok"] is False

    def test_unparseable_body_is_a_400(self, service):
        request = urllib.request.Request(
            _url(service, "/sweep"), data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_paths_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(service, "/sweeps")
        assert err.value.code == 404
