"""Fault-tolerant campaign supervisor (repro.harness.supervisor):
chaos-vs-serial determinism, retry/quarantine/pool-rebuild recovery,
resumable journals, and the --no-supervise escape hatch."""

import json
import os

import pytest

from repro.harness import cache
from repro.harness import supervisor
from repro.harness.parallel import VariantJob, run_variants
from repro.harness.runner import clear_trace_cache
from repro.obs import metrics as obs_metrics
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=40, sim_ops=4)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    for var in (
        supervisor.ENV_CHAOS,
        supervisor.ENV_CHAOS_SEED,
        supervisor.ENV_JOB_TIMEOUT,
        supervisor.ENV_MAX_ATTEMPTS,
        supervisor.ENV_MAX_POOL_REBUILDS,
    ):
        monkeypatch.delenv(var, raising=False)
    clear_trace_cache()
    cache.reset_runtime_disable()
    obs_metrics.reset_metrics()
    supervisor.reset()
    yield
    clear_trace_cache()
    supervisor.reset()
    obs_metrics.reset_metrics()


def _jobs(n_modes=3):
    series = [
        (PersistMode.BASE, MachineConfig()),
        (PersistMode.LOG_P_SF, MachineConfig()),
        (PersistMode.LOG_P_SF, MachineConfig().with_sp(256)),
    ][:n_modes]
    return [
        VariantJob(ab, mode, config, **SMALL)
        for mode, config in series
        for ab in ("LL", "HM")
    ]


def _serial_baseline(jobs, monkeypatch):
    """Chaos-free, cache-free serial results (the ground truth)."""
    monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
    clear_trace_cache()
    results = run_variants(jobs, jobs=1)
    monkeypatch.delenv(cache.ENV_NO_CACHE)
    clear_trace_cache()
    return results


class TestChaosSpec:
    def test_parse_all_clauses(self):
        spec = supervisor.ChaosSpec.parse("kill:0.1, hang:0.05,corrupt:1")
        assert (spec.kill, spec.hang, spec.corrupt) == (0.1, 0.05, 1.0)
        assert spec.active()
        assert spec.render() == "kill:0.1,hang:0.05,corrupt:1"

    def test_parse_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown chaos event"):
            supervisor.ChaosSpec.parse("explode:0.5")

    def test_parse_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            supervisor.ChaosSpec.parse("kill:lots")
        with pytest.raises(ValueError):
            supervisor.ChaosSpec.parse("kill:1.5")

    def test_from_env_inert_by_default(self, monkeypatch):
        assert not supervisor.ChaosSpec.from_env().active()
        monkeypatch.setenv(supervisor.ENV_CHAOS, "kill:0.2")
        monkeypatch.setenv(supervisor.ENV_CHAOS_SEED, "9")
        spec = supervisor.ChaosSpec.from_env()
        assert spec.kill == 0.2 and spec.seed == 9


class TestSupervisorConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(supervisor.ENV_JOB_TIMEOUT, "1.5")
        monkeypatch.setenv(supervisor.ENV_MAX_ATTEMPTS, "5")
        monkeypatch.setenv(supervisor.ENV_MAX_POOL_REBUILDS, "7")
        config = supervisor.SupervisorConfig.from_env()
        assert config.job_timeout == 1.5
        assert config.max_attempts == 5
        assert config.max_pool_rebuilds == 7

    def test_garbage_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv(supervisor.ENV_JOB_TIMEOUT, "soon")
        monkeypatch.setenv(supervisor.ENV_MAX_ATTEMPTS, "-3")
        config = supervisor.SupervisorConfig.from_env()
        assert config.job_timeout == 300.0
        assert config.max_attempts == 1  # clamped, not defaulted

    def test_cli_timeout_override(self):
        supervisor.set_job_timeout(2.0)
        assert supervisor.current_config().job_timeout == 2.0
        supervisor.set_job_timeout(None)
        assert supervisor.current_config().job_timeout == 300.0


class TestCampaignIdentity:
    def test_id_is_order_independent(self):
        jobs = _jobs()
        assert supervisor.campaign_id(jobs) == supervisor.campaign_id(
            list(reversed(jobs))
        )

    def test_id_depends_on_content(self):
        jobs = _jobs()
        assert supervisor.campaign_id(jobs) != supervisor.campaign_id(jobs[:-1])


class TestJournal:
    def test_append_and_load(self, tmp_path):
        journal = supervisor.CampaignJournal(tmp_path, "abc123")
        journal.append("d1", "LL/base", "simulated")
        journal.append("d2", "HM/base", "cached")
        journal.close()
        assert supervisor.CampaignJournal(tmp_path, "abc123").load_done() == {
            "d1",
            "d2",
        }

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = supervisor.CampaignJournal(tmp_path, "torn")
        journal.append("d1", "LL/base", "simulated")
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"job": "d2"')  # crash mid-append
        assert supervisor.CampaignJournal(tmp_path, "torn").load_done() == {"d1"}

    def test_restart_truncates(self, tmp_path):
        journal = supervisor.CampaignJournal(tmp_path, "fresh")
        journal.append("d1", "LL/base", "simulated")
        journal.close()
        journal2 = supervisor.CampaignJournal(tmp_path, "fresh")
        journal2.restart()
        assert journal2.load_done() == set()

    def test_missing_directory_is_inert(self):
        journal = supervisor.CampaignJournal(None, "nocache")
        journal.append("d1", "LL/base", "simulated")
        assert journal.load_done() == set()


class TestSupervisedDeterminism:
    def test_clean_supervised_run_matches_serial(self, monkeypatch):
        jobs = _jobs()
        serial = _serial_baseline(jobs, monkeypatch)
        supervised = run_variants(jobs, jobs=2)
        assert supervised == serial
        counters = obs_metrics.supervisor_counters()
        assert counters.campaigns == 1
        assert counters.jobs == len(jobs)
        assert not counters.any_recovery()

    def test_chaos_kill_recovers_byte_identical(self, monkeypatch):
        jobs = _jobs()
        serial = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "kill:1.0")
        monkeypatch.setenv(supervisor.ENV_CHAOS_SEED, "3")
        chaotic = run_variants(jobs, jobs=2)
        assert chaotic == serial
        counters = obs_metrics.supervisor_counters()
        assert counters.any_recovery()
        assert counters.pool_rebuilds > 0 or counters.serial_degradations > 0

    def test_chaos_hang_trips_the_watchdog(self, monkeypatch):
        jobs = _jobs(n_modes=1)
        serial = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "hang:1.0")
        monkeypatch.setenv(supervisor.ENV_JOB_TIMEOUT, "0.3")
        results = run_variants(jobs, jobs=2)
        assert results == serial
        counters = obs_metrics.supervisor_counters()
        assert counters.timeouts > 0
        assert counters.quarantined > 0  # hang:1.0 exhausts every retry

    def test_chaos_corrupt_never_taints_results(self, monkeypatch):
        jobs = _jobs()
        serial = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "corrupt:1.0")
        chaotic = run_variants(jobs, jobs=2)
        assert chaotic == serial
        assert obs_metrics.supervisor_counters().chaos_corrupts > 0
        # the poisoned store self-heals: a fresh process sees misses, not
        # wrong data
        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        rerun = run_variants(jobs, jobs=2)
        assert rerun == serial

    def test_no_supervise_bypasses_everything(self, monkeypatch):
        jobs = _jobs()
        serial = _serial_baseline(jobs, monkeypatch)
        supervisor.set_enabled(False)
        legacy = run_variants(jobs, jobs=2)
        assert legacy == serial
        counters = obs_metrics.supervisor_counters()
        assert counters.campaigns == 0  # the supervisor never ran
        assert supervisor.campaign_reports() == []


class TestResume:
    def test_resume_skips_journaled_cells(self, tmp_path, monkeypatch):
        jobs = _jobs()
        first = run_variants(jobs, jobs=2)
        journal_files = list((tmp_path / "cache" / "journal").iterdir())
        assert len(journal_files) == 1
        assert len(journal_files[0].read_text().splitlines()) == len(jobs)

        # a fresh process resuming the same campaign: memo gone
        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        supervisor.set_resume(True)
        resumed = run_variants(jobs, jobs=2)
        assert resumed == first
        counters = obs_metrics.supervisor_counters()
        assert counters.resumed == len(jobs)
        sources = {r.source for r in obs_metrics.variant_records()}
        assert "simulated" not in sources  # nothing was re-simulated

    def test_resume_resimulates_only_missing_cells(self, tmp_path, monkeypatch):
        jobs = _jobs()
        first = run_variants(jobs, jobs=2)
        # one journaled result vanishes (corruption, manual delete, ...)
        victim = jobs[2]
        cache.stats_path(victim.trace_key, victim.config).unlink()

        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        supervisor.set_resume(True)
        resumed = run_variants(jobs, jobs=2)
        assert resumed == first
        counters = obs_metrics.supervisor_counters()
        assert counters.resumed == len(jobs) - 1
        assert counters.journal_stale == 1
        simulated = [
            r for r in obs_metrics.variant_records() if r.source == "simulated"
        ]
        assert len(simulated) == 1  # exactly the vanished cell

    def test_without_resume_the_journal_restarts(self, tmp_path):
        jobs = _jobs(n_modes=1)
        run_variants(jobs, jobs=2)
        journal_dir = tmp_path / "cache" / "journal"
        (journal_file,) = journal_dir.iterdir()
        clear_trace_cache()
        supervisor.reset()  # resume NOT requested
        run_variants(jobs, jobs=2)
        # journal was rewritten, not appended to
        lines = journal_file.read_text().splitlines()
        assert len(lines) == len(jobs)


class TestQuarantineResume:
    """Quarantine decisions persist in the journal, so ``--resume``
    sends known-poisonous jobs straight to the serial fallback instead
    of burning the retry ladder again."""

    def test_journal_separates_quarantine_from_done(self, tmp_path):
        journal = supervisor.CampaignJournal(tmp_path, "q1")
        journal.append("d1", "LL/base", "simulated")
        journal.append_quarantine("d2", "HM/base")
        journal.close()
        reopened = supervisor.CampaignJournal(tmp_path, "q1")
        assert reopened.load_done() == {"d1"}
        assert reopened.load_quarantined() == {"d2"}

    def test_later_completion_wins_over_quarantine(self, tmp_path):
        # the serial fallback completed the job after quarantining it
        journal = supervisor.CampaignJournal(tmp_path, "q2")
        journal.append_quarantine("d1", "LL/base")
        journal.append("d1", "LL/base", "simulated")
        journal.close()
        reopened = supervisor.CampaignJournal(tmp_path, "q2")
        assert reopened.load_done() == {"d1"}

    def test_resume_inherits_journaled_quarantine(self, tmp_path, monkeypatch):
        jobs = _jobs()
        first = run_variants(jobs, jobs=2)

        # reconstruct the journal as an interrupted run would have left
        # it: the victim was quarantined, never completed, and its
        # result never landed in the store
        victim = jobs[2]
        digest = cache.stats_digest(victim.trace_key, victim.config)
        cache.stats_path(victim.trace_key, victim.config).unlink()
        (journal_file,) = (tmp_path / "cache" / "journal").iterdir()
        kept = [
            line
            for line in journal_file.read_text().splitlines()
            if json.loads(line)["job"] != digest
        ]
        kept.append(
            json.dumps(
                {"job": digest, "label": "victim", "source": "quarantined"},
                sort_keys=True, separators=(",", ":"),
            )
        )
        journal_file.write_text("\n".join(kept) + "\n")

        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        supervisor.set_resume(True)
        resumed = run_variants(jobs, jobs=2)
        assert resumed == first  # the fallback still produced the truth
        counters = obs_metrics.supervisor_counters()
        assert counters.resumed == len(jobs) - 1
        assert counters.resumed_quarantined == 1
        report = supervisor.campaign_reports()[-1]
        assert report.resumed_quarantined == 1
        kinds = {event["event"] for event in report.events}
        assert "resume_quarantine" in kinds

    def test_kill_campaign_journals_quarantine_then_resumes(
        self, tmp_path, monkeypatch
    ):
        jobs = _jobs(n_modes=1)
        serial = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "kill:1.0")
        monkeypatch.setenv(supervisor.ENV_MAX_ATTEMPTS, "1")
        results = run_variants(jobs, jobs=2)
        assert results == serial
        campaign = supervisor.campaign_id(jobs)
        journal = supervisor.CampaignJournal(
            tmp_path / "cache" / "journal", campaign
        )
        quarantined = journal.load_quarantined()
        done = journal.load_done()
        assert quarantined  # every retry exhausted under kill:1.0
        # ...and the serial fallback still completed every sim cell
        sim_digests = {
            cache.stats_digest(job.trace_key, job.config) for job in jobs
        }
        assert sim_digests <= done

        # resume after the crash window: nothing re-simulates, the stale
        # quarantine records don't mask the completions that followed
        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        supervisor.set_resume(True)
        resumed = run_variants(jobs, jobs=2)
        assert resumed == serial
        counters = obs_metrics.supervisor_counters()
        assert counters.resumed == len(jobs)
        assert counters.resumed_quarantined == 0


class TestFailureReport:
    def test_report_aggregates_campaigns(self, tmp_path, monkeypatch):
        monkeypatch.setenv(supervisor.ENV_CHAOS, "kill:1.0")
        run_variants(_jobs(n_modes=1), jobs=2)
        report = supervisor.failure_report()
        assert report["schema"] == 2
        assert report["recovered"] is True
        assert len(report["campaigns"]) == 1
        campaign = report["campaigns"][0]
        assert campaign["jobs"] == 2
        assert campaign["chaos"] == "kill:1"
        kinds = {event["event"] for event in campaign["events"]}
        assert "worker_death" in kinds

    def test_write_failure_report(self, tmp_path):
        run_variants(_jobs(n_modes=1), jobs=2)
        path = supervisor.write_failure_report(tmp_path / "failures.json")
        data = json.loads(path.read_text())
        assert data["totals"]["campaigns"] == 1
        assert data["recovered"] is False


class TestCliFlags:
    def test_supervise_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["figure", "8", "--resume", "--no-supervise",
             "--job-timeout", "12", "--failures-out", "f.json"]
        )
        assert args.resume and args.no_supervise
        assert args.job_timeout == 12.0
        assert args.failures_out == "f.json"

    def test_flags_exist_on_all_campaign_commands(self):
        from repro.cli import build_parser

        for argv in (
            ["run", "LL", "--resume"],
            ["report", "--no-supervise"],
            ["bench", "--job-timeout", "5"],
            ["validate", "--failures-out", "x.json"],
        ):
            build_parser().parse_args(argv)
