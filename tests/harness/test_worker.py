"""Fleet worker endpoint (repro.harness.worker): job execution over the
sealed wire protocol, error envelopes, lifecycle (shutdown/max-jobs),
and graceful local-cache degradation surfaced to the coordinator."""

import json
import os
import re
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.harness import cache
from repro.harness import supervisor
from repro.harness import transport
from repro.harness.parallel import VariantJob, run_variants
from repro.harness.runner import clear_trace_cache, run_variant
from repro.stats.run import RunStats
from repro.harness.worker import start_worker_thread
from repro.obs import metrics as obs_metrics
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=40, sim_ops=4)
SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    monkeypatch.delenv(supervisor.ENV_CHAOS, raising=False)
    monkeypatch.delenv(transport.ENV_TRANSPORT, raising=False)
    monkeypatch.delenv(transport.ENV_WORKERS, raising=False)
    clear_trace_cache()
    cache.reset_runtime_disable()
    obs_metrics.reset_metrics()
    supervisor.reset()
    transport.reset()
    yield
    clear_trace_cache()
    supervisor.reset()
    transport.reset()
    obs_metrics.reset_metrics()


@pytest.fixture
def worker(tmp_path):
    server, _thread = start_worker_thread(cache_root=str(tmp_path / "wcache"))
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path: str):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def _post(server, path: str, body: bytes):
    request = urllib.request.Request(_url(server, path), data=body, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _job():
    return VariantJob("LL", PersistMode.LOG_P_SF, MachineConfig(), **SMALL)


class TestEndpoints:
    def test_healthz(self, worker):
        status, payload = _get(worker, "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["kind"] == "worker"
        assert payload["jobs_done"] == 0
        assert payload["cache_degraded"] is None

    def test_unknown_paths_404(self, worker):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(worker, "/nope")
        assert err.value.code == 404
        status, _body = _post(worker, "/nope", b"{}")
        assert status == 404

    def test_sim_job_matches_local_execution(self, worker):
        job = _job()
        digest = cache.stats_digest(job.trace_key, job.config)
        blob = transport.encode_job("sim", job.trace_key, job.config, digest, 1)
        status, body = _post(worker, "/job", blob)
        assert status == 200
        record = transport.unseal_record(body)  # CRC must verify
        assert record["ok"] is True
        assert record["kind"] == "sim"
        assert record["digest"] == digest
        assert record["jobs_done"] == 1
        remote = RunStats.from_dict(record["result"])
        local = run_variant(job.abbrev, job.mode, job.config, **SMALL)
        assert remote == local

    def test_trace_job_returns_op_count(self, worker):
        job = _job()
        blob = transport.encode_job("trace", job.trace_key, None, "t0", 1)
        status, body = _post(worker, "/job", blob)
        assert status == 200
        record = transport.unseal_record(body)
        assert record["ok"] is True and record["kind"] == "trace"
        assert isinstance(record["result"], int) and record["result"] > 0

    def test_repeat_job_is_a_cache_hit(self, worker):
        job = _job()
        blob = transport.encode_job("sim", job.trace_key, job.config, "d", 1)
        _status, first = _post(worker, "/job", blob)
        _status, second = _post(worker, "/job", blob)
        assert (
            transport.unseal_record(first)["result"]
            == transport.unseal_record(second)["result"]
        )

    def test_malformed_job_gets_sealed_400(self, worker):
        status, body = _post(worker, "/job", b"this is not a job")
        assert status == 400
        record = transport.unseal_record(body)  # errors are sealed too
        assert record["ok"] is False and "error" in record

    def test_failing_job_gets_sealed_500(self, worker):
        # an unknown benchmark passes protocol checks but fails execution
        job = _job()
        payload = json.loads(
            transport.encode_job("sim", job.trace_key, job.config, "d", 1)
        )
        payload["key"]["abbrev"] = "ZZ"
        status, body = _post(worker, "/job", json.dumps(payload).encode())
        assert status == 400 or status == 500
        record = transport.unseal_record(body)
        assert record["ok"] is False

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        server, thread = start_worker_thread(
            cache_root=str(tmp_path / "wcache2")
        )
        status, _body = _post(server, "/shutdown", b"")
        assert status == 200
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_max_jobs_retires_the_worker(self, tmp_path):
        server, thread = start_worker_thread(
            cache_root=str(tmp_path / "wcache3"), max_jobs=1
        )
        job = _job()
        blob = transport.encode_job("sim", job.trace_key, job.config, "d", 1)
        status, _body = _post(server, "/job", blob)
        assert status == 200
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestCacheDegradedWorker:
    """Satellite: a worker whose local cache writes start failing keeps
    producing correct results and reports the degradation upstream."""

    def _spawn_degraded_worker(self, tmp_path):
        # REPRO_CACHE_DIR pointing at a *file* makes every store fail —
        # a subprocess keeps the runtime-disable flip out of our process
        poison = tmp_path / "not-a-directory"
        poison.write_text("occupied\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[cache.ENV_CACHE_DIR] = str(poison)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        banner = process.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no listen banner: {banner!r}"
        return process, match.group(1), int(match.group(2))

    def test_degraded_worker_still_correct_and_reports_it(
        self, tmp_path, monkeypatch
    ):
        process, host, port = self._spawn_degraded_worker(tmp_path)
        try:
            transport.set_transport("http")
            transport.set_workers([f"{host}:{port}"])
            jobs = [
                VariantJob(ab, PersistMode.LOG_P_SF, MachineConfig(), **SMALL)
                for ab in ("LL", "HM")
            ]
            # ground truth, computed with the transport off
            transport.set_transport("local")
            monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
            baseline = run_variants(jobs, jobs=1)
            monkeypatch.delenv(cache.ENV_NO_CACHE)
            clear_trace_cache()
            obs_metrics.reset_metrics()
            supervisor.reset()
            transport.set_transport("http")
            results = run_variants(jobs, jobs=2)
            assert results == baseline  # degraded cache never costs truth
            counters = obs_metrics.transport_counters()
            assert counters.remote_jobs == len(jobs)
            assert counters.worker_cache_degraded >= 1
        finally:
            process.terminate()
            process.wait(timeout=10)
