"""CLI figure commands across every figure number (repro.cli)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("number", [8, 9, 10, 11, 12, 14])
def test_each_figure_renders(number, capsys):
    assert main(["figure", str(number), "--benchmarks", "LL"]) == 0
    out = capsys.readouterr().out
    assert f"Figure {number}" in out
    assert "LL" in out


def test_figure_13_renders(capsys):
    assert main(["figure", "13", "--benchmarks", "LL"]) == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    for size in (32, 64, 128, 256, 512, 1024):
        assert f"SSB{size}" in out


def test_figures_share_the_trace_cache(capsys):
    """Two figure invocations in one process reuse cached runs — the
    second must not change the first's numbers."""
    main(["figure", "11", "--benchmarks", "LL"])
    first = capsys.readouterr().out
    main(["figure", "11", "--benchmarks", "LL"])
    second = capsys.readouterr().out
    assert first == second
