"""Property: no corrupted cache entry ever resurfaces as wrong data.

The supervisor's chaos mode (and real torn writes / bit rot) can damage
any byte of a stored entry.  The contract of the cache layer is total:
for *any* truncation or byte flip of a stored RPTR2 trace or stats
record, a load either returns the original value exactly or drops the
entry via ``_drop_corrupt`` and reports a miss — never a different
value, never an unhandled exception.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness import cache
from repro.harness.runner import TraceKey, build_trace, clear_trace_cache, run_variant
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=40, sim_ops=4)
KEY = TraceKey("LL", PersistMode.BASE, 7, 40, 4)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    cache.reset_runtime_disable()
    clear_trace_cache()
    yield
    clear_trace_cache()
    cache.reset_runtime_disable()


def _stored_trace_bytes():
    trace = build_trace("LL", PersistMode.BASE, **SMALL)
    path = cache.trace_path(KEY)
    return trace, path, path.read_bytes()


class TestTraceCorruptionIsTotal:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_truncation_loads_right_or_drops(self, data):
        original, path, blob = _stored_trace_bytes()
        clear_trace_cache()
        cut = data.draw(st.integers(0, len(blob) - 1))
        path.write_bytes(blob[:cut])
        loaded = cache.load_cached_trace(KEY)
        if loaded is None:
            assert not path.exists(), "corrupt entry must be dropped"
        else:
            assert list(loaded) == list(original)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_byte_flip_loads_right_or_drops(self, data):
        original, path, blob = _stored_trace_bytes()
        clear_trace_cache()
        mutated = bytearray(blob)
        index = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        mutated[index] ^= flip
        path.write_bytes(bytes(mutated))
        loaded = cache.load_cached_trace(KEY)
        if loaded is None:
            assert not path.exists()
        else:
            assert list(loaded) == list(original)
            assert [i.meta for i in loaded] == [i.meta for i in original]

    def test_dropped_entry_is_counted_and_regenerated(self):
        _original, path, blob = _stored_trace_bytes()
        clear_trace_cache()
        path.write_bytes(blob[: len(blob) // 2])
        before = cache.cache_counters().corrupt_dropped
        assert cache.load_cached_trace(KEY) is None
        assert cache.cache_counters().corrupt_dropped == before + 1
        # the miss self-heals: the next build regenerates and re-stores
        rebuilt = build_trace("LL", PersistMode.BASE, **SMALL)
        assert path.exists()
        assert len(rebuilt) > 0


class TestStatsCorruptionIsTotal:
    def _stored_stats(self):
        stats = run_variant("LL", PersistMode.BASE, **SMALL)
        path = cache.stats_path(KEY, MachineConfig())
        return stats, path, path.read_bytes()

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_corruption_loads_right_or_drops(self, data):
        original, path, blob = self._stored_stats()
        clear_trace_cache()
        mutated = bytearray(blob)
        if data.draw(st.booleans()):
            mutated = mutated[: data.draw(st.integers(0, len(blob) - 1))]
        else:
            mutated[data.draw(st.integers(0, len(blob) - 1))] ^= data.draw(
                st.integers(1, 255)
            )
        path.write_bytes(bytes(mutated))
        loaded = cache.load_cached_stats(KEY, MachineConfig())
        if loaded is None:
            assert not path.exists()
        else:
            assert loaded == original

    def test_flipped_counter_digit_is_rejected(self):
        # the classic silent-corruption case: valid JSON, wrong numbers —
        # only the CRC envelope catches it
        original, path, blob = self._stored_stats()
        envelope = json.loads(blob)
        envelope["record"]["cycles"] += 1
        path.write_text(json.dumps(envelope))
        assert cache.load_cached_stats(KEY, MachineConfig()) is None
        assert not path.exists()
        assert original.cycles > 0

    def test_legacy_flat_record_still_loads(self):
        original, path, _blob = self._stored_stats()
        record = {
            f: getattr(original, f.name)
            for f in __import__("dataclasses").fields(original)
        }
        path.write_text(
            json.dumps({f.name: v for f, v in record.items()})
        )
        loaded = cache.load_cached_stats(KEY, MachineConfig())
        assert loaded == original
