"""Parallel variant scheduler (repro.harness.parallel): serial-vs-parallel
determinism, cache sharing, and job-count resolution."""

import os

import pytest

from repro.harness import cache
from repro.harness import parallel
from repro.harness.parallel import (
    VariantJob,
    default_jobs,
    prefetch_variants,
    run_variants,
    set_default_jobs,
)
from repro.harness.runner import clear_trace_cache, run_variant
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.workloads.registry import WORKLOADS

SMALL = dict(init_ops=40, sim_ops=4)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    clear_trace_cache()
    set_default_jobs(None)
    yield
    clear_trace_cache()
    set_default_jobs(None)


def _fig8_jobs():
    """Every Figure-8 variant of every benchmark, at reduced op counts."""
    base_cfg = MachineConfig()
    sp_cfg = base_cfg.with_sp(256)
    series = [
        (PersistMode.BASE, base_cfg),
        (PersistMode.LOG, base_cfg),
        (PersistMode.LOG_P, base_cfg),
        (PersistMode.LOG_P_SF, base_cfg),
        (PersistMode.LOG_P_SF, sp_cfg),
    ]
    return [
        VariantJob(ab, mode, config, **SMALL)
        for mode, config in series
        for ab in WORKLOADS
    ]


class TestDeterminism:
    def test_parallel_matches_serial_for_every_fig8_variant(self, monkeypatch):
        jobs = _fig8_jobs()
        parallel_results = run_variants(jobs, jobs=3)
        # recompute from scratch: fresh memo, no disk cache
        clear_trace_cache()
        monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
        serial_results = run_variants(jobs, jobs=1)
        assert len(parallel_results) == len(jobs)
        for job, par, ser in zip(jobs, parallel_results, serial_results):
            assert par == ser, job

    def test_parallel_without_persistent_cache(self, monkeypatch):
        # the scheduler falls back to a scratch store shared by workers
        monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
        jobs = [
            VariantJob("LL", PersistMode.BASE, MachineConfig(), **SMALL),
            VariantJob("LL", PersistMode.LOG_P_SF, MachineConfig(), **SMALL),
            VariantJob("LL", PersistMode.LOG_P_SF, MachineConfig().with_sp(256), **SMALL),
        ]
        par = run_variants(jobs, jobs=2)
        clear_trace_cache()
        ser = run_variants(jobs, jobs=1)
        assert par == ser


class TestCacheSharing:
    def test_workers_populate_the_shared_store(self, tmp_path):
        jobs = [
            VariantJob("LL", PersistMode.LOG_P_SF, MachineConfig(), **SMALL),
            VariantJob("LL", PersistMode.LOG_P_SF, MachineConfig().with_sp(256), **SMALL),
        ]
        run_variants(jobs, jobs=2)
        root = tmp_path / "cache"
        # one shared trace (both variants replay the same LOG_P_SF trace),
        # one stats record per machine configuration
        assert len(list((root / "traces").iterdir())) == 1
        assert len(list((root / "stats").iterdir())) == 2

    def test_results_land_in_process_memo(self):
        jobs = [VariantJob("LL", PersistMode.BASE, MachineConfig(), **SMALL)]
        (result,) = run_variants(jobs, jobs=2)
        memo = run_variant("LL", PersistMode.BASE, MachineConfig(), **SMALL)
        assert memo is result

    def test_prefetch_dedups_and_warms(self):
        base_cfg = MachineConfig()
        pairs = [("LL", PersistMode.BASE, base_cfg)] * 3
        results = prefetch_variants(pairs, jobs=1)
        assert len(results) == 1
        again = run_variant("LL", PersistMode.BASE, base_cfg)
        assert again is results[0]


class TestInterrupt:
    def test_ctrl_c_kills_workers_and_reraises(self, monkeypatch):
        """Ctrl-C mid-campaign must SIGKILL in-flight workers and cancel
        the queue instead of blocking in the executor's atexit join."""
        from repro.harness import supervisor

        events = []

        class FakeProc:
            def kill(self):
                events.append("kill")

        class FakePool:
            def __init__(self, max_workers=None):
                self._processes = {1: FakeProc(), 2: FakeProc()}

            def map(self, fn, payloads):
                raise KeyboardInterrupt

            def shutdown(self, wait=True, cancel_futures=False):
                events.append(("shutdown", wait, cancel_futures))

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", FakePool)
        supervisor.set_enabled(False)  # exercise the legacy scheduler path
        try:
            jobs = [
                VariantJob("LL", PersistMode.BASE, MachineConfig(), **SMALL),
                VariantJob("HM", PersistMode.BASE, MachineConfig(), **SMALL),
            ]
            with pytest.raises(KeyboardInterrupt):
                run_variants(jobs, jobs=2)
        finally:
            supervisor.set_enabled(True)
        assert events.count("kill") == 2
        assert ("shutdown", False, True) in events


class TestJobResolution:
    def test_default_tracks_cpu_count(self):
        assert default_jobs() == (os.cpu_count() or 1)

    def test_cli_override(self):
        set_default_jobs(3)
        assert default_jobs() == 3
        set_default_jobs(0)  # clamped
        assert default_jobs() == 1

    def test_single_job_never_spawns_workers(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor should not be used")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", no_pool)
        jobs = [VariantJob("LL", PersistMode.BASE, MachineConfig(), **SMALL)]
        (result,) = run_variants(jobs, jobs=1)
        assert result.cycles > 0
