"""Persistent on-disk cache (repro.harness.cache): cold/warm equivalence,
keying, invalidation, and env overrides."""

import json
import os
import time

import pytest

from repro.harness import cache
from repro.harness import runner
from repro.harness.runner import TraceKey, build_trace, clear_trace_cache, run_variant
from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=40, sim_ops=4)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    cache.reset_runtime_disable()
    clear_trace_cache()
    yield
    clear_trace_cache()
    cache.reset_runtime_disable()


def _no_generation(monkeypatch):
    def boom(key):
        raise AssertionError(f"unexpected trace generation for {key}")

    monkeypatch.setattr(runner, "generate_trace", boom)


class TestColdWarmEquivalence:
    def test_stats_survive_process_cache_clear(self):
        cold = run_variant("LL", PersistMode.BASE, **SMALL)
        clear_trace_cache()
        warm = run_variant("LL", PersistMode.BASE, **SMALL)
        assert warm == cold
        assert warm is not cold

    def test_warm_run_reads_disk_only(self, monkeypatch):
        run_variant("LL", PersistMode.LOG_P_SF, **SMALL)
        clear_trace_cache()
        _no_generation(monkeypatch)
        # both the stats and (for a new config) the trace come from disk
        run_variant("LL", PersistMode.LOG_P_SF, **SMALL)
        run_variant(
            "LL", PersistMode.LOG_P_SF, MachineConfig().with_sp(256), **SMALL
        )

    def test_trace_loaded_from_disk(self, monkeypatch):
        cold = build_trace("LL", PersistMode.BASE, **SMALL)
        clear_trace_cache()
        _no_generation(monkeypatch)
        warm = build_trace("LL", PersistMode.BASE, **SMALL)
        assert warm is not cold
        assert list(warm) == list(cold)


class TestKeying:
    def test_config_change_invalidates(self):
        key = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        base = MachineConfig()
        other = MachineConfig(rob_entries=64)
        assert cache.stats_digest(key, base) != cache.stats_digest(key, other)
        run_variant("LL", PersistMode.BASE, base, **SMALL)
        clear_trace_cache()
        assert cache.load_cached_stats(key, base) is not None
        assert cache.load_cached_stats(key, other) is None

    def test_schema_bump_invalidates(self, monkeypatch):
        key = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        config = MachineConfig()
        run_variant("LL", PersistMode.BASE, config, **SMALL)
        assert cache.load_cached_stats(key, config) is not None
        assert cache.load_cached_trace(key) is not None
        monkeypatch.setattr(cache, "CACHE_SCHEMA_VERSION", cache.CACHE_SCHEMA_VERSION + 1)
        assert cache.load_cached_stats(key, config) is None
        assert cache.load_cached_trace(key) is None

    def test_seed_and_op_counts_key_traces(self):
        a = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        b = TraceKey("LL", PersistMode.BASE, 8, 40, 4)
        c = TraceKey("LL", PersistMode.BASE, 7, 41, 4)
        digests = {cache.trace_digest(k) for k in (a, b, c)}
        assert len(digests) == 3


class TestEnvOverrides:
    def test_no_cache_disables_everything(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
        key = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        assert cache.cache_root() is None
        assert cache.store_trace(key, build_trace("LL", PersistMode.BASE, **SMALL)) is None
        assert cache.load_cached_trace(key) is None
        assert not (tmp_path / "cache").exists()

    def test_cache_dir_honoured(self, tmp_path):
        run_variant("LL", PersistMode.BASE, **SMALL)
        root = tmp_path / "cache"
        assert any((root / "traces").iterdir())
        assert any((root / "stats").iterdir())


class TestRobustness:
    def test_corrupt_trace_is_a_miss(self):
        key = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        build_trace("LL", PersistMode.BASE, **SMALL)
        path = cache.trace_path(key)
        path.write_bytes(b"not a trace")
        assert cache.load_cached_trace(key) is None
        assert not path.exists()  # corrupt entries are dropped

    def test_corrupt_stats_is_a_miss(self):
        key = TraceKey("LL", PersistMode.BASE, 7, 40, 4)
        config = MachineConfig()
        run_variant("LL", PersistMode.BASE, config, **SMALL)
        path = cache.stats_path(key, config)
        path.write_text("{broken")
        assert cache.load_cached_stats(key, config) is None

    def test_clear_cache_counts_files(self):
        run_variant("LL", PersistMode.BASE, **SMALL)
        info = cache.cache_info()
        assert info["traces"] == 1 and info["stats"] == 1
        assert cache.clear_cache() == 2
        assert cache.cache_info()["bytes"] == 0


class TestStaleTmpSweep:
    def _stale(self, root, sub, name, age_s=7200.0):
        path = root / sub / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"partial write")
        old = time.time() - age_s
        os.utime(path, (old, old))
        return path

    def test_sweep_removes_old_staging_files_only(self, tmp_path):
        run_variant("LL", PersistMode.BASE, **SMALL)
        root = tmp_path / "cache"
        stale = self._stale(root, "traces", "deadbeef.rptr.a1b2c3")
        fresh = root / "stats" / "cafef00d.json.x9y8z7"
        fresh.write_bytes(b"in-flight writer")
        removed = cache.sweep_stale_tmp(min_age_s=3600.0)
        assert removed == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's staging file survives
        # finished entries are never touched
        assert cache.cache_info()["traces"] == 1

    def test_cache_info_sweeps_and_reports(self, tmp_path):
        run_variant("LL", PersistMode.BASE, **SMALL)
        root = tmp_path / "cache"
        self._stale(root, "traces", "feedface.rptr.q1w2e3")
        self._stale(root, "journal", "abc123.jsonl.r4t5y6")
        info = cache.cache_info()
        assert info["stale_tmp_removed"] == 2
        assert info["traces"] == 1 and info["stats"] == 1

    def test_clear_cache_removes_tmp_regardless_of_age(self, tmp_path):
        run_variant("LL", PersistMode.BASE, **SMALL)
        root = tmp_path / "cache"
        fresh = root / "traces" / "deadbeef.rptr.zz11"
        fresh.write_bytes(b"just written")
        assert cache.clear_cache() == 3  # trace + stats + staging file
        assert not fresh.exists()


class TestRuntimeDegrade:
    def test_write_failure_degrades_to_cache_off(self, monkeypatch, capsys):
        def no_space(path, writer):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_atomic_write", no_space)
        # the campaign itself must survive: simulation completes, only
        # the store is skipped
        stats = run_variant("LL", PersistMode.BASE, **SMALL)
        assert stats.cycles > 0
        assert cache.runtime_disabled() is not None
        assert "No space left" in cache.runtime_disabled()
        assert not cache.cache_enabled()
        assert cache.cache_root() is None
        err = capsys.readouterr().err
        assert err.count("cache write failed") == 1

    def test_degrade_reported_by_cache_info(self, monkeypatch):
        monkeypatch.setattr(
            cache, "_RUNTIME_DISABLED", "OSError: [Errno 28] fake"
        )
        info = cache.cache_info()
        assert info["degraded"] == "OSError: [Errno 28] fake"
        assert not info["enabled"]

    def test_reset_rearms_the_cache(self, monkeypatch):
        monkeypatch.setattr(cache, "_RUNTIME_DISABLED", "OSError: fake")
        assert not cache.cache_enabled()
        cache.reset_runtime_disable()
        assert cache.cache_enabled()
        run_variant("LL", PersistMode.BASE, **SMALL)
        assert cache.cache_info()["stats"] == 1


class TestRunStatsRoundTrip:
    def test_from_dict_ignores_derived_keys(self):
        stats = RunStats(cycles=100, instructions=250, clflushes=3)
        rebuilt = RunStats.from_dict(stats.as_dict())
        assert rebuilt == stats

    def test_disk_round_trip_preserves_every_counter(self):
        stats = run_variant("LL", PersistMode.LOG_P_SF, **SMALL)
        key = TraceKey("LL", PersistMode.LOG_P_SF, 7, 40, 4)
        clear_trace_cache()
        loaded = cache.load_cached_stats(key, MachineConfig())
        assert loaded == stats
        # the JSON envelope holds raw counters plus their checksum
        # (derived metrics are recomputed by RunStats properties)
        envelope = json.loads(cache.stats_path(key, MachineConfig()).read_text())
        record = envelope["record"]
        assert "ipc" not in record
        assert record["cycles"] == stats.cycles
        assert envelope["crc"] == cache._record_crc(record)
