"""Fleet transport (repro.harness.transport): wire protocol integrity,
network chaos classes, the degradation ladder (fleet -> survivors ->
local pool), and byte-identical merges across loopback HTTP workers."""

import json
import socket

import pytest

from repro.harness import cache
from repro.harness import supervisor
from repro.harness import transport
from repro.harness.parallel import VariantJob, run_variants
from repro.harness.runner import clear_trace_cache
from repro.harness.worker import start_worker_thread
from repro.obs import metrics as obs_metrics
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=40, sim_ops=4)

TRANSPORT_ENV = (
    transport.ENV_TRANSPORT,
    transport.ENV_WORKERS,
    transport.ENV_NET_TIMEOUT,
    transport.ENV_WORKER_MAX_FAILURES,
    transport.ENV_WORKER_QUARANTINE,
    transport.ENV_WORKER_MAX_QUARANTINES,
    transport.ENV_HEARTBEAT_INTERVAL,
    transport.ENV_HEARTBEAT_MISSES,
)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    for var in (
        supervisor.ENV_CHAOS,
        supervisor.ENV_CHAOS_SEED,
        supervisor.ENV_JOB_TIMEOUT,
        supervisor.ENV_MAX_ATTEMPTS,
        supervisor.ENV_MAX_POOL_REBUILDS,
    ) + TRANSPORT_ENV:
        monkeypatch.delenv(var, raising=False)
    # fleet tests should fail fast, not wait out production timeouts
    monkeypatch.setenv(transport.ENV_NET_TIMEOUT, "10")
    monkeypatch.setenv(transport.ENV_WORKER_QUARANTINE, "0.05")
    clear_trace_cache()
    cache.reset_runtime_disable()
    obs_metrics.reset_metrics()
    supervisor.reset()
    transport.reset()
    yield
    clear_trace_cache()
    supervisor.reset()
    transport.reset()
    obs_metrics.reset_metrics()


def _jobs():
    series = [
        (PersistMode.BASE, MachineConfig()),
        (PersistMode.LOG_P_SF, MachineConfig()),
        (PersistMode.LOG_P_SF, MachineConfig().with_sp(256)),
    ]
    return [
        VariantJob(ab, mode, config, **SMALL)
        for mode, config in series
        for ab in ("LL", "HM")
    ]


def _serial_baseline(jobs, monkeypatch):
    """Chaos-free, transport-free serial results (the ground truth)."""
    monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
    clear_trace_cache()
    results = run_variants(jobs, jobs=1)
    monkeypatch.delenv(cache.ENV_NO_CACHE)
    clear_trace_cache()
    return results


@pytest.fixture
def fleet(tmp_path):
    """Two in-thread loopback workers with private stores, registered as
    the http transport; yields the servers, shuts them down after."""
    servers = []
    for index in range(2):
        server, _thread = start_worker_thread(
            cache_root=str(tmp_path / f"worker{index}")
        )
        servers.append(server)
    transport.set_transport("http")
    transport.set_workers(
        [f"127.0.0.1:{server.server_address[1]}" for server in servers]
    )
    yield servers
    for server in servers:
        server.shutdown()
        server.server_close()


def _free_closed_port() -> int:
    """A port with nothing listening on it (conn-refused guaranteed)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_job_round_trip(self):
        config = MachineConfig().with_sp(256)
        key = VariantJob("BT", PersistMode.LOG_P_SF, config, **SMALL).trace_key
        blob = transport.encode_job("sim", key, config, "abc123", 2)
        kind, key2, config2, digest, attempt = transport.decode_job(blob)
        assert kind == "sim"
        assert key2 == key
        assert config2 == config
        assert (digest, attempt) == ("abc123", 2)

    def test_trace_job_carries_no_config(self):
        key = VariantJob("BT", PersistMode.BASE, MachineConfig()).trace_key
        blob = transport.encode_job("trace", key, None, "d1", 0)
        kind, _key, config, _digest, _attempt = transport.decode_job(blob)
        assert kind == "trace" and config is None

    def test_decode_rejects_garbage(self):
        for blob in (
            b"\xff\xfe",
            b"[1,2]",
            b'{"schema": 99, "kind": "sim"}',
            b'{"schema": 1, "kind": "explode"}',
            b'{"schema": 1, "kind": "sim", "key": {"abbrev": "BT"}}',
        ):
            with pytest.raises(transport.TransportProtocolError):
                transport.decode_job(blob)

    def test_sim_without_config_rejected(self):
        key = VariantJob("BT", PersistMode.BASE, MachineConfig()).trace_key
        payload = json.loads(transport.encode_job("sim", key, MachineConfig(), "d", 0))
        payload["config"] = None
        with pytest.raises(transport.TransportProtocolError, match="config"):
            transport.decode_job(json.dumps(payload).encode())

    def test_envelope_round_trip(self):
        record = {"ok": True, "digest": "x", "result": {"cycles": 12}}
        assert transport.unseal_record(transport.seal_record(record)) == record

    def test_envelope_rejects_flipped_bytes(self):
        import random

        sealed = transport.seal_record({"ok": True, "value": 123456})
        rng = random.Random(0)
        rejected = 0
        for _ in range(16):
            damaged = transport._garble_bytes(sealed, rng)
            try:
                transport.unseal_record(damaged)
            except transport.TransportProtocolError:
                rejected += 1
        assert rejected == 16  # corrupt bytes can never become results

    def test_parse_hostport(self):
        assert transport.parse_hostport("10.0.0.1:8750") == ("10.0.0.1", 8750)
        assert transport.parse_hostport(":9000") == ("127.0.0.1", 9000)
        for bad in ("nohost", "host:notaport", "host:99999"):
            with pytest.raises(transport.TransportConfigError):
                transport.parse_hostport(bad)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_default_transport_is_local(self):
        assert transport.configured_transport() == "local"
        assert transport.worker_addresses() == []

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_TRANSPORT, "http")
        monkeypatch.setenv(transport.ENV_WORKERS, "a:1, b:2 ,")
        assert transport.configured_transport() == "http"
        assert transport.worker_addresses() == ["a:1", "b:2"]

    def test_cli_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_TRANSPORT, "http")
        transport.set_transport("local")
        assert transport.configured_transport() == "local"

    def test_unknown_transport_rejected(self, monkeypatch):
        with pytest.raises(transport.TransportConfigError):
            transport.set_transport("carrier-pigeon")
        monkeypatch.setenv(transport.ENV_TRANSPORT, "smoke-signals")
        with pytest.raises(transport.TransportConfigError):
            transport.configured_transport()

    def test_http_without_workers_is_an_error(self):
        transport.set_transport("http")
        report = supervisor.CampaignReport(campaign="c", jobs=0)
        with pytest.raises(transport.TransportConfigError, match="worker"):
            transport.maybe_fleet(
                supervisor.current_config(), supervisor.ChaosSpec(), report
            )

    def test_fleet_config_env(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_NET_TIMEOUT, "1.5")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_FAILURES, "2")
        monkeypatch.setenv(transport.ENV_HEARTBEAT_INTERVAL, "0.25")
        config = transport.FleetConfig.from_env()
        assert config.request_timeout == 1.5
        assert config.worker_max_failures == 2
        assert config.heartbeat_interval == 0.25

    def test_fleet_config_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_NET_TIMEOUT, "soon")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_FAILURES, "-2")
        config = transport.FleetConfig.from_env()
        assert config.request_timeout == 60.0
        assert config.worker_max_failures == 1  # clamped, not defaulted


# ----------------------------------------------------------------------
# network chaos spec
# ----------------------------------------------------------------------
class TestNetworkChaosSpec:
    def test_parse_network_classes(self):
        spec = supervisor.ChaosSpec.parse(
            "drop:0.1,delay:0.2,garble:0.3,partition:0.4"
        )
        assert (spec.drop, spec.delay, spec.garble, spec.partition) == (
            0.1, 0.2, 0.3, 0.4,
        )
        assert spec.network_active() and not spec.process_active()
        assert spec.active()
        assert spec.render() == "drop:0.1,delay:0.2,garble:0.3,partition:0.4"

    def test_mixed_classes_split_correctly(self):
        spec = supervisor.ChaosSpec.parse("kill:0.5,drop:0.5")
        assert spec.process_active() and spec.network_active()

    def test_network_chaos_does_not_reach_pool_workers(self):
        spec = supervisor.ChaosSpec.parse("drop:1.0")
        report = supervisor.CampaignReport(campaign="c", jobs=0)
        runner = supervisor._PhaseRunner(
            1, ".", supervisor.current_config(), spec, report, lambda *a: None
        )
        assert runner.chaos is None  # net faults belong to the transport


# ----------------------------------------------------------------------
# the fleet end to end (loopback workers)
# ----------------------------------------------------------------------
class TestFleetExecution:
    def test_fleet_matches_serial(self, fleet, monkeypatch):
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        results = run_variants(jobs, jobs=2)
        assert results == baseline
        counters = obs_metrics.transport_counters()
        assert counters.remote_jobs == len(jobs)
        assert counters.degraded_local == 0
        report = supervisor.campaign_reports()[-1]
        assert report.transport == "http"
        assert report.remote == len(jobs)

    def test_remote_results_are_journaled_and_resumable(self, fleet, monkeypatch):
        jobs = _jobs()
        run_variants(jobs, jobs=2)
        # a fresh process-alike resume: memo cleared, same cache root
        clear_trace_cache()
        obs_metrics.reset_metrics()
        supervisor.reset()
        supervisor.set_resume(True)
        # the fleet is gone — resume must not need it
        transport.reset()
        results = run_variants(jobs, jobs=2)
        counters = obs_metrics.supervisor_counters()
        assert counters.resumed == len(jobs)
        baseline = _serial_baseline(jobs, monkeypatch)
        assert results == baseline

    def test_chaos_fleet_matches_serial(self, fleet, monkeypatch):
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(
            supervisor.ENV_CHAOS, "drop:0.2,delay:0.15,garble:0.2,partition:0.15"
        )
        monkeypatch.setenv(supervisor.ENV_CHAOS_SEED, "2")
        results = run_variants(jobs, jobs=2)
        assert results == baseline
        counters = obs_metrics.transport_counters()
        assert counters.requests > len(jobs)  # chaos forced extra attempts
        line = obs_metrics.render_metrics_line()
        assert "transport [" in line

    def test_garble_storm_degrades_to_local_pool(self, fleet, monkeypatch):
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "garble:1.0")
        results = run_variants(jobs, jobs=2)
        assert results == baseline  # the ladder never costs correctness
        counters = obs_metrics.transport_counters()
        assert counters.crc_rejected > 0
        assert counters.fleet_exhausted > 0 or counters.dead_workers > 0
        assert counters.degraded_local >= 1
        assert counters.remote_jobs == 0  # no garbled byte became a result
        report = supervisor.campaign_reports()[-1]
        assert report.degraded_local is True

    def test_full_partition_degrades_to_local_pool(self, fleet, monkeypatch):
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        monkeypatch.setenv(supervisor.ENV_CHAOS, "partition:1.0")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_FAILURES, "1")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_QUARANTINES, "0")
        results = run_variants(jobs, jobs=2)
        assert results == baseline
        counters = obs_metrics.transport_counters()
        assert counters.dead_workers == 2
        assert counters.degraded_local >= 1

    def test_worker_death_reassigns_to_survivor(self, tmp_path, monkeypatch):
        # worker A serves exactly 2 jobs then exits; its later refusals
        # must reassign work to B without burning task attempts
        server_a, _ = start_worker_thread(
            cache_root=str(tmp_path / "wa"), max_jobs=2
        )
        server_b, _ = start_worker_thread(cache_root=str(tmp_path / "wb"))
        transport.set_transport("http")
        transport.set_workers(
            [
                f"127.0.0.1:{server_a.server_address[1]}",
                f"127.0.0.1:{server_b.server_address[1]}",
            ]
        )
        monkeypatch.setenv(transport.ENV_WORKER_MAX_FAILURES, "1")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_QUARANTINES, "0")
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        try:
            results = run_variants(jobs, jobs=2)
        finally:
            server_b.shutdown()
            server_b.server_close()
        assert results == baseline
        counters = obs_metrics.transport_counters()
        assert counters.dead_workers >= 1
        assert counters.reassignments >= 1
        assert counters.remote_jobs >= len(jobs) - 2  # B picked up the rest

    def test_all_workers_unreachable_falls_back_locally(self, monkeypatch):
        transport.set_transport("http")
        transport.set_workers([f"127.0.0.1:{_free_closed_port()}"])
        monkeypatch.setenv(transport.ENV_WORKER_MAX_FAILURES, "1")
        monkeypatch.setenv(transport.ENV_WORKER_MAX_QUARANTINES, "0")
        jobs = _jobs()
        baseline = _serial_baseline(jobs, monkeypatch)
        results = run_variants(jobs, jobs=2)
        assert results == baseline
        counters = obs_metrics.transport_counters()
        assert counters.dead_workers == 1
        assert counters.remote_jobs == 0
        assert counters.degraded_local >= 1

    def test_heartbeats_probe_idle_workers(self, fleet, monkeypatch):
        monkeypatch.setenv(transport.ENV_HEARTBEAT_INTERVAL, "0.01")
        jobs = _jobs()
        run_variants(jobs, jobs=2)
        assert obs_metrics.transport_counters().heartbeats > 0

    def test_transport_counters_flow_to_telemetry(self, fleet):
        from repro.obs import telemetry

        telemetry.set_enabled(True)
        try:
            run_variants(_jobs(), jobs=2)
            counters = telemetry.snapshot()["counters"]
            assert counters.get("transport.requests", 0) >= len(_jobs())
            assert counters.get("transport.remote_jobs", 0) >= 1
        finally:
            telemetry.set_enabled(False)
            telemetry.reset()

    def test_local_transport_never_touches_the_network(self, monkeypatch):
        jobs = _jobs()
        run_variants(jobs, jobs=2)
        assert not obs_metrics.transport_counters().any_activity()


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestTransportCli:
    def test_http_without_workers_exits_2(self, capsys):
        from repro.cli import main

        assert main(["run", "LL", "--transport", "http"]) == 2
        assert "worker endpoints" in capsys.readouterr().err

    def test_bad_worker_address_exits_2(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "LL", "--transport", "http", "--workers", "nonsense"]
        )
        assert code == 2

    def test_local_transport_flag_accepted(self, capsys):
        from repro.cli import main

        assert main(["run", "LL", "--transport", "local", "--jobs", "1"]) == 0
        assert "variant" in capsys.readouterr().out
