"""Table renderers (repro.harness.tables)."""

from repro.harness.tables import table1_text, table2_text, table3_text
from repro.uarch.config import MachineConfig


class TestTable1:
    def test_all_benchmarks_listed(self):
        text = table1_text()
        for ab in ("GH", "HM", "LL", "SS", "AT", "BT", "RT"):
            assert ab in text

    def test_paper_counts_present(self):
        text = table1_text()
        assert "2,600,000" in text  # Graph init ops
        assert "500,000" in text    # String Swap sim ops

    def test_linked_list_cap_documented(self):
        assert "Linked-List" in table1_text()


class TestTable2:
    def test_core_row(self):
        text = table2_text()
        assert "2.1GHz" in text
        assert "4-wide" in text
        assert "ROB: 128" in text
        assert "48/48/48" in text

    def test_cache_rows(self):
        text = table2_text()
        assert "32KB, 8-way" in text
        assert "256KB, 8-way" in text
        assert "2MB, 16-way" in text

    def test_nvmm_row(self):
        text = table2_text()
        assert "50ns read" in text
        assert "150ns write" in text

    def test_checkpoint_row(self):
        assert "4 entries" in table2_text()

    def test_respects_custom_config(self):
        from dataclasses import replace

        config = replace(MachineConfig(), rob_entries=256)
        assert "ROB: 256" in table2_text(config)


class TestTable3:
    def test_all_sizes(self):
        text = table3_text()
        for size in (32, 64, 128, 256, 512, 1024):
            assert str(size) in text

    def test_latencies(self):
        lines = table3_text().splitlines()
        assert lines[-1].split()[-1] == "10"  # 1024-entry latency
