"""Regression: multi-core cells must never alias single-core cache
entries.

Before the key carried ``cores``/``contention``, a 2-core aggregate
stored under ``(abbrev, mode, seed, ops)`` would silently overwrite —
and later be served as — the single-core result for the same variant.
These tests pin the fixed keying at every layer: digest, disk path,
``peek_cached_stats``, and the run_* entry points.
"""

from collections import namedtuple

import pytest

from repro.harness import cache
from repro.harness.runner import (
    TraceKey,
    clear_trace_cache,
    peek_cached_stats,
    run_system,
    run_variant,
)
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

SMALL = dict(init_ops=24, sim_ops=8)
MODE = PersistMode.LOG_P_SF


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    cache.reset_runtime_disable()
    clear_trace_cache()
    yield
    clear_trace_cache()
    cache.reset_runtime_disable()


class TestKeying:
    def test_core_count_changes_digest(self):
        single = TraceKey("HM", MODE, 7)
        multi = TraceKey("HM", MODE, 7, cores=2)
        assert cache.trace_digest(single) != cache.trace_digest(multi)
        config = MachineConfig()
        assert cache.stats_digest(single, config) != cache.stats_digest(multi, config)

    def test_contention_changes_digest(self):
        a = TraceKey("HM", MODE, 7, cores=2, contention=0.0)
        b = TraceKey("HM", MODE, 7, cores=2, contention=0.9)
        assert cache.trace_digest(a) != cache.trace_digest(b)

    def test_default_fields_keep_legacy_digests(self):
        """Keys that predate the ``cores``/``contention`` fields (the
        supervisor's journals hold bare tuples) digest identically to
        new single-core keys, so old cache entries stay valid."""
        Legacy = namedtuple("Legacy", "abbrev mode seed init_ops sim_ops")
        legacy = Legacy("HM", MODE, 7, None, None)
        modern = TraceKey("HM", MODE, 7)
        assert cache.trace_digest(legacy) == cache.trace_digest(modern)


class TestNoAliasing:
    def test_system_and_variant_results_coexist(self):
        config = MachineConfig().with_sp(256)
        single = run_variant("HM", MODE, config, **SMALL)
        multi = run_system("HM", MODE, config, cores=2, contention=0.5, **SMALL)
        assert multi.extra["cores"] == 2
        # both survive in the cache under their own keys
        clear_trace_cache()
        single_key = TraceKey("HM", MODE, 7, SMALL["init_ops"], SMALL["sim_ops"])
        multi_key = TraceKey(
            "HM", MODE, 7, SMALL["init_ops"], SMALL["sim_ops"], 2, 0.5
        )
        peeked_single = peek_cached_stats(single_key, config)
        peeked_multi = peek_cached_stats(multi_key, config)
        assert peeked_single is not None and peeked_multi is not None
        assert peeked_single.as_dict() == single.as_dict()
        assert peeked_multi.as_dict() == multi.as_dict()
        assert "cores" not in peeked_single.extra

    def test_contention_cells_are_distinct_entries(self):
        config = MachineConfig().with_sp(256)
        calm = run_system("HM", MODE, config, cores=2, contention=0.0, **SMALL)
        hot = run_system("HM", MODE, config, cores=2, contention=1.0, **SMALL)
        assert hot.extra["conflict_aborts"] > calm.extra["conflict_aborts"]
        clear_trace_cache()
        for contention, fresh in ((0.0, calm), (1.0, hot)):
            key = TraceKey(
                "HM", MODE, 7, SMALL["init_ops"], SMALL["sim_ops"], 2, contention
            )
            peeked = peek_cached_stats(key, config)
            assert peeked is not None
            assert peeked.as_dict() == fresh.as_dict()

    def test_run_system_rejects_single_core(self):
        with pytest.raises(ValueError):
            run_system("HM", MODE, cores=1)
