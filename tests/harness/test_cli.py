"""CLI commands (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7"])

    def test_benchmark_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "XX"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_run(self, capsys):
        assert main(["run", "LL"]) == 0
        out = capsys.readouterr().out
        assert "Linked-List" in out
        assert "SP256" in out

    def test_figure_11(self, capsys):
        assert main(["figure", "11", "--benchmarks", "LL"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_figure_12_subset(self, capsys):
        assert main(["figure", "12", "--benchmarks", "LL", "SS"]) == 0
        out = capsys.readouterr().out
        assert "SS" in out and "GH" not in out

    def test_figure_8_subset(self, capsys):
        assert main(["figure", "8", "--benchmarks", "LL"]) == 0
        out = capsys.readouterr().out
        assert "Log+P+Sf" in out

    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "paper: +20.3%" in out

    def test_crashtest(self, capsys):
        assert main(["crashtest", "LL", "--points", "6"]) == 0
        out = capsys.readouterr().out
        assert "recovered consistently" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["figure", "11", "--benchmarks", "LL"]) == 0  # warm cache
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        text = path.read_text()
        assert "# Reproduction report" in text
        assert "Figure 13" in text
        assert "Headline" in text
