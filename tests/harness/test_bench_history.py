"""Bench history trail and regression comparison (``bench --compare``)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    COMPARE_TOLERANCE,
    append_history,
    comparable,
    compare_to_history,
    load_history,
    render_compare,
)


def _record(**overrides):
    """A minimal plausible bench record."""
    record = {
        "bench": "harness",
        "schema": BENCH_SCHEMA_VERSION,
        "git_rev": "abc1234",
        "timestamp_utc": "2026-08-09T00:00:00+00:00",
        "quick": True,
        "kernel_backend": "numpy",
        "classify_mode": "auto",
        "pipeline_ips_by_backend": {"python": 1_000_000, "numpy": 5_000_000},
        "miss_ips_by_backend": {"python": 400_000, "numpy": 2_000_000},
        "sweep_ips_by_backend": {"python": 900_000, "numpy": 1_500_000},
        "classify_ips": 3_000_000,
        "system_ips": 150_000,
    }
    record.update(overrides)
    return record


class TestHistoryTrail:
    def test_append_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_record(git_rev="aaa"), path)
        append_history(_record(git_rev="bbb"), path)
        loaded = load_history(path)
        assert [rec["git_rev"] for rec in loaded] == ["aaa", "bbb"]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_torn_tail_and_junk_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        good = json.dumps(_record(git_rev="good"))
        path.write_text(good + "\n" + "not json\n" + good[: len(good) // 2])
        loaded = load_history(str(path))
        assert [rec["git_rev"] for rec in loaded] == ["good"]


class TestConcurrentAppends:
    """Two processes appending to one history file must never interleave
    bytes: each append is a single ``write(2)`` on an ``O_APPEND``
    descriptor, which POSIX makes atomic with respect to other writers."""

    WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.harness.bench import append_history
for index in range({count}):
    append_history({{"writer": {writer}, "index": index, "pad": "x" * 200}},
                   {path!r})
"""

    def test_two_writer_stress_yields_only_whole_lines(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        src = str(Path(__file__).resolve().parents[2] / "src")
        count = 50
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    self.WRITER.format(
                        src=src, count=count, writer=writer, path=path
                    ),
                ]
            )
            for writer in (0, 1)
        ]
        for worker in workers:
            assert worker.wait(timeout=60) == 0
        lines = Path(path).read_text().splitlines()
        assert len(lines) == 2 * count
        seen = {0: set(), 1: set()}
        for line in lines:
            record = json.loads(line)  # no torn or interleaved bytes
            seen[record["writer"]].add(record["index"])
        assert seen[0] == set(range(count))
        assert seen[1] == set(range(count))


class TestComparable:
    def test_same_shape_is_comparable(self):
        assert comparable(_record(), _record(git_rev="other"))

    def test_different_backend_quick_or_classify_mode_is_not(self):
        assert not comparable(_record(), _record(kernel_backend="python"))
        assert not comparable(_record(), _record(quick=False))
        assert not comparable(_record(), _record(classify_mode="scalar"))


class TestCompare:
    def test_identical_record_passes(self):
        result = compare_to_history(_record(), [_record(git_rev="prior")])
        assert result["compared"] == 1
        assert result["regressions"] == []

    def test_synthetic_regression_flagged_per_metric(self):
        current = _record(
            pipeline_ips_by_backend={"python": 1_000_000, "numpy": 2_000_000},
        )
        result = compare_to_history(current, [_record(git_rev="prior")])
        assert len(result["regressions"]) == 1
        finding = result["regressions"][0]
        assert "pipeline_ips_by_backend/numpy" in finding
        assert "prior" in finding
        # the untouched python number must not be flagged
        assert not any(
            "python" in finding for finding in result["regressions"]
        )

    def test_drop_within_tolerance_passes(self):
        shrunk = round(5_000_000 * (1 - COMPARE_TOLERANCE + 0.05))
        current = _record(
            pipeline_ips_by_backend={"python": 1_000_000, "numpy": shrunk},
        )
        result = compare_to_history(current, [_record()])
        assert result["regressions"] == []

    def test_baseline_is_best_of_history(self):
        history = [
            _record(system_ips=100_000),
            _record(system_ips=200_000),
            _record(system_ips=120_000),
        ]
        result = compare_to_history(_record(system_ips=130_000), history)
        assert any("system_ips" in f for f in result["regressions"])
        assert result["baselines"]["system_ips"]["ips"] == 200_000

    def test_missing_metric_is_reported(self):
        current = _record()
        del current["system_ips"]
        result = compare_to_history(current, [_record()])
        assert any(
            "system_ips" in finding and "missing" in finding
            for finding in result["regressions"]
        )

    def test_incomparable_records_ignored(self):
        history = [_record(kernel_backend="python", system_ips=999_999_999)]
        result = compare_to_history(_record(), history)
        assert result["compared"] == 0
        assert result["regressions"] == []

    def test_ref_filters_by_git_rev_prefix(self):
        history = [
            _record(git_rev="aaa111", system_ips=500_000),
            _record(git_rev="bbb222", system_ips=100_000),
        ]
        result = compare_to_history(_record(), history, ref="bbb")
        assert result["compared"] == 1
        assert result["regressions"] == []
        result = compare_to_history(_record(), history, ref="aaa")
        assert any("system_ips" in f for f in result["regressions"])

    def test_render_is_human_readable(self):
        current = _record(system_ips=10_000)
        result = compare_to_history(current, [_record()])
        text = render_compare(result)
        assert "REGRESSION" in text
        assert "system_ips" in text
        empty = render_compare(compare_to_history(_record(), []))
        assert "no comparable history" in empty
