"""Harness runner: trace caching and variant execution."""

import pytest

from repro.harness.runner import (
    build_trace,
    clear_trace_cache,
    geomean_overhead,
    run_variant,
    variant_stats,
)
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestTraceCache:
    def test_same_key_returns_same_object(self):
        a = build_trace("LL", PersistMode.BASE, sim_ops=3, init_ops=10)
        b = build_trace("LL", PersistMode.BASE, sim_ops=3, init_ops=10)
        assert a is b

    def test_different_modes_differ(self):
        a = build_trace("LL", PersistMode.BASE, sim_ops=3, init_ops=10)
        b = build_trace("LL", PersistMode.LOG_P_SF, sim_ops=3, init_ops=10)
        assert a is not b
        assert len(b) > len(a)

    def test_clear(self):
        a = build_trace("LL", PersistMode.BASE, sim_ops=3, init_ops=10)
        clear_trace_cache()
        b = build_trace("LL", PersistMode.BASE, sim_ops=3, init_ops=10)
        assert a is not b


class TestVariants:
    def test_run_variant_returns_stats(self):
        stats = run_variant("LL", PersistMode.BASE)
        assert stats.cycles > 0
        assert stats.instructions > 0

    def test_run_variant_cached(self):
        first = run_variant("LL", PersistMode.BASE)
        second = run_variant("LL", PersistMode.BASE)
        assert first is second

    def test_variant_stats_all_modes(self):
        results = variant_stats("LL", sp=True)
        for mode in PersistMode:
            assert results[mode].cycles > 0
        assert results["SP"].cycles > 0

    def test_sp_uses_sp_machine(self):
        results = variant_stats("LL", sp=True)
        assert results["SP"].sp_entries > 0
        assert results[PersistMode.LOG_P_SF].sp_entries == 0


class TestGeomean:
    def test_identity(self):
        assert geomean_overhead([1.0, 1.0]) == pytest.approx(0.0)

    def test_known_value(self):
        assert geomean_overhead([1.21, 1.21]) == pytest.approx(0.21)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean_overhead([])
