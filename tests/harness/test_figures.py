"""Figure-runner structure and renderer tests (repro.harness.figures).

Run on a 2-benchmark subset so they stay fast; the full-suite shape
assertions live in benchmarks/.
"""

import pytest

from repro.harness.figures import (
    GEOMEAN,
    fig8_overheads,
    fig9_instruction_counts,
    fig11_inflight_pcommits,
    fig12_stores_per_pcommit,
    fig13_ssb_sweep,
    fig14_bloom_fp,
    headline_claim,
    render_bar_table,
    render_scalar_series,
)

SUBSET = ["LL", "AT"]


class TestFigureStructures:
    def test_fig8_structure(self):
        data = fig8_overheads(SUBSET)
        assert set(data) == {"Log", "Log+P", "Log+P+Sf", "SP256"}
        for row in data.values():
            assert set(row) == {"LL", "AT", GEOMEAN}

    def test_fig9_structure(self):
        data = fig9_instruction_counts(SUBSET)
        assert set(data) == {"Log", "Log+P", "Log+P+Sf"}
        for row in data.values():
            assert all(ratio >= 1.0 for ratio in row.values())

    def test_fig11_values_positive(self):
        data = fig11_inflight_pcommits(SUBSET)
        assert all(v >= 1 for v in data.values())

    def test_fig12_values_positive(self):
        data = fig12_stores_per_pcommit(SUBSET)
        assert all(v > 0 for v in data.values())

    def test_fig13_subset_of_sizes(self):
        data = fig13_ssb_sweep(SUBSET, sizes=[64, 256])
        assert set(data) == {64, 256}

    def test_fig14_rates_in_unit_interval(self):
        data = fig14_bloom_fp(SUBSET)
        assert all(0.0 <= v <= 1.0 for v in data.values())

    def test_headline_keys(self):
        data = headline_claim(SUBSET)
        assert set(data) == {"fence_overhead_vs_logp", "sp_overhead_vs_logp"}
        assert data["sp_overhead_vs_logp"] < data["fence_overhead_vs_logp"]


class TestRenderers:
    def test_bar_table_alignment(self):
        text = render_bar_table(
            "T", {"A": {"x": 0.5, "y": 0.25}}, columns=["x", "y"]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "+50.0%" in lines[-1]

    def test_bar_table_missing_cell(self):
        text = render_bar_table("T", {"A": {"x": 0.5}}, columns=["x", "z"])
        assert "-" in text.splitlines()[-1]

    def test_bar_table_custom_format(self):
        text = render_bar_table("T", {"A": {"x": 1.5}}, fmt="{:7.2f}", columns=["x"])
        assert "1.50" in text

    def test_scalar_series(self):
        text = render_scalar_series("S", {"LL": 1.25}, fmt="{:8.2f}")
        assert "LL" in text and "1.25" in text


class TestFigureDeterminism:
    def test_fig8_repeatable(self):
        assert fig8_overheads(["LL"]) == fig8_overheads(["LL"])
