"""Multi-core tracing: SystemTracer, conflict records, cross-core
attribution, and the multi-process Perfetto export.

The system contracts under test:

* a traced co-simulation is counter-identical to an untraced one;
* the driver records exactly one :class:`ConflictRecord` per abort,
  with aggressor/victim/replay provenance that reconciles with the
  system counters (``system_attribution_errors``);
* every core's attribution buckets sum to that core's cycles;
* the Chrome trace export carries one process group per core plus the
  shared persistence-domain group, unique track names per group, and
  one properly paired flow arrow per conflict — and the validator
  actually rejects violations of each of those.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.attribution import (
    attribute,
    attribute_system,
    system_attribution_errors,
)
from repro.obs.perfetto import (
    DOMAIN_PID,
    chrome_system_trace_events,
    summarize_chrome_trace,
    validate_chrome_trace,
    write_system_chrome_trace,
)
from repro.obs.tracer import SystemTracer
from repro.uarch.config import MachineConfig
from repro.uarch.system import SystemModel, simulate_system
from repro.workloads.concurrent import generate_concurrent
from repro.txn.modes import PersistMode

SP = MachineConfig().with_sp(256)
SMALL = dict(init_ops=60, sim_ops=40)


def _contended_run(abbrev="HM", cores=2, contention=0.8, seed=3, **ops):
    return generate_concurrent(
        abbrev, PersistMode.LOG_P_SF, n_cores=cores, contention=contention,
        seed=seed, **(ops or SMALL),
    )


@pytest.fixture(scope="module")
def traced_cell():
    """One contended 2-core cell traced once for the whole module."""
    run = _contended_run()
    tracer = SystemTracer(2)
    result = simulate_system(run.traces, SP, system_tracer=tracer)
    return run, tracer, result


class TestSystemTracerSeam:
    def test_traced_matches_untraced_per_core(self, traced_cell):
        run, _, traced = traced_cell
        plain = simulate_system(run.traces, SP)
        for traced_stats, plain_stats in zip(traced.per_core, plain.per_core):
            assert traced_stats.as_dict() == plain_stats.as_dict()
        assert traced.conflict_aborts == plain.conflict_aborts
        assert traced.replayed_instructions == plain.replayed_instructions

    def test_core_count_must_match(self):
        with pytest.raises(ValueError):
            SystemModel(SP, n_cores=2, system_tracer=SystemTracer(3))

    def test_tracers_and_system_tracer_are_exclusive(self):
        with pytest.raises(ValueError):
            SystemModel(
                SP, n_cores=2, tracers=[None, None],
                system_tracer=SystemTracer(2),
            )

    def test_one_record_per_abort_with_provenance(self, traced_cell):
        _, tracer, result = traced_cell
        assert result.conflict_aborts > 0  # the cell actually conflicts
        assert len(tracer.conflicts) == result.conflict_aborts
        for record in tracer.conflicts:
            assert record.aggressor != record.victim
            assert 0 <= record.aggressor < 2
            assert 0 <= record.victim < 2
            assert record.abort_cycles == SP.rollback_penalty
            assert record.replayed > 0
        assert sum(
            tracer.conflict_pairs().values()
        ) == result.conflict_aborts


class TestSystemAttribution:
    def test_no_errors_on_contended_cell(self, traced_cell):
        _, tracer, result = traced_cell
        assert system_attribution_errors(result, tracer) == []

    def test_buckets_sum_to_each_cores_cycles(self, traced_cell):
        _, tracer, result = traced_cell
        report = attribute_system(result, tracer)
        for stats, per_core in zip(result.per_core, report.per_core):
            assert sum(per_core.buckets.values()) == stats.cycles

    def test_pair_totals_match_driver_counters(self, traced_cell):
        _, tracer, result = traced_cell
        report = attribute_system(result, tracer)
        assert sum(report.aborts_by_pair.values()) == result.conflict_aborts
        assert sum(report.abort_cycles_by_pair.values()) == sum(
            stats.conflict_abort_cycles for stats in result.per_core
        )
        assert report.replayed_instructions == result.replayed_instructions

    def test_interference_vs_private_split(self, traced_cell):
        _, tracer, result = traced_cell
        report = attribute_system(result, tracer)
        assert report.interference_cycles == sum(
            stats.conflict_abort_cycles for stats in result.per_core
        )
        assert report.private_drain_cycles >= 0
        rendered = report.render()
        assert "conflict aborts" in rendered
        assert "0->1" in rendered or "1->0" in rendered

    def test_detects_dropped_conflict_record(self, traced_cell):
        _, tracer, result = traced_cell
        truncated = SystemTracer(2)
        truncated.cores = tracer.cores
        truncated.conflicts = tracer.conflicts[:-1]
        errors = system_attribution_errors(result, truncated)
        assert any("conflict records" in error for error in errors)


class TestSystemPerfettoExport:
    def test_export_validates_with_flows_and_tracks(self, traced_cell, tmp_path):
        _, tracer, result = traced_cell
        path = tmp_path / "system.json"
        write_system_chrome_trace(path, tracer, per_core_stats=result.per_core)
        validate_chrome_trace(path)
        summary = summarize_chrome_trace(path)
        # domain group + one group per core; >= 3 tracks overall
        assert summary["processes"] == 3
        assert summary["tracks"] >= 3
        assert summary["flows"] == result.conflict_aborts

    def test_track_names_unique_within_each_process(self, traced_cell):
        _, tracer, result = traced_cell
        events = chrome_system_trace_events(tracer)
        pids = set()
        names = {}
        for event in events:
            pids.add(event["pid"])
            if event.get("ph") == "M" and event["name"] == "thread_name":
                key = (event["pid"], event["tid"])
                name = event["args"]["name"]
                assert names.get(key, name) == name  # no renames
                names[key] = name
        assert DOMAIN_PID in pids
        assert len(pids) == tracer.n_cores + 1
        per_pid = {}
        for (pid, _), name in names.items():
            assert name not in per_pid.get(pid, set()), (
                f"duplicate track {name!r} in pid {pid}"
            )
            per_pid.setdefault(pid, set()).add(name)

    def test_flow_events_pair_start_and_finish(self, traced_cell):
        _, tracer, _ = traced_cell
        starts, finishes = {}, {}
        for event in chrome_system_trace_events(tracer):
            if event.get("ph") == "s":
                starts[event["id"]] = event
            elif event.get("ph") == "f":
                finishes[event["id"]] = event
        assert set(starts) == set(finishes)
        assert len(starts) == len(tracer.conflicts)
        for record, flow_id in zip(tracer.conflicts, sorted(starts)):
            assert starts[flow_id]["pid"] == record.aggressor + 1
            assert finishes[flow_id]["pid"] == record.victim + 1

    def test_validator_rejects_orphan_flow(self, tmp_path):
        tracer = SystemTracer(2)
        run = _contended_run(contention=0.0, seed=1)
        simulate_system(run.traces, SP, system_tracer=tracer)
        path = tmp_path / "orphan.json"
        write_system_chrome_trace(path, tracer)
        data = json.loads(path.read_text())
        data["traceEvents"].append({
            "name": "conflict", "cat": "conflict", "ph": "f", "bp": "e",
            "id": 999, "ts": 0, "pid": 1, "tid": 1,
        })
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="flow"):
            validate_chrome_trace(path)

    def test_validator_rejects_duplicate_track_names(self, tmp_path):
        tracer = SystemTracer(2)
        run = _contended_run(contention=0.0, seed=1)
        simulate_system(run.traces, SP, system_tracer=tracer)
        path = tmp_path / "dup.json"
        write_system_chrome_trace(path, tracer)
        data = json.loads(path.read_text())
        renames = [
            event for event in data["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
            and event["pid"] == 1
        ]
        assert len(renames) >= 2
        renames[1]["args"]["name"] = renames[0]["args"]["name"]
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="tracks named"):
            validate_chrome_trace(path)


class TestSpanIntervalProperty:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=30),
        contention=st.sampled_from([0.0, 0.5, 1.0]),
        cores=st.integers(min_value=2, max_value=3),
    )
    def test_stall_spans_never_exceed_their_cores_cycles(
        self, seed, contention, cores
    ):
        """Every *stall* span a core emits lies within [0, that core's
        cycles] — per-core timelines never borrow another core's clock.

        Restricted to the attribution buckets' source spans: SP's
        wind-down ``epoch``/``pcommit`` lifetime spans legitimately
        outlive the retire clock (hiding commit latency past the last
        instruction is the paper's mechanism), but a stall billed
        beyond its own core's cycles would corrupt attribution.
        """
        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=cores,
            contention=contention, seed=seed, init_ops=24, sim_ops=12,
        )
        tracer = SystemTracer(cores)
        result = simulate_system(run.traces, SP, system_tracer=tracer)
        stall_names = {
            "conflict_abort", "sfence_drain", "checkpoint_stall",
            "ssb_full_stall", "fetch_stall",
        }
        for stats, core_tracer in zip(result.per_core, tracer.cores):
            for event in core_tracer.events:
                assert 0 <= event.ts
                if event.kind == "span" and event.name in stall_names:
                    assert event.end <= stats.cycles
            report = attribute(stats, core_tracer)
            assert sum(report.buckets.values()) == stats.cycles
