"""Interval arithmetic and stall attribution."""

from repro.obs.attribution import (
    ATTRIBUTION_BUCKETS,
    attribute,
    attribution_errors,
    consistency_errors,
    merge_intervals,
    subtract_intervals,
)
from repro.obs.tracer import SpanTracer
from repro.stats.run import RunStats


class TestIntervalOps:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]

    def test_merge_adjacent(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(3, 3), (5, 4)]) == []

    def test_merge_unsorted_input(self):
        assert merge_intervals([(10, 12), (0, 2)]) == [(0, 2), (10, 12)]

    def test_subtract_middle(self):
        assert subtract_intervals([(0, 10)], [(3, 6)]) == [(0, 3), (6, 10)]

    def test_subtract_covering(self):
        assert subtract_intervals([(2, 5)], [(0, 10)]) == []

    def test_subtract_disjoint(self):
        assert subtract_intervals([(0, 2)], [(5, 8)]) == [(0, 2)]

    def test_subtract_multiple(self):
        assert subtract_intervals([(0, 10), (20, 30)], [(1, 2), (8, 22)]) == [
            (0, 1),
            (2, 8),
            (22, 30),
        ]


class TestAttribute:
    def test_priority_order_resolves_overlap(self):
        """A cycle claimed by both sfence-drain and fetch-stall goes to
        the deeper cause (the drain)."""
        tracer = SpanTracer()
        tracer.span("sfence_drain", 0, 10)
        tracer.span("fetch_stall", 5, 15)
        stats = RunStats(cycles=20)
        report = attribute(stats, tracer)
        assert report.buckets["sfence_drain"] == 10
        assert report.buckets["fetch_stall"] == 5  # only [10, 15)
        assert report.buckets["compute"] == 5
        assert report.total() == 20

    def test_buckets_always_sum_to_cycles(self):
        tracer = SpanTracer()
        tracer.span("checkpoint_stall", 2, 6)
        tracer.span("ssb_full_stall", 4, 9)
        tracer.span("fetch_stall", 0, 3)
        stats = RunStats(cycles=12)
        report = attribute(stats, tracer)
        assert report.total() == stats.cycles
        assert attribution_errors(stats, tracer) == []

    def test_no_spans_means_all_compute(self):
        stats = RunStats(cycles=100)
        report = attribute(stats, SpanTracer())
        assert report.compute == 100

    def test_as_dict_and_render(self):
        tracer = SpanTracer()
        tracer.span("fetch_stall", 0, 4)
        report = attribute(RunStats(cycles=10), tracer)
        data = report.as_dict()
        assert data["cycles"] == 10 and data["fetch_stall"] == 4
        text = report.render()
        for name in ("compute",) + ATTRIBUTION_BUCKETS:
            assert name in text


class TestAttributionErrors:
    def test_stall_span_beyond_cycles_flagged(self):
        tracer = SpanTracer()
        tracer.span("sfence_drain", 5, 30)
        errors = attribution_errors(RunStats(cycles=20), tracer)
        assert any("outside" in error for error in errors)

    def test_epoch_span_beyond_cycles_is_fine(self):
        """Background commit legitimately outlives ``cycles``."""
        tracer = SpanTracer()
        tracer.span("epoch", 5, 30, epoch_id=0, outcome="commit")
        assert attribution_errors(RunStats(cycles=20), tracer) == []


class TestConsistencyErrors:
    def _stats(self):
        return RunStats(
            cycles=100,
            sfence_stall_cycles=7,
            pcommits=2,
            epochs_created=1,
            sp_entries=1,
            rollbacks=0,
        )

    def _tracer(self):
        tracer = SpanTracer()
        tracer.span("sfence_drain", 0, 7)
        tracer.span("pcommit", 0, 3)
        tracer.span("pcommit", 3, 5)
        tracer.span("epoch", 0, 9, epoch_id=0, outcome="commit")
        tracer.instant("sp_enter", 0)
        return tracer

    def test_healthy_pair_has_no_errors(self):
        assert consistency_errors(self._stats(), self._tracer()) == []

    def test_missing_pcommit_span_flagged(self):
        tracer = self._tracer()
        stats = self._stats()
        stats.pcommits = 3
        errors = consistency_errors(stats, tracer)
        assert any("pcommit" in error for error in errors)

    def test_stall_duration_mismatch_flagged(self):
        stats = self._stats()
        stats.sfence_stall_cycles = 8
        errors = consistency_errors(stats, self._tracer())
        assert any("sfence_drain" in error for error in errors)

    def test_instant_count_mismatch_flagged(self):
        stats = self._stats()
        stats.rollbacks = 1
        errors = consistency_errors(stats, self._tracer())
        assert any("rollback" in error for error in errors)
