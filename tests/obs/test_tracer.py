"""SpanTracer / NullTracer primitives."""

import pytest

from repro.obs.tracer import COALESCED_SPANS, NullTracer, SpanTracer, TraceEvent


class TestSpanTracer:
    def test_span_records_interval(self):
        tracer = SpanTracer()
        tracer.span("sfence_drain", 10, 25, cat="stall")
        (event,) = tracer.spans("sfence_drain")
        assert (event.ts, event.end, event.dur) == (10, 25, 15)
        assert event.cat == "stall"

    def test_span_args_preserved(self):
        tracer = SpanTracer()
        tracer.span("epoch", 0, 5, cat="speculation", epoch_id=3, outcome="commit")
        (event,) = tracer.spans("epoch")
        assert event.args == {"epoch_id": 3, "outcome": "commit"}

    def test_negative_span_raises(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            tracer.span("sfence_drain", 10, 9)

    def test_zero_duration_span_allowed(self):
        tracer = SpanTracer()
        tracer.span("pcommit", 7, 7)
        assert tracer.span_count("pcommit") == 1
        assert tracer.span_cycles("pcommit") == 0

    def test_instant_and_counter(self):
        tracer = SpanTracer()
        tracer.instant("sp_enter", 4, cat="speculation")
        tracer.counter("wpq_occupancy", 5, 3)
        assert tracer.instants("sp_enter")[0].ts == 4
        assert tracer.counters("wpq_occupancy")[0].value == 3
        assert len(tracer) == 2

    def test_queries_filter_by_name(self):
        tracer = SpanTracer()
        tracer.span("a", 0, 1)
        tracer.span("b", 1, 2)
        assert tracer.span_count("a") == 1
        assert tracer.intervals("b") == [(1, 2)]
        assert len(tracer.spans()) == 2


class TestCoalescing:
    def test_adjacent_fetch_stalls_merge(self):
        tracer = SpanTracer()
        tracer.span("fetch_stall", 0, 5)
        tracer.span("fetch_stall", 5, 9)
        assert tracer.span_count("fetch_stall") == 1
        assert tracer.span_cycles("fetch_stall") == 9
        assert tracer.intervals("fetch_stall") == [(0, 9)]

    def test_gap_breaks_the_merge(self):
        tracer = SpanTracer()
        tracer.span("fetch_stall", 0, 5)
        tracer.span("fetch_stall", 6, 9)
        assert tracer.span_count("fetch_stall") == 2
        assert tracer.span_cycles("fetch_stall") == 8

    def test_only_listed_names_coalesce(self):
        tracer = SpanTracer()
        assert "sfence_drain" not in COALESCED_SPANS
        tracer.span("sfence_drain", 0, 5)
        tracer.span("sfence_drain", 5, 9)
        assert tracer.span_count("sfence_drain") == 2

    def test_args_disable_coalescing(self):
        tracer = SpanTracer()
        tracer.span("fetch_stall", 0, 5, reason="x")
        tracer.span("fetch_stall", 5, 9, reason="x")
        assert tracer.span_count("fetch_stall") == 2


class TestNullTracer:
    def test_swallows_everything(self):
        tracer = NullTracer()
        tracer.span("a", 0, 1)
        tracer.instant("b", 2)
        tracer.counter("c", 3, 4)
        # nothing stored, nothing raised


class TestTraceEvent:
    def test_slots(self):
        event = TraceEvent("span", "x", 0)
        with pytest.raises(AttributeError):
            event.other = 1
