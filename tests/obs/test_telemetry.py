"""The telemetry registry: no-op when disabled, exact when enabled,
published into by the kernel/classify/cache layers, folded into the
metrics snapshot."""

import pytest

from repro.obs import telemetry


@pytest.fixture(autouse=True)
def _clean_registry():
    telemetry.reset(enabled_after=False)
    yield
    telemetry.reset(enabled_after=False)


class TestRegistry:
    def test_disabled_by_default_and_drops_everything(self):
        assert not telemetry.enabled()
        telemetry.counter_inc("a")
        telemetry.gauge_set("b", 3)
        telemetry.observe("c", 1.5)
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_counters_accumulate_floats_allowed(self):
        telemetry.set_enabled(True)
        telemetry.counter_inc("runs")
        telemetry.counter_inc("runs")
        telemetry.counter_inc("seconds", 0.25)
        telemetry.counter_inc("seconds", 0.5)
        snap = telemetry.snapshot()
        assert snap["counters"]["runs"] == 2
        assert snap["counters"]["seconds"] == 0.75

    def test_gauges_last_write_wins(self):
        telemetry.set_enabled(True)
        telemetry.gauge_set("jobs", 4)
        telemetry.gauge_set("jobs", 7)
        assert telemetry.snapshot()["gauges"]["jobs"] == 7

    def test_histogram_summary(self):
        telemetry.set_enabled(True)
        for value in (10, 30, 20):
            telemetry.observe("cycles", value)
        summary = telemetry.snapshot()["histograms"]["cycles"]
        assert summary == {
            "count": 3, "sum": 60, "min": 10, "max": 30, "mean": 20,
        }

    def test_reset_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        telemetry.reset()
        assert telemetry.enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.reset()
        assert not telemetry.enabled()


class TestPublishers:
    def test_pipeline_and_kernel_publish_when_enabled(self):
        from repro.isa.instr import Instr
        from repro.isa.ops import Op
        from repro.isa.trace import Trace
        from repro.uarch.config import MachineConfig
        from repro.uarch.kernel import numpy_available
        from repro.uarch.pipeline import simulate

        telemetry.set_enabled(True)
        # a long load-bearing batch, so the numpy kernel (when active)
        # actually runs its classify/solve phases rather than the
        # compute-only closed form
        instrs = []
        for i in range(3000):
            instrs.append(Instr(Op.LOAD, 0x10000 + (i * 64) % 32768))
            instrs.append(Instr(Op.ALU))
        stats = simulate(Trace(instrs), MachineConfig())
        counters = telemetry.snapshot()["counters"]
        assert counters["pipeline.runs"] == 1
        assert counters["pipeline.instructions"] == stats.instructions
        if numpy_available():
            assert counters["kernel.batches"] >= 1
            assert counters["kernel.classify_seconds"] > 0
            assert counters["classify.routed_batch"] >= 1

    def test_simulation_results_identical_with_telemetry_on(self):
        from repro.isa.instr import Instr
        from repro.isa.ops import Op
        from repro.isa.trace import Trace
        from repro.uarch.config import MachineConfig
        from repro.uarch.pipeline import simulate

        instrs = [Instr(Op.ALU)] * 64 + [
            Instr(Op.STORE, 0x2000), Instr(Op.CLWB, 0x2000),
            Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE),
        ]
        off = simulate(Trace(instrs), MachineConfig())
        telemetry.set_enabled(True)
        on = simulate(Trace(instrs), MachineConfig())
        assert off.as_dict() == on.as_dict()

    def test_cache_traffic_published(self, tmp_path, monkeypatch):
        from repro.harness import cache as disk_cache
        from repro.harness.runner import TraceKey
        from repro.isa.instr import Instr
        from repro.isa.ops import Op
        from repro.isa.trace import Trace
        from repro.txn.modes import PersistMode

        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        telemetry.set_enabled(True)
        key = TraceKey("LL", PersistMode.BASE, 0)
        assert disk_cache.load_cached_trace(key) is None
        disk_cache.store_trace(key, Trace([Instr(Op.ALU)]))
        assert disk_cache.load_cached_trace(key) is not None
        counters = telemetry.snapshot()["counters"]
        assert counters["cache.trace_misses"] == 1
        assert counters["cache.trace_stores"] == 1
        assert counters["cache.trace_hits"] == 1

    def test_metrics_snapshot_carries_registry(self):
        from repro.obs import metrics

        telemetry.set_enabled(True)
        telemetry.counter_inc("custom.probe", 3)
        snap = metrics.metrics_snapshot()
        assert snap["schema"] == 5
        assert snap["telemetry"]["counters"]["custom.probe"] == 3
        assert "system" in snap
