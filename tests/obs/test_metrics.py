"""Harness self-observability: variant records and cache counters."""

import json

import pytest

from repro.harness import cache as disk_cache
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _clean_metrics():
    obs_metrics.reset_metrics()
    disk_cache.reset_cache_counters()
    yield
    obs_metrics.reset_metrics()
    disk_cache.reset_cache_counters()


class TestVariantRecords:
    def test_record_and_summarize(self):
        obs_metrics.record_variant("trace", "BT/base", "generated", 1.5)
        obs_metrics.record_variant("sim", "BT/base", "simulated", 0.5)
        obs_metrics.record_variant("sim", "BT/log", "disk", 0.01, worker="pid:42")
        summary = obs_metrics.summarize()
        assert summary["records"] == 3
        assert summary["by_source"] == {
            "sim:disk": 1,
            "sim:simulated": 1,
            "trace:generated": 1,
        }
        assert summary["sim_wall_s"] == 0.51
        assert summary["trace_wall_s"] == 1.5
        assert set(summary["wall_by_worker"]) == {"main", "pid:42"}

    def test_reset(self):
        obs_metrics.record_variant("sim", "BT/base", "simulated", 0.5)
        obs_metrics.reset_metrics()
        assert obs_metrics.summarize()["records"] == 0

    def test_render_line_empty_is_none(self):
        assert obs_metrics.render_metrics_line() is None

    def test_render_line_mentions_variants_and_cache(self):
        obs_metrics.record_variant("sim", "BT/base", "simulated", 0.5)
        line = obs_metrics.render_metrics_line()
        assert "1 simulated" in line
        assert "cache" in line


class TestCacheCounters:
    def test_counts_miss_then_hit(self, tmp_path, monkeypatch):
        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        from repro.harness.runner import TraceKey
        from repro.stats.run import RunStats
        from repro.txn.modes import PersistMode
        from repro.uarch.config import MachineConfig

        key = TraceKey("BT", PersistMode.BASE, 7)
        config = MachineConfig()
        assert disk_cache.load_cached_stats(key, config) is None
        disk_cache.store_stats(key, config, RunStats(cycles=9))
        assert disk_cache.load_cached_stats(key, config).cycles == 9
        counters = disk_cache.cache_counters()
        assert counters.stats_misses == 1
        assert counters.stats_hits == 1
        assert counters.stats_stores == 1
        assert counters.total() == 2

    def test_corrupt_entry_counted_and_dropped(self, tmp_path, monkeypatch):
        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        from repro.harness.runner import TraceKey
        from repro.txn.modes import PersistMode
        from repro.uarch.config import MachineConfig

        key = TraceKey("BT", PersistMode.BASE, 7)
        config = MachineConfig()
        path = disk_cache.stats_path(key, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json {")
        assert disk_cache.load_cached_stats(key, config) is None
        assert not path.exists()
        assert disk_cache.cache_counters().corrupt_dropped == 1

    def test_lifetime_counters_persist_and_survive_clear(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        from repro.harness.runner import TraceKey
        from repro.stats.run import RunStats
        from repro.txn.modes import PersistMode
        from repro.uarch.config import MachineConfig

        key = TraceKey("BT", PersistMode.BASE, 7)
        disk_cache.store_stats(key, MachineConfig(), RunStats(cycles=1))
        disk_cache.persist_cache_counters()
        lifetime = disk_cache.lifetime_cache_counters()
        assert lifetime["stats_stores"] == 1
        # persisting again without new traffic adds nothing
        disk_cache.persist_cache_counters()
        assert disk_cache.lifetime_cache_counters()["stats_stores"] == 1
        # clearing entries keeps the lifetime metrics file
        disk_cache.clear_cache()
        assert disk_cache.lifetime_cache_counters()["stats_stores"] == 1

    def test_metrics_snapshot_and_write(self, tmp_path, monkeypatch):
        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path / "cache"))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        obs_metrics.record_variant("sim", "BT/base", "simulated", 0.25)
        out = tmp_path / "metrics.json"
        obs_metrics.write_metrics(out)
        payload = json.loads(out.read_text())
        assert payload["schema"] == 5  # v5 added transport fleet health
        assert payload["kernel_backend"] in ("python", "numpy")
        assert payload["summary"]["records"] == 1
        assert payload["variants"][0]["label"] == "BT/base"
        assert "cache_session" in payload
        assert "supervisor" in payload


class TestCacheInfoBreakdown:
    def test_kind_breakdown(self, tmp_path, monkeypatch):
        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        from repro.harness.runner import TraceKey, generate_trace
        from repro.stats.run import RunStats
        from repro.txn.modes import PersistMode
        from repro.uarch.config import MachineConfig

        key = TraceKey("LL", PersistMode.BASE, 7, 40, 10)
        trace = generate_trace(key)
        disk_cache.store_trace(key, trace)
        disk_cache.store_stats(key, MachineConfig(), RunStats(cycles=1))
        info = disk_cache.cache_info()
        assert info["traces"] == 1 and info["stats"] == 1
        assert info["traces_rptr2"] == 1 and info["traces_rptr1"] == 0
        assert info["trace_bytes"] > 0 and info["stats_bytes"] > 0
        assert info["bytes"] == info["trace_bytes"] + info["stats_bytes"]
        assert info["counters_session"]["trace_stores"] == 1
