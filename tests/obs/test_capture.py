"""Workload/mode resolution, traced_run, and the ``trace`` CLI command."""

import json

import pytest

from repro.cli import main
from repro.obs.capture import (
    TRACE_MODES,
    resolve_mode,
    resolve_workload,
    traced_run,
)
from repro.obs.perfetto import validate_chrome_trace
from repro.txn.modes import PersistMode


class TestResolution:
    def test_abbrev_passthrough(self):
        assert resolve_workload("BT") == "BT"
        assert resolve_workload("bt") == "BT"

    def test_human_names(self):
        assert resolve_workload("btree") == "BT"
        assert resolve_workload("B-tree") == "BT"
        assert resolve_workload("hash map") == "HM"

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload("quicksort")

    def test_mode_separators(self):
        for spelling in ("log_p_sf", "log+p+sf", "LOG P SF", "log-p-sf"):
            token, mode, _config = resolve_mode(spelling)
            assert token == "log_p_sf"
            assert mode is PersistMode.LOG_P_SF

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            resolve_mode("sp9000")

    def test_sp_modes_enable_speculation(self):
        for label in ("sp32", "sp256", "sp1024", "sp_unlim"):
            _mode, config = TRACE_MODES[label]
            assert config.sp_enabled
        assert not TRACE_MODES["base"][1].sp_enabled


class TestTracedRun:
    def test_returns_consistent_triple(self):
        stats, tracer, info = traced_run(
            "LL", mode="sp256", init_ops=60, sim_ops=30
        )
        assert stats.cycles > 0
        assert len(tracer) > 0
        assert info["workload"] == "LL"
        assert info["mode"] == "sp256"
        assert info["sp_enabled"] is True
        assert info["trace_len"] > 0


class TestTraceCommand:
    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "linked-list", "--mode", "sp256",
                "--out", str(out), "--init-ops", "60", "--sim-ops", "30",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Linked-List" in printed
        assert "stall attribution" in printed
        assert validate_chrome_trace(out) > 0
        payload = json.loads(out.read_text())
        assert payload["otherData"]["mode"] == "sp256"
        assert payload["otherData"]["run_stats"]["cycles"] > 0

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        code = main(["trace", "nope", "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().out
