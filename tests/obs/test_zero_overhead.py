"""The zero-overhead-when-disabled seam, and traced-run consistency.

The contract: ``tracer=None`` keeps the segment-walker fast path
(bit-identical to the seed and to a traced run); any tracer object —
including :class:`NullTracer` — routes through the exact per-op loop.
"""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.obs.attribution import attribution_errors, consistency_errors
from repro.obs.tracer import NullTracer, SpanTracer
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel

BASE = MachineConfig()
SP = BASE.with_sp(256)


def barrier(addr):
    return [
        Instr(Op.STORE, addr),
        Instr(Op.CLWB, addr),
        Instr(Op.SFENCE),
        Instr(Op.PCOMMIT),
        Instr(Op.SFENCE),
    ]


def mixed_trace():
    instrs = []
    for i in range(6):
        instrs += barrier(0x10000 + i * 0x400)
        instrs += [Instr(Op.STORE, 0x20000 + i * 64)]
        instrs += [Instr(Op.LOAD, 0x30000 + j * 64) for j in range(4)]
        instrs += [Instr(Op.ALU)] * 10
    return Trace(instrs)


def _spy_paths(model):
    """Count fast-path vs exact-loop entries without deoptimising.

    ``_run_segments``/``_run_exact`` are not in the pipeline's inlined-
    method set, so instance-level wrappers don't flip ``_deoptimized``.
    """
    calls = {"segments": 0, "exact": 0}
    real_segments = model._run_segments
    real_exact = model._run_exact

    def spy_segments(columns, segments):
        calls["segments"] += 1
        return real_segments(columns, segments)

    def spy_exact(columns):
        calls["exact"] += 1
        return real_exact(columns)

    model._run_segments = spy_segments
    model._run_exact = spy_exact
    return calls


class TestRouting:
    def test_no_tracer_takes_segment_fast_path(self):
        model = PipelineModel(SP)
        calls = _spy_paths(model)
        model.run(mixed_trace())
        assert calls == {"segments": 1, "exact": 0}

    def test_span_tracer_takes_exact_loop(self):
        model = PipelineModel(SP, tracer=SpanTracer())
        calls = _spy_paths(model)
        model.run(mixed_trace())
        assert calls == {"segments": 0, "exact": 1}

    def test_null_tracer_also_takes_exact_loop(self):
        """The model only distinguishes None from not-None."""
        model = PipelineModel(SP, tracer=NullTracer())
        calls = _spy_paths(model)
        model.run(mixed_trace())
        assert calls == {"segments": 0, "exact": 1}


class TestTracedEqualsUntraced:
    def test_bit_identical_stats_sp(self):
        trace = mixed_trace()
        fast = PipelineModel(SP).run(trace)
        traced = PipelineModel(SP, tracer=SpanTracer()).run(trace)
        assert fast.as_dict() == traced.as_dict()

    def test_bit_identical_stats_base(self):
        trace = mixed_trace()
        fast = PipelineModel(BASE).run(trace)
        traced = PipelineModel(BASE, tracer=SpanTracer()).run(trace)
        assert fast.as_dict() == traced.as_dict()

    def test_null_tracer_changes_nothing(self):
        trace = mixed_trace()
        fast = PipelineModel(SP).run(trace)
        nulled = PipelineModel(SP, tracer=NullTracer()).run(trace)
        assert fast.as_dict() == nulled.as_dict()


class TestSpanCounterConsistency:
    def test_sp_run(self):
        tracer = SpanTracer()
        stats = PipelineModel(SP, tracer=tracer).run(mixed_trace())
        assert stats.sp_entries > 0  # the trace actually speculates
        assert consistency_errors(stats, tracer) == []
        assert attribution_errors(stats, tracer) == []
        assert tracer.span_count("pcommit") == stats.pcommits
        assert tracer.span_count("epoch") == stats.epochs_created
        assert tracer.span_cycles("sfence_drain") == stats.sfence_stall_cycles

    def test_eager_run(self):
        tracer = SpanTracer()
        stats = PipelineModel(BASE, tracer=tracer).run(mixed_trace())
        assert stats.sfence_stall_cycles > 0  # fences actually stall
        assert consistency_errors(stats, tracer) == []
        assert attribution_errors(stats, tracer) == []

    def test_rollback_run(self):
        tracer = SpanTracer()
        model = PipelineModel(SP, tracer=tracer)
        model.schedule_probe(8, 0x20000)
        instrs = barrier(0x10000) + [Instr(Op.STORE, 0x20000)]
        instrs += [Instr(Op.LOAD, 0x30000 + i * 64) for i in range(10)]
        instrs += [Instr(Op.ALU)] * 20
        stats = model.run(Trace(instrs))
        assert stats.rollbacks == 1
        assert len(tracer.instants("rollback")) == 1
        assert consistency_errors(stats, tracer) == []
        assert attribution_errors(stats, tracer) == []

    def test_wpq_counter_samples_do_not_perturb_stats(self):
        """The tracer samples WPQ occupancy read-only — max_wpq bookkeeping
        in the memory controller must not see the probes."""
        trace = mixed_trace()
        fast = PipelineModel(BASE).run(trace)
        tracer = SpanTracer()
        traced = PipelineModel(BASE, tracer=tracer).run(trace)
        assert traced.max_inflight_pcommits == fast.max_inflight_pcommits
        assert len(tracer.counters("wpq_occupancy")) > 0


class TestSystemZeroOverhead:
    """The zero-overhead contract extends to the multi-core driver:
    ``system_tracer=None`` leaves a contended co-simulation
    byte-identical to the pre-seam model, on both kernel backends.

    The digest below pins the per-core stats of one contended 2-core
    hash-map cell as produced before the tracing seam landed; both
    backends must keep reproducing it exactly.
    """

    #: sha256 over the sorted per-core ``as_dict`` JSON of the cell
    #: below, captured on the pre-seam model (both backends agree).
    PINNED_DIGEST = (
        "ea0a4c4defb8869d1afa49e0da8d1f7075259c9d2396a23167ba95b4c680f46b"
    )

    @staticmethod
    def _cell(backend):
        import hashlib
        import json

        from repro.txn.modes import PersistMode
        from repro.uarch.config import PipelineConfig
        from repro.uarch.system import SystemModel
        from repro.workloads.concurrent import generate_concurrent

        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=2, contention=0.8,
            seed=3, init_ops=60, sim_ops=40,
        )
        model = SystemModel(
            SP, n_cores=2, pipeline=PipelineConfig(kernel=backend),
        )
        result = model.run(run.traces)
        digest = hashlib.sha256(json.dumps(
            [stats.as_dict() for stats in result.per_core], sort_keys=True,
        ).encode()).hexdigest()
        return result, digest

    def test_python_backend_matches_pre_seam_digest(self):
        result, digest = self._cell("python")
        assert result.conflict_aborts > 0  # the cell actually conflicts
        assert digest == self.PINNED_DIGEST

    def test_numpy_backend_matches_pre_seam_digest(self):
        import pytest

        from repro.uarch.kernel import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        _, digest = self._cell("numpy")
        assert digest == self.PINNED_DIGEST

    def test_traced_system_run_matches_pinned_digest_too(self):
        """Tracing must observe, never perturb: the traced cell digests
        identically to the pinned untraced one."""
        import hashlib
        import json

        from repro.obs.tracer import SystemTracer
        from repro.txn.modes import PersistMode
        from repro.uarch.system import SystemModel
        from repro.workloads.concurrent import generate_concurrent

        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=2, contention=0.8,
            seed=3, init_ops=60, sim_ops=40,
        )
        model = SystemModel(SP, n_cores=2, system_tracer=SystemTracer(2))
        result = model.run(run.traces)
        digest = hashlib.sha256(json.dumps(
            [stats.as_dict() for stats in result.per_core], sort_keys=True,
        ).encode()).hexdigest()
        assert digest == self.PINNED_DIGEST
