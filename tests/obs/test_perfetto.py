"""Chrome trace-event export and the no-deps schema validator."""

import json

import pytest

from repro.obs.perfetto import (
    ChromeTraceError,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import SpanTracer
from repro.stats.run import RunStats


def _tracer():
    tracer = SpanTracer()
    tracer.span("sfence_drain", 10, 25, cat="stall")
    tracer.span("pcommit", 5, 20, cat="pmem")
    tracer.span("epoch", 0, 30, cat="speculation", epoch_id=0, outcome="commit")
    tracer.instant("sp_enter", 0, cat="speculation")
    tracer.counter("wpq_occupancy", 5, 2)
    return tracer


class TestExport:
    def test_events_have_known_phases(self):
        events = chrome_trace_events(_tracer())
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i", "C"}

    def test_span_maps_to_complete_event(self):
        events = chrome_trace_events(_tracer())
        (drain,) = [e for e in events if e.get("name") == "sfence_drain"]
        assert (drain["ph"], drain["ts"], drain["dur"]) == ("X", 10, 15)

    def test_categories_map_to_tracks(self):
        events = chrome_trace_events(_tracer())
        by_name = {e["name"]: e for e in events if e["ph"] in ("X", "i")}
        tids = {name: event["tid"] for name, event in by_name.items()}
        assert tids["sfence_drain"] != tids["pcommit"] != tids["epoch"]

    def test_args_carried_through(self):
        events = chrome_trace_events(_tracer())
        (epoch,) = [e for e in events if e.get("name") == "epoch"]
        assert epoch["args"]["outcome"] == "commit"

    def test_metadata_names_tracks(self):
        events = chrome_trace_events(_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert sum(e["name"] == "thread_name" for e in meta) >= 4


class TestWriteAndValidate:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        stats = RunStats(cycles=30, instructions=10)
        write_chrome_trace(path, _tracer(), stats=stats, meta={"mode": "sp256"})
        count = validate_chrome_trace(path)
        assert count > 5
        payload = json.loads(path.read_text())
        assert payload["otherData"]["mode"] == "sp256"
        assert payload["otherData"]["run_stats"]["cycles"] == 30

    def test_validate_accepts_parsed_dict(self):
        payload = {
            "traceEvents": chrome_trace_events(_tracer()),
            "displayTimeUnit": "ms",
        }
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])


class TestValidatorRejects:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace(tmp_path / "nope.json")

    def test_top_level_list(self):
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace({"traceEvents": "not-a-list"})

    def test_empty_events(self):
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace({"traceEvents": []})

    def test_unknown_phase(self):
        with pytest.raises(ChromeTraceError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x", "ts": 0}]}
            )

    def test_negative_timestamp(self):
        with pytest.raises(ChromeTraceError, match="ts"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "name": "x", "ts": -1}]}
            )

    def test_boolean_duration(self):
        with pytest.raises(ChromeTraceError, match="dur"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "dur": True}]}
            )

    def test_counter_without_args(self):
        with pytest.raises(ChromeTraceError, match="args"):
            validate_chrome_trace({"traceEvents": [{"ph": "C", "name": "x", "ts": 0}]})

    def test_nameless_event(self):
        with pytest.raises(ChromeTraceError, match="name"):
            validate_chrome_trace({"traceEvents": [{"ph": "i", "ts": 0}]})
