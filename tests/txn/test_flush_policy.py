"""Flush-instruction policy in PersistOps (repro.txn.persist_ops)."""

import pytest

from repro.isa.ops import Op
from repro.isa.recorder import TraceRecorder
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import FLUSH_POLICIES, PersistOps


def make(policy):
    recorder = TraceRecorder()
    return PersistOps(PersistMode.LOG_P_SF, recorder, flush_with=policy), recorder


class TestPolicySelection:
    def test_default_is_clwb(self):
        ops, recorder = make("clwb")
        ops.clwb(0x100)
        assert [i.op for i in recorder.trace] == [Op.CLWB]

    def test_clflushopt_policy(self):
        ops, recorder = make("clflushopt")
        ops.clwb(0x100)
        assert [i.op for i in recorder.trace] == [Op.CLFLUSHOPT]

    def test_clflush_policy(self):
        ops, recorder = make("clflush")
        ops.clwb(0x100)
        assert [i.op for i in recorder.trace] == [Op.CLFLUSH]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            PersistOps(PersistMode.LOG_P_SF, flush_with="flushall")

    def test_policy_table(self):
        assert FLUSH_POLICIES == ("clwb", "clflushopt", "clflush")


class TestPolicyCounting:
    def test_clwb_counted_as_clwb(self):
        ops, _ = make("clwb")
        ops.clwb(0x100)
        assert (ops.n_clwb, ops.n_clflushopt) == (1, 0)

    def test_alternative_policies_counted_as_flushopt(self):
        for policy in ("clflushopt", "clflush"):
            ops, _ = make(policy)
            ops.clwb(0x100)
            assert (ops.n_clwb, ops.n_clflushopt) == (0, 1)


class TestPolicyWithDomain:
    @pytest.mark.parametrize("policy", FLUSH_POLICIES)
    def test_all_policies_reach_durability(self, policy):
        from repro.mem.heap import NVMHeap
        from repro.pmem.domain import PersistenceDomain

        heap = NVMHeap(1 << 14)
        domain = PersistenceDomain(heap)
        heap.attach(domain)
        ops = PersistOps(PersistMode.LOG_P_SF, domain=domain, flush_with=policy)
        heap.store_u64(0x100, 9)
        ops.clwb(0x100)
        ops.persist_barrier()
        assert domain.is_durable(0x100)

    @pytest.mark.parametrize("policy", FLUSH_POLICIES)
    def test_workloads_stay_crash_safe_under_any_policy(self, policy):
        """The flush choice is a performance decision, not a correctness
        one: the linked list survives crash sweeps under every policy."""
        from repro.pmem.crash import CrashTester
        from repro.workloads.base import Workbench
        from repro.workloads.linkedlist import LinkedListWorkload

        bench = Workbench(
            mode=PersistMode.LOG_P_SF,
            heap_size=1 << 22,
            track_persistence=True,
            seed=2,
            flush_with=policy,
        )
        workload = LinkedListWorkload(bench, max_nodes=64)
        workload.populate(30)
        keys = iter(range(10000))
        tester = CrashTester(
            bench.domain,
            lambda: workload.operation(next(keys) % workload._key_space),
            workload.recover,
            workload.check_invariants,
            seed=4,
        )
        tester.sweep(max_points=10)
        assert tester.all_consistent
