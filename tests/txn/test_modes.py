"""PersistMode gating flags (repro.txn.modes)."""

from repro.txn.modes import PersistMode


class TestFlags:
    def test_base_has_nothing(self):
        assert not PersistMode.BASE.logging
        assert not PersistMode.BASE.pmem
        assert not PersistMode.BASE.fences

    def test_log_only_logs(self):
        assert PersistMode.LOG.logging
        assert not PersistMode.LOG.pmem
        assert not PersistMode.LOG.fences

    def test_log_p_adds_pmem(self):
        assert PersistMode.LOG_P.logging
        assert PersistMode.LOG_P.pmem
        assert not PersistMode.LOG_P.fences

    def test_log_p_sf_is_complete(self):
        assert PersistMode.LOG_P_SF.logging
        assert PersistMode.LOG_P_SF.pmem
        assert PersistMode.LOG_P_SF.fences

    def test_only_full_protocol_is_failure_safe(self):
        safe = [m for m in PersistMode if m.failure_safe]
        assert safe == [PersistMode.LOG_P_SF]

    def test_labels_match_figure8(self):
        assert [m.label for m in PersistMode] == ["Base", "Log", "Log+P", "Log+P+Sf"]
