"""TxManager four-step protocol (repro.txn.manager)."""

import pytest

from repro.isa.ops import Op
from repro.isa.recorder import TraceRecorder
from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap
from repro.pmem.domain import PersistenceDomain
from repro.txn.manager import TxError, TxManager
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps


def make_manager(mode=PersistMode.LOG_P_SF):
    heap = NVMHeap(1 << 18)
    allocator = Allocator(heap)
    recorder = TraceRecorder()
    heap.attach(recorder)
    domain = PersistenceDomain(heap)
    heap.attach(domain)
    persist = PersistOps(mode, recorder, domain)
    tx = TxManager(heap, allocator, persist)
    return heap, allocator, recorder, domain, tx


def run_simple_tx(heap, allocator, tx, value=0xCAFE):
    target = allocator.alloc(64)
    heap.store_u64(target, 0x1111)
    tx.begin()
    tx.log_block(target)
    tx.seal()
    heap.store_u64(target, value)
    tx.flush(target)
    tx.commit()
    return target


class TestProtocolCounts:
    def test_four_pcommits_eight_sfences_per_tx(self):
        """Paper §3.1: 'at least 4 pcommits and 8 sfence operations are
        needed per transactional update'."""
        heap, allocator, _, _, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        assert tx.persist.n_pcommit == 4
        assert tx.persist.n_sfence == 8

    def test_barrier_sequence_shape(self):
        heap, allocator, recorder, _, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        ops = [i.op for i in recorder.trace]
        # every pcommit is bracketed by sfences
        for i, op in enumerate(ops):
            if op is Op.PCOMMIT:
                assert ops[i - 1] is Op.SFENCE
                assert ops[i + 1] is Op.SFENCE

    def test_log_mode_has_no_pmem(self):
        heap, allocator, recorder, _, tx = make_manager(PersistMode.LOG)
        run_simple_tx(heap, allocator, tx)
        stats = recorder.trace.stats()
        assert stats.pmem_count == 0
        assert stats.fence_count == 0

    def test_base_mode_does_not_log(self):
        heap, allocator, _, _, tx = make_manager(PersistMode.BASE)
        run_simple_tx(heap, allocator, tx)
        assert tx.stats.entries_logged == 0


class TestProtocolErrors:
    def test_nested_begin_rejected(self):
        _, _, _, _, tx = make_manager()
        tx.begin()
        with pytest.raises(TxError):
            tx.begin()

    def test_log_outside_tx_rejected(self):
        _, _, _, _, tx = make_manager()
        with pytest.raises(TxError):
            tx.log_range(0x2000, 8)

    def test_log_after_seal_rejected(self):
        """Full logging (paper §3.2) requires all logging before seal."""
        _, _, _, _, tx = make_manager()
        tx.begin()
        tx.seal()
        with pytest.raises(TxError):
            tx.log_range(0x2000, 8)

    def test_commit_before_seal_rejected(self):
        _, _, _, _, tx = make_manager()
        tx.begin()
        with pytest.raises(TxError):
            tx.commit()

    def test_double_seal_rejected(self):
        _, _, _, _, tx = make_manager()
        tx.begin()
        tx.seal()
        with pytest.raises(TxError):
            tx.seal()

    def test_flush_outside_tx_rejected(self):
        _, _, _, _, tx = make_manager()
        with pytest.raises(TxError):
            tx.flush(0x2000)


class TestDurability:
    def test_committed_update_is_durable(self):
        heap, allocator, _, domain, tx = make_manager()
        target = run_simple_tx(heap, allocator, tx, value=0xBEEF)
        domain.crash()
        assert heap.load_u64(target) == 0xBEEF

    def test_logged_bit_clear_after_commit(self):
        heap, allocator, _, _, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        assert tx.log.read_logged_bit() == 0

    def test_logged_bit_set_between_seal_and_commit(self):
        heap, allocator, _, _, tx = make_manager()
        target = allocator.alloc(64)
        tx.begin()
        tx.log_block(target)
        tx.seal()
        assert tx.log.read_logged_bit() == 1
        tx.flush(target)
        tx.commit()


class TestRecovery:
    def test_recovery_undoes_open_transaction(self):
        heap, allocator, _, domain, tx = make_manager()
        target = allocator.alloc(64)
        heap.store_u64(target, 0x1111)
        domain.sync_base()
        tx.begin()
        tx.log_block(target)
        tx.seal()
        heap.store_u64(target, 0x2222)
        tx.flush(target)
        # crash between step 3 and step 4: data durable, bit still set
        domain.sfence()
        domain.pcommit()
        domain.crash()
        undone = tx.recover()
        assert undone == 1
        assert heap.load_u64(target) == 0x1111

    def test_recovery_noop_when_bit_clear(self):
        heap, allocator, _, domain, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        domain.crash()
        assert tx.recover() == 0

    def test_recovery_is_failure_safe_itself(self):
        """Recovery flushes what it restores, so a crash right after
        recovery preserves the restored state."""
        heap, allocator, _, domain, tx = make_manager()
        target = allocator.alloc(64)
        heap.store_u64(target, 0xAAAA)
        domain.sync_base()
        tx.begin()
        tx.log_block(target)
        tx.seal()
        heap.store_u64(target, 0xBBBB)
        tx.flush(target)
        domain.persist_barrier()
        domain.crash()
        tx.recover()
        domain.crash()  # second failure immediately after recovery
        assert heap.load_u64(target) == 0xAAAA

    def test_recovery_resets_tx_state(self):
        heap, allocator, _, _, tx = make_manager()
        tx.begin()
        tx.recover()
        tx.begin()  # must not raise "nested transaction"
        tx.seal()
        tx.commit()


class TestStats:
    def test_transaction_counter(self):
        heap, allocator, _, _, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        run_simple_tx(heap, allocator, tx)
        assert tx.stats.transactions == 2

    def test_bytes_logged(self):
        heap, allocator, _, _, tx = make_manager()
        run_simple_tx(heap, allocator, tx)
        assert tx.stats.bytes_logged == 64
