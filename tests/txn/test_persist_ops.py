"""Mode gating in the PersistOps facade (repro.txn.persist_ops)."""

from repro.isa.ops import Op
from repro.isa.recorder import TraceRecorder
from repro.mem.heap import NVMHeap
from repro.pmem.domain import PersistenceDomain
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps


def make(mode):
    heap = NVMHeap(1 << 14)
    recorder = TraceRecorder()
    domain = PersistenceDomain(heap)
    heap.attach(domain)
    return PersistOps(mode, recorder, domain), recorder, heap, domain


class TestBaseMode:
    def test_everything_swallowed(self):
        ops, recorder, _, _ = make(PersistMode.BASE)
        ops.clwb(0x100)
        ops.pcommit()
        ops.sfence()
        ops.persist_barrier()
        assert len(recorder.trace) == 0
        assert ops.n_clwb == ops.n_pcommit == ops.n_sfence == 0


class TestLogMode:
    def test_pmem_swallowed(self):
        ops, recorder, _, _ = make(PersistMode.LOG)
        ops.clwb(0x100)
        ops.clflushopt(0x100)
        ops.pcommit()
        ops.sfence()
        assert len(recorder.trace) == 0


class TestLogPMode:
    def test_pmem_passes_fences_swallowed(self):
        ops, recorder, _, _ = make(PersistMode.LOG_P)
        ops.clwb(0x100)
        ops.pcommit()
        ops.sfence()
        recorded = [i.op for i in recorder.trace]
        assert recorded == [Op.CLWB, Op.PCOMMIT]
        assert ops.n_sfence == 0

    def test_barrier_emits_pcommit_only(self):
        ops, recorder, _, _ = make(PersistMode.LOG_P)
        ops.persist_barrier()
        assert [i.op for i in recorder.trace] == [Op.PCOMMIT]


class TestLogPSfMode:
    def test_full_barrier_sequence(self):
        ops, recorder, _, _ = make(PersistMode.LOG_P_SF)
        ops.persist_barrier()
        assert [i.op for i in recorder.trace] == [Op.SFENCE, Op.PCOMMIT, Op.SFENCE]

    def test_counts(self):
        ops, _, _, _ = make(PersistMode.LOG_P_SF)
        ops.clwb(0x100)
        ops.clflushopt(0x140)
        ops.persist_barrier()
        assert ops.n_clwb == 1
        assert ops.n_clflushopt == 1
        assert ops.n_pcommit == 1
        assert ops.n_sfence == 2

    def test_domain_receives_instructions(self):
        ops, _, heap, domain = make(PersistMode.LOG_P_SF)
        heap.store_u64(0x100, 1)
        ops.clwb(0x100)
        ops.persist_barrier()
        assert domain.is_durable(0x100)


class TestOptionalBackends:
    def test_recorder_only(self):
        recorder = TraceRecorder()
        ops = PersistOps(PersistMode.LOG_P_SF, recorder=recorder)
        ops.persist_barrier()
        assert len(recorder.trace) == 3

    def test_domain_only(self):
        heap = NVMHeap(1 << 14)
        domain = PersistenceDomain(heap)
        heap.attach(domain)
        ops = PersistOps(PersistMode.LOG_P_SF, domain=domain)
        heap.store_u64(0x100, 1)
        ops.clwb(0x100)
        ops.persist_barrier()
        assert domain.is_durable(0x100)
