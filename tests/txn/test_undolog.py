"""Undo log layout and recovery (repro.txn.undolog)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.txn.undolog import LogOverflowError, UndoLog


def make_log(capacity=1 << 12):
    heap = NVMHeap(1 << 18)
    allocator = Allocator(heap)
    log = UndoLog(heap, allocator, capacity)
    return heap, allocator, log


class TestHeader:
    def test_initial_state(self):
        _, _, log = make_log()
        assert log.read_logged_bit() == 0
        assert log.read_n_entries() == 0

    def test_logged_bit_round_trip(self):
        _, _, log = make_log()
        log.write_logged_bit(1)
        assert log.read_logged_bit() == 1

    def test_capacity_validation(self):
        heap = NVMHeap(1 << 18)
        with pytest.raises(ValueError):
            UndoLog(heap, Allocator(heap), capacity=32)


class TestAppend:
    def test_append_records_pre_image(self):
        heap, _, log = make_log()
        target = 0x2000
        heap.store_u64(target, 0x1111)
        log.append(target, 8)
        entries = log.entries()
        assert len(entries) == 1
        _, addr, size = entries[0]
        assert (addr, size) == (target, 8)

    def test_append_returns_touched_blocks(self):
        heap, _, log = make_log()
        blocks = log.append(0x2000, CACHE_BLOCK)
        assert all(b % CACHE_BLOCK == 0 for b in blocks)
        assert len(blocks) >= 2  # 16B header + 64B payload spans 2+ blocks

    def test_entry_count_increments(self):
        heap, _, log = make_log()
        log.append(0x2000, 8)
        log.append(0x2100, 8)
        assert log.read_n_entries() == 2

    def test_reset_clears_entries(self):
        heap, _, log = make_log()
        log.append(0x2000, 8)
        log.reset()
        assert log.read_n_entries() == 0
        assert log.entries() == []

    def test_zero_size_rejected(self):
        _, _, log = make_log()
        with pytest.raises(ValueError):
            log.append(0x2000, 0)

    def test_overflow_raises(self):
        _, _, log = make_log(capacity=128)
        log.append(0x2000, 8)  # 24 bytes
        log.append(0x2100, 8)
        with pytest.raises(LogOverflowError):
            log.append(0x2200, 64)


class TestUndo:
    def test_undo_restores_pre_image(self):
        heap, _, log = make_log()
        heap.store_u64(0x2000, 0xAAAA)
        log.append(0x2000, 8)
        heap.store_u64(0x2000, 0xBBBB)
        assert log.apply_undo() == 1
        assert heap.load_u64(0x2000) == 0xAAAA

    def test_undo_applies_in_reverse_order(self):
        heap, _, log = make_log()
        heap.store_u64(0x2000, 1)
        log.append(0x2000, 8)  # pre-image 1 (older entry must win)
        heap.store_u64(0x2000, 2)
        log.append(0x2000, 8)  # pre-image 2
        heap.store_u64(0x2000, 3)
        log.apply_undo()
        assert heap.load_u64(0x2000) == 1

    def test_undo_is_idempotent(self):
        heap, _, log = make_log()
        heap.store_u64(0x2000, 7)
        log.append(0x2000, 8)
        heap.store_u64(0x2000, 8)
        log.apply_undo()
        log.apply_undo()
        assert heap.load_u64(0x2000) == 7

    def test_undo_multiple_targets(self):
        heap, _, log = make_log()
        targets = [0x2000, 0x2100, 0x2200]
        for i, target in enumerate(targets):
            heap.store_u64(target, i)
            log.append(target, 8)
            heap.store_u64(target, 0xFF)
        log.apply_undo()
        for i, target in enumerate(targets):
            assert heap.load_u64(target) == i

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=10
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_undo_restores_arbitrary_values(self, values):
        heap, _, log = make_log()
        base = 0x4000
        for i, value in enumerate(values):
            heap.store_u64(base + i * CACHE_BLOCK, value)
            log.append(base + i * CACHE_BLOCK, 8)
            heap.store_u64(base + i * CACHE_BLOCK, ~value & 0xFFFFFFFFFFFFFFFF)
        log.apply_undo()
        for i, value in enumerate(values):
            assert heap.load_u64(base + i * CACHE_BLOCK) == value
