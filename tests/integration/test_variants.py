"""Cross-module integration: the paper's core performance ordering.

These tests run small but complete experiments (workload -> trace ->
pipeline) and assert the *qualitative* results the paper reports.  They are
the repository's ground truth that the reproduction reproduces.
"""

import sys

import pytest

from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.workloads.registry import WORKLOADS

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402

BASE_CFG = MachineConfig()
SP_CFG = BASE_CFG.with_sp(256)


def traces_for(ab, n_init=80, n_ops=12, seed=17):
    traces = {}
    for mode in PersistMode:
        workload = make_workload(ab, mode=mode, seed=seed)
        workload.populate(n_init)
        workload.run(n_ops)
        traces[mode] = workload.bench.trace
    return traces


@pytest.fixture(scope="module")
def all_traces():
    return {ab: traces_for(ab) for ab in WORKLOADS}


@pytest.mark.parametrize("ab", WORKLOADS)
class TestVariantOrdering:
    def test_logging_adds_cycles(self, ab, all_traces):
        traces = all_traces[ab]
        base = simulate(traces[PersistMode.BASE], BASE_CFG)
        log = simulate(traces[PersistMode.LOG], BASE_CFG)
        # 2% tolerance: on tiny test instances the undo-log's streaming
        # reads can act as a prefetch for the mutation, slightly beating
        # the un-logged run.
        assert log.cycles >= base.cycles * 0.98

    def test_fences_are_the_bottleneck(self, ab, all_traces):
        """Log+P+Sf must be clearly slower than Log+P (paper §6.1)."""
        traces = all_traces[ab]
        logp = simulate(traces[PersistMode.LOG_P], BASE_CFG)
        logpsf = simulate(traces[PersistMode.LOG_P_SF], BASE_CFG)
        assert logpsf.cycles > logp.cycles

    def test_sp_recovers_fence_overhead(self, ab, all_traces):
        """SP on the fenced trace beats stalling on the fenced trace."""
        traces = all_traces[ab]
        stall = simulate(traces[PersistMode.LOG_P_SF], BASE_CFG)
        sp = simulate(traces[PersistMode.LOG_P_SF], SP_CFG)
        assert sp.cycles < stall.cycles

    def test_sp_close_to_logp(self, ab, all_traces):
        """SP's whole point: the fenced, failure-safe code runs within a
        modest factor of the unordered Log+P upper bound."""
        traces = all_traces[ab]
        logp = simulate(traces[PersistMode.LOG_P], BASE_CFG)
        sp = simulate(traces[PersistMode.LOG_P_SF], SP_CFG)
        stall = simulate(traces[PersistMode.LOG_P_SF], BASE_CFG)
        # SP recovers at least a third of the fence-stall penalty
        assert stall.cycles - sp.cycles > (stall.cycles - logp.cycles) / 3


@pytest.mark.parametrize("ab", WORKLOADS)
class TestInstructionCounts:
    def test_logging_dominates_instruction_growth(self, ab, all_traces):
        """Figure 9: the logging code is the primary contributor to the
        instruction-count increase; PMEM instructions add little and
        sfences are negligible."""
        traces = all_traces[ab]
        base = len(traces[PersistMode.BASE])
        log = len(traces[PersistMode.LOG])
        logp = len(traces[PersistMode.LOG_P])
        logpsf = len(traces[PersistMode.LOG_P_SF])
        log_delta = log - base
        pmem_delta = logp - log
        fence_delta = logpsf - logp
        assert log_delta >= pmem_delta >= fence_delta


class TestFetchStalls:
    def test_fences_inflate_fetch_stalls(self, all_traces):
        """Figure 10's mechanism on at least one barrier-bound workload."""
        inflated = 0
        for ab in WORKLOADS:
            traces = all_traces[ab]
            logp = simulate(traces[PersistMode.LOG_P], BASE_CFG)
            logpsf = simulate(traces[PersistMode.LOG_P_SF], BASE_CFG)
            if logpsf.fetch_stall_cycles > logp.fetch_stall_cycles:
                inflated += 1
        assert inflated >= 4  # most benchmarks show the effect

    def test_sp_removes_fetch_stalls(self, all_traces):
        removed = 0
        for ab in WORKLOADS:
            traces = all_traces[ab]
            stall = simulate(traces[PersistMode.LOG_P_SF], BASE_CFG)
            sp = simulate(traces[PersistMode.LOG_P_SF], SP_CFG)
            if sp.fetch_stall_cycles < stall.fetch_stall_cycles:
                removed += 1
        assert removed >= 4
