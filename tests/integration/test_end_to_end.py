"""Whole-stack smoke paths: workload -> domain -> trace -> pipeline -> stats.

These tests exercise the flows a downstream user of the library actually
runs: build a structure, verify it survives crashes, time it on both
machines, and export the results.
"""

import sys

import pytest

from repro.isa.serialize import dump_trace, load_trace
from repro.pmem.crash import CrashTester
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestUserJourney:
    """The README quickstart, as a test."""

    def test_full_flow(self, tmp_path):
        # 1. build and exercise a failure-safe structure
        workload = make_workload("BT", seed=100)
        workload.populate(60)
        workload.run(10)
        assert workload.check_invariants() is None

        # 2. prove it survives crashes
        keys = iter(range(10000))
        tester = CrashTester(
            workload.bench.domain,
            lambda: workload.operation(next(keys) % workload._key_space),
            workload.recover,
            workload.check_invariants,
            seed=1,
        )
        tester.sweep(max_points=8)
        assert tester.all_consistent

    def test_time_and_export(self, tmp_path):
        workload = make_workload("BT", seed=100)
        workload.populate(60)
        workload.run(10)
        trace = workload.bench.trace

        # 3. time it with and without SP, persisting the trace on the way
        path = tmp_path / "bt.trace"
        dump_trace(trace, path)
        reloaded = load_trace(path)
        machine = MachineConfig()
        stall = simulate(reloaded, machine)
        sp = simulate(reloaded, machine.with_sp(256))
        assert sp.cycles <= stall.cycles

        # 4. export the stats
        exported = sp.as_dict()
        assert exported["cycles"] == sp.cycles
        assert exported["ipc"] > 0


class TestVariantsShareFunctionalBehaviour:
    """One seed, four persistence variants, one final structure."""

    @pytest.mark.parametrize("ab", ["LL", "HM", "AT"])
    def test_contents_identical_across_variants(self, ab):
        snapshots = []
        for mode in PersistMode:
            workload = make_workload(ab, mode=mode, seed=321)
            workload.populate(50)
            workload.run(20)
            snapshots.append(sorted(workload.items()))
        assert all(s == snapshots[0] for s in snapshots)


class TestCrashDuringTimedRun:
    """Interleaving timing-trace capture with crash recovery must not
    corrupt either view."""

    def test_trace_capture_then_crash_then_more_ops(self):
        workload = make_workload("LL", seed=55)
        workload.populate(40)
        workload.run(5)
        pre_crash_trace_len = len(workload.bench.trace)
        workload.bench.domain.crash()
        workload.recover()
        assert workload.check_invariants() is None
        workload.run(5)
        assert len(workload.bench.trace) > pre_crash_trace_len
        stats = simulate(workload.bench.trace, MachineConfig())
        assert stats.cycles > 0
