"""Calibration regression: the registry-scale headline shape.

The benches under benchmarks/ regenerate the figures; this test pins the
*qualitative* headline at the default scales so an innocent-looking
refactor of the timing model cannot silently drift the reproduction.
Bounds are deliberately loose — they encode the paper's findings, not the
current decimal values.
"""

import pytest

from repro.harness.figures import GEOMEAN, fig8_overheads, headline_claim
from repro.harness.runner import run_variant
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.workloads.registry import WORKLOADS


@pytest.fixture(scope="module")
def fig8():
    return fig8_overheads()


@pytest.fixture(scope="module")
def headline():
    return headline_claim()


class TestHeadlineShape:
    def test_fence_overhead_in_band(self, headline):
        # paper: +20.3%; our scaled substrate sits between 20% and 80%
        assert 0.20 < headline["fence_overhead_vs_logp"] < 0.80

    def test_sp_overhead_in_band(self, headline):
        # paper: +3.6%; ours must stay within a small multiple
        assert headline["sp_overhead_vs_logp"] < 0.20

    def test_sp_removes_most_of_the_penalty(self, headline):
        recovered = 1 - headline["sp_overhead_vs_logp"] / headline[
            "fence_overhead_vs_logp"
        ]
        assert recovered > 0.6


class TestFig8Shape:
    def test_variant_ordering_everywhere(self, fig8):
        for ab in WORKLOADS:
            assert fig8["Log"][ab] <= fig8["Log+P"][ab] + 0.02, ab
            assert fig8["Log+P"][ab] < fig8["Log+P+Sf"][ab], ab
            assert fig8["SP256"][ab] < fig8["Log+P+Sf"][ab], ab

    def test_pmem_instructions_nearly_free(self, fig8):
        assert fig8["Log+P"][GEOMEAN] - fig8["Log"][GEOMEAN] < 0.05

    def test_trees_carry_the_logging_cost(self, fig8):
        trees = max(fig8["Log"][ab] for ab in ("AT", "BT", "RT"))
        lists = max(fig8["Log"][ab] for ab in ("GH", "HM", "LL"))
        assert trees > lists


class TestUnsaturatedWPQ:
    """Figure 11's premise: the WPQ keeps up between barriers, so only a
    handful of pcommits are ever outstanding."""

    @pytest.mark.parametrize("ab", WORKLOADS)
    def test_inflight_pcommits_bounded(self, ab):
        stats = run_variant(ab, PersistMode.LOG_P, MachineConfig())
        assert stats.max_inflight_pcommits <= 16, (
            f"{ab}: {stats.max_inflight_pcommits} concurrent pcommits — "
            "the WPQ is saturating, unlike the paper's Figure 11"
        )
