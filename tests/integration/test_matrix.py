"""Benchmark x persistency-mode smoke matrix and pinned end-state digests.

Every registered workload runs under every persistency mode at small
sizes, routed through the persistent trace/result cache exactly the way
figure generation does.  The second half pins the cross-mode end-state
digests for all seven benchmarks at a fixed seed: persistency machinery
may only change *when* data is durable, never the bytes a run produces,
so these digests are identical for all modes — and stable across
refactors unless trace/workload semantics deliberately change (in which
case update the table alongside the CACHE_SCHEMA_VERSION bump).
"""

import pytest

from repro.harness.runner import TraceKey, build_trace, run_variant
from repro.harness import cache as harness_cache
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.validate.conformance import end_state_digests
from repro.workloads.registry import WORKLOADS

SMALL = dict(init_ops=60, sim_ops=4)
SEED = 0


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("matrix-cache"))


@pytest.fixture(autouse=True)
def persistent_cache(cache_dir, monkeypatch):
    """Route the whole matrix through one shared persistent cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


class TestSmokeMatrix:
    @pytest.mark.parametrize("abbrev", WORKLOADS)
    @pytest.mark.parametrize("mode", list(PersistMode))
    def test_variant_runs_clean(self, abbrev, mode):
        stats = run_variant(abbrev, mode, MachineConfig(), SEED, **SMALL)
        assert stats.instructions > 0
        assert stats.cycles >= stats.instructions // 4  # 4-wide front end

    @pytest.mark.parametrize("abbrev", WORKLOADS)
    def test_trace_cached_and_replayable(self, abbrev):
        key = TraceKey(abbrev, PersistMode.LOG_P_SF, SEED, **SMALL)
        first = build_trace(abbrev, PersistMode.LOG_P_SF, SEED, **SMALL)
        assert harness_cache.trace_path(key).exists()
        second = build_trace(abbrev, PersistMode.LOG_P_SF, SEED, **SMALL)
        assert [(i.op, i.addr) for i in first] == [
            (i.op, i.addr) for i in second
        ]

    def test_mode_ordering_holds_across_matrix(self):
        # more fencing can never make a benchmark faster
        for abbrev in WORKLOADS:
            cycles = {
                mode: run_variant(abbrev, mode, MachineConfig(), SEED, **SMALL).cycles
                for mode in PersistMode
            }
            assert cycles[PersistMode.BASE] <= cycles[PersistMode.LOG_P_SF], abbrev
            assert cycles[PersistMode.LOG_P] <= cycles[PersistMode.LOG_P_SF], abbrev


#: (masked heap digest, model digest) per benchmark: LOG_P_SF, seed 0,
#: init_ops=40, sim_ops=8 — matches the conformance oracle's quick sizes.
PINNED_DIGESTS = {
    "GH": ("4b4f8e08ef4b753a38643a4212569c3555de0a1c5bfcaa5dae09327d147496be",
           "0c9bb9ab63766fedc88728cd6284647baa1b7902da1c9de4b7a465b2106a7128"),
    "HM": ("6cf572c1332a07270539eec22e2a749a71160a231588a193bcd53ca7d3aedea7",
           "470dd15849739a1477dabab0a4156ec5bf73c569bc2c12d1e73caabdb1580c53"),
    "LL": ("bfef1e6220b19153ab68c6ad3b699c02c0172bba1703fbf8f6b7ddd23156bc6b",
           "d2513bb7bc416a8281a528c7a592846dda14082a881f8ceaea67bf049949eba1"),
    "SS": ("13d565fb39974e56c9b3c5a905465d8a304cb93dfaef04f3d0f9e62e542583d6",
           "d74d3a167763520760c5f1bb7fd71a693acc256174df4042db154c989c8dbc5f"),
    "AT": ("4d12852eee3d8601a5f0a41301e5814894bffd73a33e34f06e2434135a835a0c",
           "8901cebaba7b50df4691b10ca4721d230d8a28f910b786d342651f5ae8dac6d7"),
    "BT": ("545beea5107f105d126984cf264998b7149dadb9ba3308b06f3f938336bf8c3e",
           "dc69033d15e2275458e8b7faeb8497a00d0ab3a3fbfa1458793a36093e2837c9"),
    "RT": ("ff804264c70c6953f6d43942c302aabc80a4e900e8e6149a5623ff5d2cb9c0f8",
           "9090dbede33837fe1d74605e022d646df197a890ae7cc19665e343c0cf6461cc"),
}


class TestPinnedEndStateDigests:
    def test_table_covers_all_benchmarks(self):
        assert set(PINNED_DIGESTS) == set(WORKLOADS)

    @pytest.mark.parametrize("abbrev", WORKLOADS)
    def test_baseline_digest_pinned(self, abbrev):
        heap_dig, model_dig, error = end_state_digests(
            abbrev, PersistMode.LOG_P_SF, SEED, init_ops=40, sim_ops=8
        )
        assert error is None
        assert (heap_dig, model_dig) == PINNED_DIGESTS[abbrev], (
            f"{abbrev}: end state drifted — if workload or trace semantics "
            "changed on purpose, regenerate PINNED_DIGESTS"
        )

    @pytest.mark.parametrize("abbrev", ["HM", "BT"])
    @pytest.mark.parametrize("mode", list(PersistMode))
    def test_every_mode_matches_pin(self, abbrev, mode):
        heap_dig, _, error = end_state_digests(
            abbrev, mode, SEED, init_ops=40, sim_ops=8
        )
        assert error is None
        assert heap_dig == PINNED_DIGESTS[abbrev][0], (abbrev, mode)
