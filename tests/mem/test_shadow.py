"""ShadowHeap overlay semantics (repro.mem.shadow)."""

from hypothesis import given, settings, strategies as st

from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.mem.shadow import ShadowHeap


def _heap_with_pattern() -> NVMHeap:
    heap = NVMHeap(1 << 14)
    heap.raw_write(0x100, bytes(range(64)))
    return heap


class TestReadThrough:
    def test_unwritten_addresses_read_real_memory(self):
        heap = _heap_with_pattern()
        shadow = ShadowHeap(heap)
        assert shadow.load_bytes(0x100, 8) == heap.raw_read(0x100, 8)

    def test_u64_read_through(self):
        heap = NVMHeap(1 << 14)
        heap.store_u64(0x200, 777)
        shadow = ShadowHeap(heap)
        assert shadow.load_u64(0x200) == 777


class TestWriteBuffering:
    def test_writes_visible_through_shadow(self):
        shadow = ShadowHeap(NVMHeap(1 << 14))
        shadow.store_u64(0x100, 42)
        assert shadow.load_u64(0x100) == 42

    def test_writes_never_reach_real_memory(self):
        heap = NVMHeap(1 << 14)
        shadow = ShadowHeap(heap)
        shadow.store_u64(0x100, 42)
        assert heap.load_u64(0x100) == 0

    def test_partial_overlay_read(self):
        heap = _heap_with_pattern()
        shadow = ShadowHeap(heap)
        shadow.store_bytes(0x104, b"\xff\xff")
        data = shadow.load_bytes(0x100, 8)
        assert data == bytes([0, 1, 2, 3, 0xFF, 0xFF, 6, 7])

    def test_i64_round_trip(self):
        shadow = ShadowHeap(NVMHeap(1 << 14))
        shadow.store_i64(0x100, -5)
        assert shadow.load_i64(0x100) == -5

    def test_mixed_word_and_byte_writes(self):
        shadow = ShadowHeap(NVMHeap(1 << 14))
        shadow.store_u64(0x100, 0xAABBCCDDEEFF0011)
        shadow.store_bytes(0x103, b"\x00")
        value = shadow.load_u64(0x100)
        assert value == 0xAABBCCDD00FF0011


class TestWrittenBlocks:
    def test_blocks_tracked(self):
        shadow = ShadowHeap(NVMHeap(1 << 14))
        shadow.store_u64(0x104, 1)
        shadow.store_u64(0x244, 1)
        assert shadow.written_blocks == {0x100, 0x240}

    def test_straddling_write_tracks_both_blocks(self):
        shadow = ShadowHeap(NVMHeap(1 << 14))
        shadow.store_bytes(0x13C, bytes(8))  # crosses 0x100 -> 0x140
        assert shadow.written_blocks == {0x100, 0x140}

    def test_reads_do_not_track(self):
        shadow = ShadowHeap(_heap_with_pattern())
        shadow.load_bytes(0x100, 64)
        assert shadow.written_blocks == set()


class TestAgainstRealHeap:
    """Property: a sequence of writes applied to both a real heap and a
    shadow produces identical reads at every probed address."""

    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=8, max_value=0x3F0),
                st.integers(min_value=0, max_value=(1 << 64) - 1),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_shadow_matches_real_heap(self, writes):
        real = NVMHeap(1 << 12)
        backing = NVMHeap(1 << 12)
        shadow = ShadowHeap(backing)
        for addr, value in writes:
            real.store_u64(addr, value)
            shadow.store_u64(addr, value)
        for addr in {a for a, _ in writes}:
            assert shadow.load_u64(addr) == real.load_u64(addr)
