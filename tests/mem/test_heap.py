"""NVMHeap typed access, observation, and snapshots (repro.mem.heap)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.heap import NVMHeap, CACHE_BLOCK


class TestConstruction:
    def test_size_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            NVMHeap(100)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            NVMHeap(0)


class TestTypedAccess:
    def test_u64_round_trip(self, heap):
        heap.store_u64(0x100, 0xDEADBEEF)
        assert heap.load_u64(0x100) == 0xDEADBEEF

    def test_u64_wraps_at_64_bits(self, heap):
        heap.store_u64(0x100, (1 << 64) + 5)
        assert heap.load_u64(0x100) == 5

    def test_i64_round_trip_negative(self, heap):
        heap.store_i64(0x100, -17)
        assert heap.load_i64(0x100) == -17

    def test_i64_positive(self, heap):
        heap.store_i64(0x100, 12345)
        assert heap.load_i64(0x100) == 12345

    def test_bytes_round_trip(self, heap):
        payload = bytes(range(48))
        heap.store_bytes(0x200, payload)
        assert heap.load_bytes(0x200, 48) == payload

    def test_little_endian_layout(self, heap):
        heap.store_u64(0x100, 0x0102030405060708)
        assert heap.raw_read(0x100, 8) == bytes([8, 7, 6, 5, 4, 3, 2, 1])

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=50, deadline=None)
    def test_u64_round_trip_property(self, value):
        heap = NVMHeap(1 << 12)
        heap.store_u64(0x100, value)
        assert heap.load_u64(0x100) == value


class TestBounds:
    def test_null_address_rejected(self, heap):
        with pytest.raises(IndexError):
            heap.load_u64(0)

    def test_past_end_rejected(self, heap):
        with pytest.raises(IndexError):
            heap.store_u64(heap.size - 4, 1)

    def test_last_word_ok(self, heap):
        heap.store_u64(heap.size - 8, 7)
        assert heap.load_u64(heap.size - 8) == 7


class _Recorder:
    def __init__(self):
        self.events = []

    def load(self, addr, size=8, meta=None):
        self.events.append(("load", addr, size))

    def store(self, addr, size=8, meta=None):
        self.events.append(("store", addr, size))


class TestObservers:
    def test_load_store_observed(self, heap):
        obs = _Recorder()
        heap.attach(obs)
        heap.store_u64(0x100, 1)
        heap.load_u64(0x100)
        assert obs.events == [("store", 0x100, 8), ("load", 0x100, 8)]

    def test_bulk_access_observed_per_word(self, heap):
        obs = _Recorder()
        heap.attach(obs)
        heap.store_bytes(0x100, bytes(20))
        kinds = [e[0] for e in obs.events]
        assert kinds == ["store", "store", "store"]  # 8 + 8 + 4 bytes
        assert obs.events[2] == ("store", 0x110, 4)

    def test_detach(self, heap):
        obs = _Recorder()
        heap.attach(obs)
        heap.detach(obs)
        heap.store_u64(0x100, 1)
        assert obs.events == []

    def test_raw_access_not_observed(self, heap):
        obs = _Recorder()
        heap.attach(obs)
        heap.raw_write(0x100, b"\x01" * 8)
        heap.raw_read(0x100, 8)
        assert obs.events == []

    def test_multiple_observers(self, heap):
        a, b = _Recorder(), _Recorder()
        heap.attach(a)
        heap.attach(b)
        heap.load_u64(0x100)
        assert len(a.events) == len(b.events) == 1


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, heap):
        heap.store_u64(0x100, 42)
        image = heap.snapshot()
        heap.store_u64(0x100, 99)
        heap.restore(image)
        assert heap.load_u64(0x100) == 42

    def test_restore_wrong_size_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.restore(b"\x00" * 10)

    def test_block_of(self, heap):
        assert heap.block_of(0x1038) == 0x1000
        assert heap.block_of(CACHE_BLOCK) == CACHE_BLOCK
