"""Allocator behaviour (repro.mem.alloc)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.alloc import Allocator, OutOfMemoryError
from repro.mem.heap import NVMHeap, CACHE_BLOCK


class TestAlignment:
    def test_allocations_block_aligned(self, allocator):
        for size in (1, 8, 63, 64, 65, 200):
            assert allocator.alloc(size) % CACHE_BLOCK == 0

    def test_never_returns_null(self, allocator):
        assert allocator.alloc(8) != 0

    def test_small_allocations_get_whole_blocks(self, allocator):
        a = allocator.alloc(8)
        b = allocator.alloc(8)
        assert b - a >= CACHE_BLOCK


class TestErrors:
    def test_zero_size_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.alloc(0)

    def test_exhaustion_raises(self):
        heap = NVMHeap(4 * CACHE_BLOCK)
        allocator = Allocator(heap)
        allocator.alloc(CACHE_BLOCK)  # base starts at one block in
        allocator.alloc(CACHE_BLOCK)
        allocator.alloc(CACHE_BLOCK)
        with pytest.raises(OutOfMemoryError):
            allocator.alloc(CACHE_BLOCK)

    def test_bad_free_address(self, allocator):
        with pytest.raises(ValueError):
            allocator.free(3, 64)

    def test_unaligned_base_rejected(self, heap):
        with pytest.raises(ValueError):
            Allocator(heap, base=10)


class TestFreeList:
    def test_freed_region_reused(self, allocator):
        addr = allocator.alloc(128)
        allocator.free(addr, 128)
        assert allocator.alloc(128) == addr

    def test_free_list_is_per_size_class(self, allocator):
        addr = allocator.alloc(128)
        allocator.free(addr, 128)
        other = allocator.alloc(64)
        assert other != addr  # 64B request must not grab the 128B region

    def test_accounting(self, allocator):
        allocator.alloc(64)
        allocator.alloc(100)  # rounds to 128
        assert allocator.allocated_bytes == 64 + 128
        allocator.free(64, 64)
        assert allocator.freed_bytes == 64


class TestCheckpoint:
    def test_checkpoint_restore_replays_addresses(self, allocator):
        state = allocator.checkpoint()
        first = [allocator.alloc(64) for _ in range(5)]
        allocator.restore(state)
        second = [allocator.alloc(64) for _ in range(5)]
        assert first == second

    def test_checkpoint_preserves_free_lists(self, allocator):
        addr = allocator.alloc(64)
        allocator.free(addr, 64)
        state = allocator.checkpoint()
        assert allocator.alloc(64) == addr
        allocator.restore(state)
        assert allocator.alloc(64) == addr


class TestNonOverlap:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        heap = NVMHeap(1 << 20)
        allocator = Allocator(heap)
        regions = []
        for size in sizes:
            addr = allocator.alloc(size)
            for start, span in regions:
                assert addr + size <= start or addr >= start + span
            regions.append((addr, size))
