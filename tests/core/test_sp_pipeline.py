"""Speculative persistence integrated with the pipeline (paper §4)."""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel, simulate


def barrier(addr):
    """One WAL-step pattern: store, clwb, sfence-pcommit-sfence."""
    return [
        Instr(Op.STORE, addr),
        Instr(Op.CLWB, addr),
        Instr(Op.SFENCE),
        Instr(Op.PCOMMIT),
        Instr(Op.SFENCE),
    ]


def wal_op(base, work=60):
    """Four barrier steps separated by ALU work, like one transaction."""
    instrs = []
    for step in range(4):
        instrs += barrier(base + step * 64)
        instrs += [Instr(Op.ALU)] * work
    return instrs


def trace_of_ops(n_ops, work=60):
    instrs = []
    for i in range(n_ops):
        instrs += wal_op(0x10000 + i * 0x400, work)
    return Trace(instrs)


BASE = MachineConfig()
SP = BASE.with_sp(256)


class TestSpeculationEntry:
    def test_sp_enters_speculation_at_stalling_barrier(self):
        stats = simulate(trace_of_ops(3), SP)
        assert stats.sp_entries >= 1
        assert stats.epochs_created >= 1

    def test_no_speculation_when_disabled(self):
        stats = simulate(trace_of_ops(3), BASE)
        assert stats.sp_entries == 0
        assert stats.epochs_created == 0

    def test_sp_is_never_slower(self):
        trace = trace_of_ops(4)
        assert simulate(trace, SP).cycles <= simulate(trace, BASE).cycles

    def test_sp_removes_sfence_stalls(self):
        trace = trace_of_ops(4)
        base = simulate(trace, BASE)
        sp = simulate(trace, SP)
        assert sp.sfence_stall_cycles < base.sfence_stall_cycles


class TestEpochChaining:
    def test_back_to_back_barriers_create_child_epochs(self):
        # barriers with little work between them force epoch chains
        stats = simulate(trace_of_ops(4, work=5), SP)
        assert stats.epochs_created > stats.sp_entries
        assert stats.max_active_epochs >= 2

    def test_active_epochs_capped_by_checkpoints(self):
        stats = simulate(trace_of_ops(8, work=2), SP)
        assert stats.max_active_epochs <= SP.checkpoint_entries

    def test_checkpoint_exhaustion_stalls(self):
        config = BASE.with_sp(256, checkpoint_entries=2)
        stats = simulate(trace_of_ops(8, work=2), config)
        assert stats.checkpoint_stall_cycles > 0


class TestSSBPressure:
    def test_small_ssb_causes_structural_stalls(self):
        # long store bursts against a tiny SSB
        instrs = []
        for i in range(3):
            instrs += barrier(0x10000 + i * 0x400)
            instrs += [Instr(Op.STORE, 0x20000 + j * 64) for j in range(60)]
        tiny = BASE.with_sp(32)
        stats = simulate(Trace(instrs), tiny)
        assert stats.ssb_full_stall_cycles > 0

    def test_large_ssb_avoids_structural_stalls(self):
        instrs = []
        for i in range(3):
            instrs += barrier(0x10000 + i * 0x400)
            instrs += [Instr(Op.STORE, 0x20000 + j * 64) for j in range(60)]
        stats = simulate(Trace(instrs), BASE.with_sp(1024))
        assert stats.ssb_full_stall_cycles == 0

    def test_ssb_occupancy_tracked(self):
        stats = simulate(trace_of_ops(3, work=5), SP)
        assert stats.ssb_max_occupancy > 0


class TestSpeculativeLoads:
    def test_forwarding_from_ssb(self):
        instrs = barrier(0x10000)
        instrs += [Instr(Op.STORE, 0x20000)]
        instrs += [Instr(Op.LOAD, 0x20000)]  # must see the buffered store
        stats = simulate(Trace(instrs), SP)
        assert stats.ssb_forwards >= 1 or stats.sp_entries == 0

    def test_bloom_queries_happen_during_speculation(self):
        stats = simulate(trace_of_ops(3, work=10), SP)
        assert stats.bloom_queries == 0  # WAL pattern above has no loads
        instrs = []
        for i in range(3):
            instrs += barrier(0x10000 + i * 0x400)
            instrs += [Instr(Op.LOAD, 0x30000 + j * 64) for j in range(10)]
        stats = simulate(Trace(instrs), SP)
        assert stats.bloom_queries > 0


class TestSpeculationExit:
    def test_sole_epoch_exits_when_pcommit_completes(self):
        # one barrier, then a long serialised load chain: speculation must
        # exit mid-chain and the machine ends the run non-speculative
        instrs = barrier(0x10000)
        instrs += [Instr(Op.LOAD, 0x40000 + i * 4096) for i in range(30)]
        model = PipelineModel(SP)
        model.run(Trace(instrs))
        assert not model.epochs.speculating
        assert len(model.ssb) == 0

    def test_bloom_reset_on_exit(self):
        instrs = barrier(0x10000)
        instrs += [Instr(Op.LOAD, 0x40000 + i * 4096) for i in range(30)]
        model = PipelineModel(SP)
        model.run(Trace(instrs))
        assert model.bloom.resets >= 1

    def test_machine_drains_cleanly_at_end(self):
        model = PipelineModel(SP)
        model.run(trace_of_ops(5, work=3))
        assert not model.epochs.speculating
        assert len(model.ssb) == 0
        assert model.checkpoints.in_use == 0


class TestStrongOrderingOps:
    def test_xchg_ends_speculation(self):
        instrs = barrier(0x10000)
        instrs += [Instr(Op.STORE, 0x20000)]
        instrs += [Instr(Op.XCHG, 0x30000)]
        instrs += [Instr(Op.ALU)] * 20
        model = PipelineModel(SP)
        stats = model.run(Trace(instrs))
        assert not model.epochs.speculating
        assert stats.instructions == len(instrs)

    def test_clflush_ends_speculation(self):
        instrs = barrier(0x10000)
        instrs += [Instr(Op.STORE, 0x20000)]
        instrs += [Instr(Op.CLFLUSH, 0x20000)]
        model = PipelineModel(SP)
        model.run(Trace(instrs))
        assert not model.epochs.speculating


class TestRollback:
    def test_external_probe_conflict_rolls_back(self):
        model = PipelineModel(SP)
        # drive the model into speculation manually
        instrs = barrier(0x10000) + [Instr(Op.STORE, 0x20000)]
        for i, instr in enumerate(Trace(instrs)):
            pass
        model.run(Trace(instrs[:5]))  # barrier only: enter speculation
        if model.epochs.speculating:
            model.blt.record(0x20000)
            assert model.external_probe(0x20000)
            assert not model.epochs.speculating
            assert model.stats.rollbacks == 1

    def test_probe_without_conflict_is_harmless(self):
        model = PipelineModel(SP)
        model.run(Trace(barrier(0x10000)))
        assert not model.external_probe(0x999000)

    def test_probe_outside_speculation_is_harmless(self):
        model = PipelineModel(SP)
        model.run(Trace([Instr(Op.ALU)] * 10))
        assert not model.external_probe(0x10000)


class TestBarrierCoalescing:
    def test_one_checkpoint_per_barrier_triple(self):
        """Paper §4.2.2: an sfence-pcommit-sfence consumes a single
        checkpoint, not two."""
        stats = simulate(trace_of_ops(2, work=5), SP)
        # 8 barrier triples; epochs == sp_entries + child epochs, which
        # would roughly double with two checkpoints per barrier
        assert stats.epochs_created <= 9
