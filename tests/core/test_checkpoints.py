"""Checkpoint buffer (repro.core.checkpoints)."""

import pytest

from repro.core.checkpoints import CheckpointBuffer


class TestAcquireRelease:
    def test_capacity_four_by_default(self):
        assert CheckpointBuffer().capacity == 4

    def test_acquire_returns_distinct_ids(self):
        cb = CheckpointBuffer(4)
        ids = [cb.acquire() for _ in range(4)]
        assert len(set(ids)) == 4

    def test_exhaustion_raises(self):
        cb = CheckpointBuffer(2)
        cb.acquire()
        cb.acquire()
        assert not cb.available
        with pytest.raises(RuntimeError):
            cb.acquire()

    def test_release_makes_available(self):
        cb = CheckpointBuffer(1)
        cp = cb.acquire()
        cb.release(cp)
        assert cb.available
        assert cb.acquire() == cp

    def test_double_release_rejected(self):
        cb = CheckpointBuffer(2)
        cp = cb.acquire()
        cb.release(cp)
        with pytest.raises(ValueError):
            cb.release(cp)

    def test_release_unacquired_rejected(self):
        cb = CheckpointBuffer(2)
        with pytest.raises(ValueError):
            cb.release(0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            CheckpointBuffer(0)


class TestBookkeeping:
    def test_in_use_count(self):
        cb = CheckpointBuffer(4)
        cb.acquire()
        cb.acquire()
        assert cb.in_use == 2

    def test_taken_at(self):
        cb = CheckpointBuffer(4)
        cp = cb.acquire(now=123)
        assert cb.taken_at(cp) == 123
        cb.release(cp)
        assert cb.taken_at(cp) is None

    def test_release_all(self):
        cb = CheckpointBuffer(4)
        for _ in range(4):
            cb.acquire()
        cb.release_all()
        assert cb.in_use == 0
        assert cb.available

    def test_max_in_use(self):
        cb = CheckpointBuffer(4)
        a = cb.acquire()
        b = cb.acquire()
        cb.release(a)
        cb.release(b)
        assert cb.max_in_use == 2
