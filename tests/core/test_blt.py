"""Block Lookup Table (repro.core.blt)."""

from repro.core.blt import BlockLookupTable


class TestConflictDetection:
    def test_recorded_block_conflicts(self):
        blt = BlockLookupTable()
        blt.record(0x1000)
        assert blt.probe(0x1000)

    def test_unrecorded_block_clean(self):
        blt = BlockLookupTable()
        blt.record(0x1000)
        assert not blt.probe(0x2000)

    def test_loads_and_stores_both_recorded(self):
        # the BLT does not distinguish op kinds (paper keeps it simple)
        blt = BlockLookupTable()
        blt.record(0x1000)
        blt.record(0x1000)
        assert len(blt) == 1

    def test_clear(self):
        blt = BlockLookupTable()
        blt.record(0x1000)
        blt.clear()
        assert not blt.probe(0x1000)
        assert len(blt) == 0

    def test_stats(self):
        blt = BlockLookupTable()
        blt.record(0x1000)
        blt.probe(0x1000)
        blt.probe(0x2000)
        assert blt.records == 1
        assert blt.probes == 2
        assert blt.conflicts == 1
