"""Speculative Store Buffer (repro.core.ssb)."""

import pytest

from repro.core.ssb import SpeculativeStoreBuffer, SSBFullError, SSBOp


class TestCapacityAndLatency:
    def test_latency_from_table3(self):
        assert SpeculativeStoreBuffer(32).latency == 2
        assert SpeculativeStoreBuffer(256).latency == 5
        assert SpeculativeStoreBuffer(1024).latency == 10

    def test_overflow_raises(self):
        ssb = SpeculativeStoreBuffer(32)
        for i in range(32):
            ssb.append(SSBOp.STORE, i * 64, 0)
        with pytest.raises(SSBFullError):
            ssb.append(SSBOp.STORE, 0x9000, 0)

    def test_free_slots(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        assert ssb.free_slots == 31


class TestForwarding:
    def test_holds_store(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        assert ssb.holds_store(0x40)
        assert not ssb.holds_store(0x80)

    def test_pmem_entries_do_not_forward(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.CLWB, 0x40, 0)
        assert not ssb.holds_store(0x40)

    def test_duplicate_blocks_counted(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.pop_epoch(0)
        assert not ssb.holds_store(0x40)

    def test_forward_stats(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.holds_store(0x40)
        ssb.holds_store(0x80)
        assert ssb.lookups == 2
        assert ssb.forwards == 1


class TestEpochDrain:
    def test_pop_epoch_returns_in_order(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.append(SSBOp.CLWB, 0x40, 0)
        ssb.append(SSBOp.BARRIER, 0, 0)
        ssb.append(SSBOp.STORE, 0x80, 1)
        drained = ssb.pop_epoch(0)
        assert [e.op for e in drained] == [SSBOp.STORE, SSBOp.CLWB, SSBOp.BARRIER]
        assert len(ssb) == 1

    def test_pop_epoch_clears_forwarding(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.pop_epoch(0)
        assert not ssb.holds_store(0x40)

    def test_younger_epoch_still_forwards(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 0)
        ssb.append(SSBOp.STORE, 0x40, 1)
        ssb.pop_epoch(0)
        assert ssb.holds_store(0x40)

    def test_non_contiguous_epoch_rejected(self):
        ssb = SpeculativeStoreBuffer(32)
        ssb.append(SSBOp.STORE, 0x40, 1)  # epoch 1 split around epoch 0:
        ssb.append(SSBOp.STORE, 0x80, 0)  # a sequencing bug the SSB must
        ssb.append(SSBOp.STORE, 0xC0, 1)  # refuse to drain silently
        with pytest.raises(RuntimeError):
            ssb.pop_epoch(1)


class TestFlush:
    def test_flush_discards_everything(self):
        ssb = SpeculativeStoreBuffer(32)
        for i in range(10):
            ssb.append(SSBOp.STORE, i * 64, 0)
        ssb.flush()
        assert len(ssb) == 0
        assert not ssb.holds_store(0)

    def test_max_occupancy_tracked(self):
        ssb = SpeculativeStoreBuffer(32)
        for i in range(12):
            ssb.append(SSBOp.STORE, i * 64, 0)
        ssb.flush()
        assert ssb.max_occupancy == 12
