"""Epoch drain scheduling details (repro.core.epochs)."""

from repro.core.checkpoints import CheckpointBuffer
from repro.core.epochs import EpochManager
from repro.core.ssb import SpeculativeStoreBuffer
from repro.uarch.config import MachineConfig
from repro.uarch.memctrl import MemoryController


def make(drain=1):
    mgr = EpochManager(
        CheckpointBuffer(4), SpeculativeStoreBuffer(256), drain_per_cycle=drain
    )
    mc = MemoryController(MachineConfig())
    return mgr, mc, mc.writeback_ack


class TestDrainBandwidth:
    def test_wider_ports_drain_faster(self):
        def drain_time(ports):
            mgr, mc, ack = make(drain=ports)
            epoch = mgr.begin_epoch(barrier_done=0, now=0)
            for i in range(32):
                mgr.buffer_store(0x40 * i)
            return mgr.schedule_drain(epoch, ended_at=10, memctrl=mc, ack=ack)

        assert drain_time(4) < drain_time(1)

    def test_drain_rounds_up(self):
        mgr, mc, ack = make(drain=4)
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        for i in range(5):  # 5 stores at 4/cycle -> 2 cycles
            mgr.buffer_store(0x40 * i)
        done = mgr.schedule_drain(epoch, ended_at=100, memctrl=mc, ack=ack)
        assert done >= 102

    def test_empty_epoch_drains_instantly(self):
        mgr, mc, ack = make()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        done = mgr.schedule_drain(epoch, ended_at=50, memctrl=mc, ack=ack)
        assert done == 50

    def test_zero_drain_rate_clamped(self):
        mgr = EpochManager(
            CheckpointBuffer(4), SpeculativeStoreBuffer(256), drain_per_cycle=0
        )
        assert mgr.drain_per_cycle == 1


class TestFlushReplay:
    def test_flush_acks_bound_the_drain(self):
        mgr, mc, ack = make()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        for i in range(4):
            mgr.buffer_flush(0x40 * i)
        done = mgr.schedule_drain(epoch, ended_at=100, memctrl=mc, ack=ack)
        # each replayed clwb enqueues a writeback; the last ack dominates
        assert done > 100 + 4
        assert mc.writes == 4

    def test_pcommit_follows_flush_acks(self):
        mgr, mc, ack = make()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        mgr.buffer_flush(0x40)
        end = mgr.schedule_end(epoch, ended_at=100, memctrl=mc, ack=ack)
        assert end > epoch.drain_done
        assert mc.pcommits == 1


class TestBarrierDoneGating:
    def test_drain_cannot_start_before_barrier(self):
        mgr, mc, ack = make()
        epoch = mgr.begin_epoch(barrier_done=5000, now=0)
        mgr.buffer_store(0x40)
        done = mgr.schedule_drain(epoch, ended_at=100, memctrl=mc, ack=ack)
        assert done >= 5000

    def test_late_end_pushes_drain(self):
        mgr, mc, ack = make()
        epoch = mgr.begin_epoch(barrier_done=10, now=0)
        mgr.buffer_store(0x40)
        done = mgr.schedule_drain(epoch, ended_at=9000, memctrl=mc, ack=ack)
        assert done >= 9000
