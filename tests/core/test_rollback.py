"""Rollback re-execution on coherence conflicts (paper §4.2.2).

External coherence probes are scheduled at trace positions; a BLT hit
aborts speculation and execution resumes from the oldest checkpoint —
re-running the squashed instructions, as real hardware would.
"""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel

SP = MachineConfig().with_sp(256)


def barrier(addr):
    return [
        Instr(Op.STORE, addr),
        Instr(Op.CLWB, addr),
        Instr(Op.SFENCE),
        Instr(Op.PCOMMIT),
        Instr(Op.SFENCE),
    ]


def spec_trace():
    instrs = barrier(0x10000)
    instrs += [Instr(Op.STORE, 0x20000)]
    instrs += [Instr(Op.LOAD, 0x30000 + i * 64) for i in range(10)]
    instrs += [Instr(Op.ALU)] * 20
    return Trace(instrs)


class TestConflictRollback:
    def test_conflicting_probe_triggers_rollback(self):
        model = PipelineModel(SP)
        # probe the speculatively-written block while speculation is live
        model.schedule_probe(8, 0x20000)
        stats = model.run(spec_trace())
        assert stats.rollbacks == 1
        assert not model.epochs.speculating
        assert len(model.ssb) == 0
        assert model.checkpoints.in_use == 0

    def test_rollback_reexecutes_instructions(self):
        trace = spec_trace()
        clean = PipelineModel(SP).run(trace)
        model = PipelineModel(SP)
        model.schedule_probe(8, 0x20000)
        squashed = model.run(trace)
        assert squashed.instructions > clean.instructions
        assert squashed.cycles >= clean.cycles

    def test_rollback_completes_functionally(self):
        model = PipelineModel(SP)
        model.schedule_probe(8, 0x20000)
        trace = spec_trace()
        stats = model.run(trace)
        # every instruction eventually retires (some twice)
        assert stats.instructions >= len(trace)

    def test_non_conflicting_probe_is_free(self):
        trace = spec_trace()
        clean = PipelineModel(SP).run(trace)
        model = PipelineModel(SP)
        model.schedule_probe(8, 0x999000)
        probed = model.run(trace)
        assert probed.rollbacks == 0
        assert probed.cycles == clean.cycles

    def test_probe_outside_speculation_is_free(self):
        model = PipelineModel(SP)
        model.schedule_probe(2, 0x30000)
        stats = model.run(Trace([Instr(Op.ALU)] * 10))
        assert stats.rollbacks == 0

    def test_probe_against_speculative_load_conflicts(self):
        """The BLT records speculative *loads* too (reading stale data
        after an external write would be incoherent)."""
        # a heavy barrier (many queued writebacks) keeps speculation alive
        # long enough for the loads to run inside it
        instrs = []
        for i in range(8):
            instrs += [Instr(Op.STORE, 0x10000 + i * 64), Instr(Op.CLWB, 0x10000 + i * 64)]
        instrs += [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
        load_index = len(instrs)
        instrs += [Instr(Op.LOAD, 0x30000, meta="bulk")]
        instrs += [Instr(Op.ALU)] * 10
        model = PipelineModel(SP)
        model.schedule_probe(load_index + 1, 0x30000)
        stats = model.run(Trace(instrs))
        assert stats.rollbacks == 1

    def test_multiple_probes_single_rollback(self):
        model = PipelineModel(SP)
        model.schedule_probe(8, 0x20000)
        model.schedule_probe(8, 0x30000)
        stats = model.run(spec_trace())
        assert stats.rollbacks == 1  # one abort covers both conflicts


class TestRollbackThenResume:
    def test_speculation_can_restart_after_rollback(self):
        instrs = []
        for i in range(4):
            instrs += barrier(0x10000 + i * 0x400)
            instrs += [Instr(Op.STORE, 0x20000 + i * 64)]
            instrs += [Instr(Op.ALU)] * 30
        model = PipelineModel(SP)
        model.schedule_probe(6, 0x20000)
        stats = model.run(Trace(instrs))
        assert stats.rollbacks == 1
        assert stats.sp_entries >= 2  # re-entered speculation afterwards
        assert not model.epochs.speculating

    def test_rollback_penalty_charged(self):
        from dataclasses import replace

        trace = spec_trace()
        cheap_cfg = SP
        costly_cfg = replace(SP, rollback_penalty=500)
        cheap = PipelineModel(cheap_cfg)
        cheap.schedule_probe(8, 0x20000)
        costly = PipelineModel(costly_cfg)
        costly.schedule_probe(8, 0x20000)
        assert costly.run(trace).cycles > cheap.run(trace).cycles
