"""Pipeline ablation flags: bloom_enabled, coalesce_barrier_checkpoints."""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate


def barrier(addr):
    return [
        Instr(Op.STORE, addr),
        Instr(Op.CLWB, addr),
        Instr(Op.SFENCE),
        Instr(Op.PCOMMIT),
        Instr(Op.SFENCE),
    ]


def fenced_trace(n_ops=4, loads=12):
    instrs = []
    for i in range(n_ops):
        instrs += barrier(0x10000 + i * 0x400)
        instrs += [Instr(Op.LOAD, 0x80000 + (i * loads + j) * 64) for j in range(loads)]
        instrs += [Instr(Op.ALU)] * 20
    return Trace(instrs)


BASE = MachineConfig()


class TestBloomAblation:
    def test_disabling_bloom_never_helps(self):
        trace = fenced_trace()
        with_bloom = simulate(trace, BASE.with_sp(256))
        without = simulate(trace, BASE.with_sp(256, bloom_enabled=False))
        assert with_bloom.cycles <= without.cycles

    def test_no_bloom_queries_when_disabled(self):
        trace = fenced_trace()
        stats = simulate(trace, BASE.with_sp(256, bloom_enabled=False))
        assert stats.bloom_queries == 0

    def test_forwarding_still_works_without_bloom(self):
        instrs = barrier(0x10000) + [Instr(Op.STORE, 0x20000), Instr(Op.LOAD, 0x20000)]
        stats = simulate(Trace(instrs), BASE.with_sp(256, bloom_enabled=False))
        assert stats.ssb_forwards >= 1


class TestCheckpointCoalescingAblation:
    def test_naive_mode_creates_more_epochs(self):
        trace = fenced_trace(n_ops=6, loads=4)
        coalesced = simulate(trace, BASE.with_sp(256))
        naive = simulate(
            trace, BASE.with_sp(256, coalesce_barrier_checkpoints=False)
        )
        assert naive.epochs_created > coalesced.epochs_created

    def test_naive_mode_is_not_faster(self):
        trace = fenced_trace(n_ops=6, loads=4)
        coalesced = simulate(trace, BASE.with_sp(256))
        naive = simulate(
            trace, BASE.with_sp(256, coalesce_barrier_checkpoints=False)
        )
        assert coalesced.cycles <= naive.cycles

    def test_naive_mode_without_sp_matches_semantics(self):
        """With SP disabled the coalescing flag is timing-irrelevant: both
        paths stall the same way (within the macro-op's width effects)."""
        trace = fenced_trace(n_ops=3, loads=4)
        a = simulate(trace, BASE)
        from dataclasses import replace

        b = simulate(trace, replace(BASE, coalesce_barrier_checkpoints=False))
        assert abs(a.cycles - b.cycles) / a.cycles < 0.05

    def test_naive_mode_machine_drains_cleanly(self):
        from repro.uarch.pipeline import PipelineModel

        model = PipelineModel(BASE.with_sp(256, coalesce_barrier_checkpoints=False))
        model.run(fenced_trace(n_ops=6, loads=4))
        assert not model.epochs.speculating
        assert model.checkpoints.in_use == 0
