"""Conflict-protocol battery: directed two-core scenarios (paper §4.2.2).

Each scenario hand-builds one trace per core and drives them through
:class:`~repro.uarch.system.SystemModel`, pinning down the BLT-driven
protocol: which stores broadcast when, which probes abort, and what
state a core is left in after a rollback.  The system-level scenarios
at the bottom run :mod:`repro.workloads.concurrent` transactions and
check the recovered heap against the serial oracle.
"""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.uarch.system import SystemModel, simulate_system
from repro.workloads.concurrent import generate_concurrent, serial_oracle_check

SP = MachineConfig().with_sp(256)

#: distinct cache blocks (64-byte aligned, far apart)
HOT = 0x40000
COLD = 0x80000
PRIV0 = 0x10000
PRIV1 = 0x20000


def barrier(addr):
    return [
        Instr(Op.STORE, addr),
        Instr(Op.CLWB, addr),
        Instr(Op.SFENCE),
        Instr(Op.PCOMMIT),
        Instr(Op.SFENCE),
    ]


def writer_trace(block, pad=30, tail=200, repeats=1, gap=300):
    """Non-speculative core: plain stores to *block*, never any barrier,
    so every store becomes globally visible (broadcasts) immediately."""
    instrs = [Instr(Op.ALU)] * pad
    for _ in range(repeats):
        instrs += [Instr(Op.STORE, block)]
        instrs += [Instr(Op.ALU)] * gap
    instrs += [Instr(Op.ALU)] * tail
    return Trace(instrs)


def spec_reader_trace(block, private, loads=6, tail=400):
    """Speculating core: barrier opens an epoch, then loads of *block*
    land in the BLT while the epoch drains."""
    instrs = barrier(private)
    instrs += [Instr(Op.LOAD, block + i * 8) for i in range(loads)]
    instrs += [Instr(Op.ALU)] * tail
    return Trace(instrs)


def spec_writer_trace(block, private, tail=400):
    """Speculating core: barrier opens an epoch, then a speculative
    store to *block* sits in the SSB (and the BLT)."""
    instrs = barrier(private)
    instrs += [Instr(Op.STORE, block)]
    instrs += [Instr(Op.ALU)] * tail
    return Trace(instrs)


class TestDirectedScenarios:
    def test_disjoint_blocks_no_abort(self):
        """Cores touching disjoint blocks never conflict, and each
        retires cycle-for-cycle as if it ran alone."""
        traces = [
            spec_writer_trace(HOT, PRIV0),
            spec_reader_trace(COLD, PRIV1),
        ]
        system = SystemModel(SP, n_cores=2)
        result = system.run(traces)
        assert result.conflict_aborts == 0
        assert result.store_broadcasts > 0  # barrier stores still broadcast
        for core, trace in zip(system.cores, traces):
            assert core.stats.rollbacks == 0
            alone = simulate(trace, SP)
            assert core.stats.as_dict() == alone.as_dict()

    def test_write_write_same_line_aborts(self):
        """A remote store to a block the reader speculatively *wrote*
        hits the BLT and rolls the reader back."""
        system = SystemModel(SP, n_cores=2)
        result = system.run([
            writer_trace(HOT),
            spec_writer_trace(HOT, PRIV1),
        ])
        assert result.conflict_aborts == 1
        assert result.replayed_instructions > 0
        writer, victim = system.cores
        assert writer.stats.rollbacks == 0
        assert victim.stats.rollbacks == 1
        assert victim.stats.conflict_abort_cycles > 0
        # post-abort machine state: speculation fully unwound
        assert victim.blt.conflicts == 1
        assert len(victim.blt) == 0
        assert not victim.epochs.speculating
        assert len(victim.ssb) == 0
        assert victim.checkpoints.in_use == 0

    def test_read_write_reader_speculative_aborts(self):
        """A remote store to a block the reader speculatively *read*
        aborts too — the BLT does not distinguish loads from stores."""
        system = SystemModel(SP, n_cores=2)
        result = system.run([
            writer_trace(HOT),
            spec_reader_trace(HOT, PRIV1),
        ])
        assert result.conflict_aborts == 1
        victim = system.cores[1]
        assert victim.stats.rollbacks == 1
        assert victim.blt.conflicts == 1
        assert len(victim.blt) == 0

    def test_speculative_store_is_private_until_commit(self):
        """An epoch's stores must not broadcast before the epoch
        commits: two cores speculatively writing the same block do not
        abort each other while both epochs are still open — the abort
        happens only once the first commit makes its store visible."""
        system = SystemModel(SP, n_cores=2)
        # tails long enough that both epochs commit mid-trace (the
        # speculative window is ~630 instructions under SP256)
        result = system.run([
            spec_writer_trace(HOT, PRIV0, tail=2000),
            spec_writer_trace(HOT, PRIV1, tail=2000),
        ])
        # exactly one core loses: the later committer absorbs the
        # winner's commit-time broadcast while still draining
        assert result.conflict_aborts == 1
        rollbacks = sorted(core.stats.rollbacks for core in system.cores)
        assert rollbacks == [0, 1]

    def test_abort_during_drain(self):
        """The victim's epoch is still draining (pcommit outstanding)
        when the remote commit lands: rollback happens mid-drain and
        the SSB's draining entries are squashed with it."""
        system = SystemModel(SP, n_cores=2)
        result = system.run(
            [
                spec_writer_trace(HOT, PRIV0, tail=2000),
                spec_reader_trace(HOT, PRIV1, loads=4, tail=2000),
            ],
            stop_after_aborts=1,
            finish=False,
        )
        assert result.conflict_aborts == 1
        victim = system.cores[1]
        assert victim.stats.rollbacks == 1
        # the victim never reached its own commit: it was still inside
        # the speculative window opened by its one barrier
        assert victim.stats.sp_entries >= 1
        assert not victim.epochs.speculating
        assert len(victim.ssb) == 0
        assert victim.checkpoints.in_use == 0

    def test_repeated_abort_replay_converges(self):
        """A writer hammering the hot block aborts the reader across
        several speculative windows; every abort replays and the run
        still terminates with every instruction retired."""
        reader = []
        for _ in range(3):
            reader += barrier(PRIV1)
            reader += [Instr(Op.LOAD, HOT)]
            reader += [Instr(Op.ALU)] * 700
        reader_trace = Trace(reader)
        system = SystemModel(SP, n_cores=2)
        result = system.run([
            writer_trace(HOT, pad=320, repeats=4, gap=640, tail=100),
            reader_trace,
        ])
        assert result.conflict_aborts >= 2
        victim = system.cores[1]
        assert victim.stats.rollbacks == result.conflict_aborts
        # convergence: the replays all retired — total instructions is
        # the trace length plus exactly the replayed work
        assert victim.stats.instructions == len(reader_trace) + result.replayed_instructions
        assert not victim.epochs.speculating


class TestSystemScenarios:
    def test_zero_contention_no_aborts_and_oracle(self):
        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=2, contention=0.0, seed=11
        )
        result = simulate_system(run.traces, SP)
        assert result.conflict_aborts == 0
        assert serial_oracle_check(run) is None
        assert run.check_invariants() is None

    def test_full_contention_aborts_replay_to_commit(self):
        run = generate_concurrent(
            "HM", PersistMode.LOG_P_SF, n_cores=2, contention=1.0, seed=11
        )
        result = simulate_system(run.traces, SP)
        assert result.conflict_aborts > 0
        assert result.replayed_instructions > 0
        # every abort was replayed to completion: each core retired at
        # least its whole trace
        for stats, trace in zip(result.per_core, run.traces):
            assert stats.instructions >= len(trace)
        # and the shared heap still matches a serial execution of the
        # committed-transaction order
        assert serial_oracle_check(run) is None
        assert run.check_invariants() is None

    def test_btree_contention_oracle(self):
        run = generate_concurrent(
            "BT", PersistMode.LOG_P_SF, n_cores=3, contention=0.7, seed=5
        )
        result = simulate_system(run.traces, SP)
        assert result.conflict_aborts > 0
        assert serial_oracle_check(run) is None
