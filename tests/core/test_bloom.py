"""Bloom filter (repro.core.bloom)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter


class TestBasics:
    def test_empty_filter_misses(self):
        bf = BloomFilter()
        assert not bf.maybe_contains(0x1000)

    def test_inserted_block_hits(self):
        bf = BloomFilter()
        bf.insert(0x1000)
        assert bf.maybe_contains(0x1000)

    def test_reset_clears_everything(self):
        bf = BloomFilter()
        for i in range(100):
            bf.insert(0x1000 + i * 64)
        bf.reset()
        assert not bf.maybe_contains(0x1000)
        assert bf.resets == 1

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(size_bytes=0)
        with pytest.raises(ValueError):
            BloomFilter(n_hashes=0)


class TestNoFalseNegatives:
    @given(
        blocks=st.lists(
            st.integers(min_value=0, max_value=1 << 40).map(lambda x: x & ~63),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_inserted_block_hits(self, blocks):
        bf = BloomFilter(512, 2)
        for block in blocks:
            bf.insert(block)
        for block in blocks:
            assert bf.maybe_contains(block)


class TestFalsePositives:
    def test_false_positive_rate_is_low_when_sparse(self):
        bf = BloomFilter(512, 2)
        for i in range(20):
            bf.insert(i * 64)
        false_hits = sum(
            bf.maybe_contains((1 << 30) + i * 64) for i in range(1000)
        )
        assert false_hits / 1000 < 0.05

    def test_false_positive_rate_rises_when_full(self):
        bf = BloomFilter(64, 2)  # deliberately tiny
        for i in range(2000):
            bf.insert(i * 64)
        false_hits = sum(
            bf.maybe_contains((1 << 30) + i * 64) for i in range(200)
        )
        assert false_hits / 200 > 0.5

    def test_recorded_false_positives(self):
        bf = BloomFilter()
        bf.insert(0x40)
        bf.maybe_contains(0x40)
        bf.record_false_positive()
        assert bf.false_positives == 1
        assert bf.false_positive_rate == 1.0

    def test_rate_zero_without_queries(self):
        assert BloomFilter().false_positive_rate == 0.0


class TestStats:
    def test_counters(self):
        bf = BloomFilter()
        bf.insert(0x40)
        bf.maybe_contains(0x40)
        bf.maybe_contains(0x80)
        assert bf.inserts == 1
        assert bf.queries == 2
        assert bf.hits >= 1

    def test_occupancy_monotone(self):
        bf = BloomFilter()
        before = bf.occupancy
        bf.insert(0x40)
        assert bf.occupancy > before
