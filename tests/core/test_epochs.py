"""Epoch manager and commit scheduling (repro.core.epochs)."""

import pytest

from repro.core.checkpoints import CheckpointBuffer
from repro.core.epochs import EpochManager
from repro.core.ssb import SpeculativeStoreBuffer, SSBOp
from repro.uarch.config import MachineConfig
from repro.uarch.memctrl import MemoryController


def make_manager(checkpoints=4, ssb=256, drain=4):
    cb = CheckpointBuffer(checkpoints)
    buf = SpeculativeStoreBuffer(ssb)
    return EpochManager(cb, buf, drain_per_cycle=drain), cb, buf


def make_mc():
    mc = MemoryController(MachineConfig())
    return mc, mc.writeback_ack


class TestLifecycle:
    def test_not_speculating_initially(self):
        mgr, _, _ = make_manager()
        assert not mgr.speculating
        assert mgr.current is None
        assert mgr.oldest is None

    def test_begin_epoch_takes_checkpoint(self):
        mgr, cb, _ = make_manager()
        epoch = mgr.begin_epoch(barrier_done=500, now=10)
        assert mgr.speculating
        assert cb.in_use == 1
        assert epoch.barrier_done == 500

    def test_child_epochs_ordered(self):
        mgr, _, _ = make_manager()
        first = mgr.begin_epoch(100, 0)
        second = mgr.begin_epoch(200, 50)
        assert mgr.oldest is first
        assert mgr.current is second
        assert mgr.max_active == 2

    def test_commit_oldest_frees_resources(self):
        mgr, cb, buf = make_manager()
        epoch = mgr.begin_epoch(100, 0)
        mgr.buffer_store(0x40)
        mgr.commit_oldest()
        assert not mgr.speculating
        assert cb.in_use == 0
        assert len(buf) == 0
        del epoch


class TestBuffering:
    def test_buffer_store_goes_to_current_epoch(self):
        mgr, _, buf = make_manager()
        mgr.begin_epoch(100, 0)
        mgr.buffer_store(0x40)
        assert mgr.current.n_stores == 1
        assert buf.holds_store(0x40)

    def test_buffer_flush_kinds(self):
        mgr, _, buf = make_manager()
        mgr.begin_epoch(100, 0)
        mgr.buffer_flush(0x40)
        mgr.buffer_flush(0x80, invalidate=True)
        ops = [e.op for e in buf.entries()]
        assert ops == [SSBOp.CLWB, SSBOp.CLFLUSHOPT]
        assert mgr.current.n_flushes == 2

    def test_buffer_barrier_special_opcode(self):
        mgr, _, buf = make_manager()
        mgr.begin_epoch(100, 0)
        mgr.buffer_barrier()
        assert buf.entries()[0].op is SSBOp.BARRIER
        assert mgr.current.n_pcommits == 1


class TestScheduling:
    def test_drain_after_barrier_done(self):
        mgr, _, _ = make_manager()
        mc, ack = make_mc()
        epoch = mgr.begin_epoch(barrier_done=1000, now=0)
        for i in range(8):
            mgr.buffer_store(0x40 * i)
        drain_done = mgr.schedule_drain(epoch, ended_at=50, memctrl=mc, ack=ack)
        assert epoch.ended
        assert drain_done >= 1000  # cannot drain before the barrier acks

    def test_drain_accounts_store_bandwidth(self):
        mgr, _, _ = make_manager(drain=1)
        mc, ack = make_mc()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        for i in range(20):
            mgr.buffer_store(0x40 * i)
        drain_done = mgr.schedule_drain(epoch, ended_at=100, memctrl=mc, ack=ack)
        assert drain_done >= 100 + 20

    def test_flushes_extend_drain(self):
        mgr, _, _ = make_manager()
        mc, ack = make_mc()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        mgr.buffer_flush(0x40)
        drain_done = mgr.schedule_drain(epoch, ended_at=100, memctrl=mc, ack=ack)
        # the flush's writeback acknowledgement bounds the drain
        assert drain_done > 100

    def test_schedule_end_issues_pcommit(self):
        mgr, _, _ = make_manager()
        mc, ack = make_mc()
        epoch = mgr.begin_epoch(barrier_done=0, now=0)
        mgr.buffer_flush(0x40)
        done = mgr.schedule_end(epoch, ended_at=100, memctrl=mc, ack=ack)
        assert done == epoch.next_barrier_done
        assert done > epoch.drain_done
        assert mc.pcommits == 1

    def test_sequential_epochs_serialise(self):
        mgr, _, _ = make_manager()
        mc, ack = make_mc()
        first = mgr.begin_epoch(barrier_done=500, now=0)
        mgr.buffer_store(0x40)
        first_done = mgr.schedule_end(first, ended_at=100, memctrl=mc, ack=ack)
        second = mgr.begin_epoch(barrier_done=first_done, now=150)
        mgr.buffer_store(0x80)
        second_done = mgr.schedule_end(second, ended_at=200, memctrl=mc, ack=ack)
        assert second_done > first_done


class TestRollback:
    def test_rollback_discards_all_epochs(self):
        mgr, cb, buf = make_manager()
        mgr.begin_epoch(100, 0)
        mgr.buffer_store(0x40)
        mgr.begin_epoch(200, 50)
        mgr.buffer_store(0x80)
        discarded = mgr.rollback()
        assert len(discarded) == 2
        assert not mgr.speculating
        assert cb.in_use == 0
        assert len(buf) == 0
        assert mgr.rollbacks == 1

    def test_rollback_returns_oldest_first(self):
        mgr, _, _ = make_manager()
        a = mgr.begin_epoch(100, 0)
        b = mgr.begin_epoch(200, 50)
        discarded = mgr.rollback()
        assert discarded == [a, b]


class TestExhaustion:
    def test_checkpoint_exhaustion_guard(self):
        mgr, cb, _ = make_manager(checkpoints=2)
        mgr.begin_epoch(100, 0)
        mgr.begin_epoch(200, 0)
        assert not cb.available
        with pytest.raises(RuntimeError):
            mgr.begin_epoch(300, 0)
