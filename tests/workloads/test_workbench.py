"""Workbench wiring and configuration flags (repro.workloads.base)."""

import pytest

from repro.isa.ops import Op
from repro.txn.modes import PersistMode
from repro.workloads.base import Workbench
from repro.workloads.linkedlist import LinkedListWorkload


class TestObserverWiring:
    def test_recorder_attached_only_when_requested(self):
        bench = Workbench(record=False)
        assert bench.recorder is None
        assert bench.trace is None

    def test_domain_attached_only_when_requested(self):
        bench = Workbench(track_persistence=False)
        assert bench.domain is None

    def test_both_observers_see_the_same_stores(self):
        bench = Workbench(record=True, track_persistence=True)
        bench.finish_init()  # drop constructor-time log-header stores
        before = bench.domain.n_stores
        bench.heap.store_u64(0x100, 1)
        assert bench.domain.n_stores - before == 1
        assert bench.trace.stats().count(Op.STORE) == 1

    def test_persist_ops_share_backends(self):
        bench = Workbench(record=True, track_persistence=True,
                          mode=PersistMode.LOG_P_SF)
        bench.heap.store_u64(0x100, 1)
        bench.persist.clwb(0x100)
        bench.persist.persist_barrier()
        assert bench.domain.is_durable(0x100)
        assert bench.trace.stats().pmem_count == 2  # clwb + pcommit


class TestAluPadding:
    def test_padding_knobs(self):
        bench = Workbench(record=True, alu_per_load=3, alu_per_store=2)
        bench.finish_init()
        bench.heap.load_u64(0x100)
        bench.heap.store_u64(0x100, 1)
        stats = bench.trace.stats()
        assert stats.by_op[Op.ALU] == 5

    def test_zero_padding(self):
        bench = Workbench(record=True, alu_per_load=0, alu_per_store=0)
        bench.heap.load_u64(0x100)
        assert bench.trace.stats().by_op.get(Op.ALU, 0) == 0


class TestUntimed:
    def test_untimed_suppresses_recording(self):
        bench = Workbench(record=True)
        bench.finish_init()
        with bench.untimed():
            bench.heap.store_u64(0x100, 1)
        assert len(bench.trace) == 0

    def test_untimed_without_recorder(self):
        bench = Workbench(record=False)
        with bench.untimed():
            bench.heap.store_u64(0x100, 1)  # must not raise

    def test_untimed_does_not_suppress_domain(self):
        """Fast-forward hides work from the *timing* model only; the
        persistence domain keeps tracking (init writes must be accounted
        durable by finish_init, not lost)."""
        bench = Workbench(record=True, track_persistence=True)
        before = bench.domain.n_stores
        with bench.untimed():
            bench.heap.store_u64(0x100, 1)
        assert bench.domain.n_stores - before == 1


class TestFinishInit:
    def test_finish_init_clears_trace(self):
        bench = Workbench(record=True)
        bench.heap.store_u64(0x100, 1)
        bench.finish_init()
        assert len(bench.trace) == 0

    def test_finish_init_makes_state_durable(self):
        bench = Workbench(track_persistence=True)
        bench.heap.store_u64(0x100, 9)
        bench.finish_init()
        bench.domain.crash()
        assert bench.heap.load_u64(0x100) == 9

    def test_finish_init_resets_persist_counters(self):
        bench = Workbench(record=True, mode=PersistMode.LOG_P_SF)
        bench.persist.persist_barrier()
        bench.finish_init()
        assert bench.persist.n_pcommit == 0
        assert bench.persist.n_sfence == 0

    def test_populate_calls_finish_init(self):
        bench = Workbench(record=True, track_persistence=True,
                          heap_size=1 << 22, seed=1)
        workload = LinkedListWorkload(bench, max_nodes=32)
        workload.populate(10)
        assert len(bench.trace) == 0
        assert not bench.domain.dirty


class TestSeedDeterminism:
    def test_same_seed_same_trace(self):
        def build(seed):
            bench = Workbench(record=True, heap_size=1 << 22, seed=seed)
            workload = LinkedListWorkload(bench, max_nodes=64)
            workload.populate(20)
            workload.run(10)
            return bench.trace

        a, b = build(5), build(5)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seed_different_trace(self):
        def build(seed):
            bench = Workbench(record=True, heap_size=1 << 22, seed=seed)
            workload = LinkedListWorkload(bench, max_nodes=64)
            workload.populate(20)
            workload.run(10)
            return bench.trace

        assert list(build(5)) != list(build(6))


class TestInvalidConfig:
    def test_bad_flush_policy(self):
        with pytest.raises(ValueError):
            Workbench(flush_with="nope")
