"""End-to-end crash consistency for every workload.

The positive result: under the full protocol (``LOG_P_SF``) every injected
crash point recovers to a consistent structure matching the reference
model.  The negative control: without fences (``LOG_P``) even *completed*
operations can evaporate — the paper's argument for why the expensive
``sfence-pcommit-sfence`` sequences cannot simply be dropped.
"""

import sys

import pytest

from repro.pmem.crash import CrashTester
from repro.txn.modes import PersistMode
from repro.workloads.registry import WORKLOADS

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


def make_tester(ab: str, seed: int = 0, populate: int = 60, **kwargs) -> CrashTester:
    workload = make_workload(ab, mode=PersistMode.LOG_P_SF, seed=seed)
    workload.populate(populate)
    key_iter = iter(range(10_000))

    def run_op():
        workload.operation((next(key_iter) * 37) % workload._key_space)

    return CrashTester(
        workload.bench.domain,
        run_op,
        workload.recover,
        workload.check_invariants,
        seed=seed,
        **kwargs,
    )


@pytest.mark.parametrize("ab", WORKLOADS)
class TestCrashSweepAllWorkloads:
    def test_all_crash_points_recover_consistently(self, ab):
        tester = make_tester(ab, seed=11)
        outcomes = tester.sweep(max_points=24)
        bad = [o for o in outcomes if not o.invariants_ok]
        assert not bad, f"{ab}: inconsistent after crash: {bad[:3]}"

    def test_early_crash_point(self, ab):
        tester = make_tester(ab, seed=3)
        outcomes = tester.sweep(points=[0, 1, 2])
        assert all(o.invariants_ok for o in outcomes)

    def test_without_adversarial_evictions(self, ab):
        tester = make_tester(ab, seed=7, adversarial_evictions=False)
        outcomes = tester.sweep(max_points=12)
        assert all(o.invariants_ok for o in outcomes)


@pytest.mark.parametrize("ab", WORKLOADS)
class TestRepeatedCrashes:
    def test_consecutive_operations_with_crashes(self, ab):
        """Crash the 1st op, recover, crash the 2nd, and so on — recovery
        must compose."""
        tester = make_tester(ab, seed=23)
        for point in (1, 3, 5, 7):
            outcome = tester._inject(point)
            assert outcome.invariants_ok, f"{ab}@{point}: {outcome.detail}"


class TestNegativeControl:
    """LOG_P (no fences) is not failure safe — a completed linked-list
    insert is lost on crash because nothing forced the WPQ drain."""

    def test_log_p_completed_op_lost_on_crash(self):
        ll = make_workload("LL", mode=PersistMode.LOG_P, seed=1)
        ll.populate(10)
        before = {k for k, _ in ll.items()}
        ll.operation(9999 % ll._key_space)
        ll.bench.domain.crash()
        ll.recover()
        after = {k for k, _ in ll.items()}
        assert after == before  # the new key is gone

    def test_log_p_sf_completed_op_survives_crash(self):
        ll = make_workload("LL", mode=PersistMode.LOG_P_SF, seed=1)
        ll.populate(10)
        key = 1999 % ll._key_space
        result = ll.operation(key)
        assert result.inserted
        ll.bench.domain.crash()
        ll.recover()
        assert key in {k for k, _ in ll.items()}
