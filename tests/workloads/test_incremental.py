"""Incremental-logging AVL variant (repro.workloads.incremental)."""

import sys

from repro.pmem.crash import CrashSignal
from repro.txn.modes import PersistMode
from repro.workloads.base import Workbench
from repro.workloads.incremental import AVLTreeIncremental, persist_cost_summary
from repro.workloads.avltree import AVLTreeWorkload

sys.path.insert(0, "tests")


def make_incremental(seed=1, key_space=128):
    bench = Workbench(
        mode=PersistMode.LOG_P_SF,
        heap_size=1 << 22,
        record=True,
        track_persistence=True,
        seed=seed,
    )
    return AVLTreeIncremental(bench, key_space=key_space)


class TestFunctionalEquivalence:
    def test_inserts_produce_valid_avl(self):
        tree = make_incremental()
        for key in range(50):
            tree.operation(key)
        assert tree.check_invariants() is None

    def test_mixed_churn_matches_model(self):
        tree = make_incremental(seed=7)
        for _ in range(300):
            tree.random_operation()
        assert tree.check_invariants() is None

    def test_same_contents_as_full_logging(self):
        def run(cls):
            bench = Workbench(
                mode=PersistMode.LOG_P_SF, heap_size=1 << 22, seed=5
            )
            tree = cls(bench, key_space=128)
            for _ in range(120):
                tree.random_operation()
            return tree.items()

        assert run(AVLTreeIncremental) == run(AVLTreeWorkload)

    def test_value_overwrite(self):
        tree = make_incremental()
        tree._insert(5, 10)
        tree._insert(5, 20)
        assert dict(tree.items())[5] == 20


class TestCostStructure:
    def test_more_transactions_than_full_logging(self):
        inc = make_incremental(seed=2)
        for key in range(0, 60):
            inc.operation(key)
        bench = Workbench(mode=PersistMode.LOG_P_SF, heap_size=1 << 22, seed=2)
        full = AVLTreeWorkload(bench, key_space=128)
        for key in range(0, 60):
            full.operation(key)
        assert inc.tx.stats.transactions > full.tx.stats.transactions

    def test_fewer_entries_per_transaction(self):
        inc = make_incremental(seed=2)
        for key in range(0, 60):
            inc.operation(key)
        cost = persist_cost_summary(inc)
        assert cost["entries_logged"] / cost["transactions"] < 4

    def test_barriers_per_step(self):
        """Every incremental step carries its own 4-pcommit set."""
        tree = make_incremental()
        before_tx = tree.tx.stats.transactions
        before_pc = tree.persist.n_pcommit
        tree.operation(1)
        steps = tree.tx.stats.transactions - before_tx
        assert tree.persist.n_pcommit - before_pc == 4 * steps


class TestCrashBehaviour:
    def test_mid_sequence_crash_leaves_valid_bst(self):
        """The paper's stated weakness: a crash between incremental steps
        may leave the tree imbalanced but recovery + repair restores a
        proper AVL tree."""
        tree = make_incremental(seed=9)
        for key in range(0, 64, 2):
            tree.operation(key)
        domain = tree.bench.domain

        class _Crash:
            def __init__(self):
                self.countdown = 25

            def load(self, addr, size=8, meta=None):
                pass

            def store(self, addr, size=8, meta=None):
                self.countdown -= 1
                if self.countdown == 0:
                    raise CrashSignal()

        crasher = _Crash()
        tree.heap.attach(crasher)
        try:
            tree.operation(33)
        except CrashSignal:
            pass
        finally:
            tree.heap.detach(crasher)
        domain.crash()
        tree.recover()
        assert tree.check_bst_only() is None
        tree.model = dict(tree.items())  # resynchronise after partial op
        tree.repair()
        assert tree.check_invariants() is None

    def test_repair_is_idempotent(self):
        tree = make_incremental(seed=4)
        for key in range(40):
            tree.operation(key)
        tree.repair()
        tree.repair()
        assert tree.check_invariants() is None
