"""String Swap workload (repro.workloads.stringswap)."""

import sys

import pytest

from repro.isa.ops import Op

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestFunctional:
    def test_swap_exchanges_contents(self):
        ss = make_workload("SS")
        before_0, before_1 = ss._read(0), ss._read(1)
        ss.swap(0, 1)
        assert ss._read(0) == before_1
        assert ss._read(1) == before_0

    def test_double_swap_restores(self):
        ss = make_workload("SS")
        before = ss.strings()
        ss.swap(2, 5)
        ss.swap(2, 5)
        assert ss.strings() == before

    def test_multiset_preserved_under_random_ops(self):
        ss = make_workload("SS", seed=8)
        before = sorted(ss.strings())
        for _ in range(100):
            ss.random_operation()
        assert sorted(ss.strings()) == before

    def test_same_index_redirected(self):
        ss = make_workload("SS")
        result = ss.operation(0)  # would be swap(0, 0); redirected to (0, 1)
        assert result.swapped

    def test_needs_two_strings(self):
        with pytest.raises(ValueError):
            make_workload("SS", n_strings=1)

    def test_invariants_after_ops(self):
        ss = make_workload("SS", seed=2)
        for _ in range(60):
            ss.random_operation()
        assert ss.check_invariants() is None


class TestTraceShape:
    def test_clwb_count_matches_paper(self):
        """Paper §3.2: eight clwbs for the two logged strings (plus the
        bookkeeping block), then eight more for the swapped data."""
        ss = make_workload("SS")
        start = len(ss.bench.trace)
        ss.swap(0, 1)
        ops = [i.op for i in ss.bench.trace][start:]
        # 2 x 256B of log payload -> >= 8 blocks, 2 x 256B of data -> 8 more
        assert ops.count(Op.CLWB) >= 17
        assert ops.count(Op.PCOMMIT) == 4

    def test_swap_logs_both_strings(self):
        ss = make_workload("SS")
        ss.swap(0, 1)
        assert ss.tx.stats.bytes_logged >= 512
