"""Graph workload (repro.workloads.graph)."""

import sys

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestFunctional:
    def test_insert_edge(self):
        gh = make_workload("GH")
        result = gh.edge_operation(1, 2)
        assert result.inserted
        assert gh.edges() == {(1, 2)}

    def test_delete_edge(self):
        gh = make_workload("GH")
        gh.edge_operation(1, 2)
        result = gh.edge_operation(1, 2)
        assert result.deleted
        assert gh.edges() == set()

    def test_edges_are_directed(self):
        gh = make_workload("GH")
        gh.edge_operation(1, 2)
        gh.edge_operation(2, 1)
        assert gh.edges() == {(1, 2), (2, 1)}

    def test_degree_counter(self):
        gh = make_workload("GH")
        gh.edge_operation(3, 1)
        gh.edge_operation(3, 2)
        assert gh.degree(3) == 2
        gh.edge_operation(3, 1)
        assert gh.degree(3) == 1

    def test_delete_from_middle_of_adjacency_list(self):
        gh = make_workload("GH")
        for dst in (1, 2, 3):
            gh.edge_operation(5, dst)
        gh.edge_operation(5, 2)
        assert gh.edges() == {(5, 1), (5, 3)}

    def test_self_loop_allowed(self):
        gh = make_workload("GH")
        gh.edge_operation(4, 4)
        assert (4, 4) in gh.edges()

    def test_many_random_ops_match_model(self):
        gh = make_workload("GH", seed=3)
        for _ in range(300):
            gh.random_operation()
        assert gh.check_invariants() is None


class TestTraceShape:
    def test_operation_is_one_transaction(self):
        gh = make_workload("GH")
        before = gh.persist.n_pcommit
        gh.edge_operation(1, 2)
        assert gh.persist.n_pcommit - before == 4

    def test_few_blocks_logged_per_operation(self):
        """GH belongs to the paper's low-logging-overhead group: an edge
        insert logs just the vertex entry."""
        gh = make_workload("GH")
        gh.edge_operation(1, 2)
        assert gh.tx.stats.entries_logged <= 2
