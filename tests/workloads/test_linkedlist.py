"""Linked-List workload (repro.workloads.linkedlist)."""

import sys

from repro.isa.ops import Op
from repro.txn.modes import PersistMode

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestFunctional:
    def test_insert_then_find(self):
        ll = make_workload("LL")
        result = ll.operation(5)
        assert result.inserted
        assert dict(ll.items()) == {5: 5 ^ 0xABCD}

    def test_insert_then_delete(self):
        ll = make_workload("LL")
        ll.operation(5)
        result = ll.operation(5)
        assert result.deleted
        assert ll.items() == []

    def test_max_nodes_cap(self):
        ll = make_workload("LL", max_nodes=4)
        for key in range(4):
            ll.operation(key)
        result = ll.operation(99)
        assert not result.inserted and not result.deleted
        assert len(ll.items()) == 4

    def test_delete_middle_node(self):
        ll = make_workload("LL")
        for key in (1, 2, 3):
            ll.operation(key)
        ll.operation(2)
        assert sorted(k for k, _ in ll.items()) == [1, 3]

    def test_delete_head(self):
        ll = make_workload("LL")
        ll.operation(1)
        ll.operation(2)  # 2 is at the head (insert-at-head)
        ll.operation(2)
        assert [k for k, _ in ll.items()] == [1]

    def test_many_random_ops_match_model(self):
        ll = make_workload("LL", seed=9)
        for _ in range(300):
            ll.random_operation()
        assert ll.check_invariants() is None


class TestTraceShape:
    def test_operation_is_one_transaction(self):
        """Each LL operation = 4 pcommits / 8 sfences (paper Figure 2)."""
        ll = make_workload("LL")
        before = ll.persist.n_pcommit
        ll.operation(42)
        assert ll.persist.n_pcommit - before == 4
        assert ll.persist.n_sfence == 8

    def test_insert_traffic_includes_clwb_of_new_node(self):
        ll = make_workload("LL")
        start = len(ll.bench.trace)
        ll.operation(42)
        ops = [i.op for i in ll.bench.trace][start:]
        assert ops.count(Op.PCOMMIT) == 4
        assert Op.CLWB in ops


class TestVariants:
    def test_base_mode_emits_no_persistence(self):
        ll = make_workload("LL", mode=PersistMode.BASE)
        ll.operation(42)
        stats = ll.bench.trace.stats()
        assert stats.pmem_count == 0
        assert stats.fence_count == 0

    def test_same_seed_same_functional_result(self):
        results = []
        for mode in PersistMode:
            ll = make_workload("LL", mode=mode, seed=77)
            for _ in range(50):
                ll.random_operation()
            results.append(sorted(ll.items()))
        assert all(r == results[0] for r in results)
