"""Full-logging machinery (repro.workloads.fulllog)."""

import sys

import pytest

from repro.workloads.fulllog import FullLoggingViolation

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestGuard:
    def test_store_to_unlogged_node_raises(self):
        tree = make_workload("AT")
        tree.operation(1)
        victim = tree._root()
        tree._guarded = {tree.meta}  # simulate a transaction missing nodes
        with pytest.raises(FullLoggingViolation):
            tree._store(victim, 0, 99)
        tree._guarded = None

    def test_guard_inactive_outside_transactions(self):
        tree = make_workload("AT")
        tree.operation(1)
        # outside a guarded region _store is unchecked
        tree._store(tree._root(), 8, 123)

    def test_fresh_nodes_admitted(self):
        tree = make_workload("AT")
        tree._guarded = {tree.meta}
        node = tree._alloc_node()
        tree._guard_fresh(node)
        tree._store(node, 0, 5)  # must not raise
        tree._guarded = None


class TestDryRun:
    def test_dry_run_has_no_side_effects(self):
        tree = make_workload("AT", seed=21)
        for key in (8, 4, 12, 2, 6):
            tree.operation(key)
        image = tree.heap.snapshot()
        alloc_next = tree.alloc.high_water_mark
        tree._dry_run_writes(lambda: tree._insert_body(5, 0, set()))
        assert tree.heap.snapshot() == image
        assert tree.alloc.high_water_mark == alloc_next

    def test_dry_run_reports_written_blocks(self):
        tree = make_workload("AT")
        tree.operation(10)
        root = tree._root()
        touched = tree._dry_run_writes(lambda: tree._insert_body(5, 0, set()))
        assert root in touched

    def test_dry_run_excludes_fresh_allocations(self):
        tree = make_workload("AT")
        tree.operation(10)
        high_water = tree.alloc.high_water_mark
        touched = tree._dry_run_writes(lambda: tree._insert_body(5, 0, set()))
        assert all(block < high_water for block in touched)

    def test_mutation_log_set_union(self):
        tree = make_workload("AT")
        for key in (8, 4, 12):
            tree.operation(key)
        static = tree._search_path(6, for_delete=False)
        log_set = tree._mutation_log_set(
            static, lambda: tree._insert_body(6, 0, set())
        )
        # every statically predicted node is kept, meta excluded
        for node in static:
            assert node in log_set
        assert tree.meta not in log_set

    def test_dry_run_matches_real_write_set(self):
        """The blocks the real mutation dirties (existing storage only)
        must be a subset of what the dry run predicted."""
        tree = make_workload("RT", seed=31)
        for _ in range(80):
            tree.random_operation()
        key = 7
        body = (lambda: tree._delete_body(key)) if tree._search(key) else (
            lambda: tree._insert_body(key, 1, set())
        )
        predicted = tree._dry_run_writes(body)
        high_water = tree.alloc.high_water_mark
        tree.operation(key)
        real = {b for b in tree._dirty_blocks_of_last_op if b < high_water} \
            if hasattr(tree, "_dirty_blocks_of_last_op") else None
        # The operation completing without FullLoggingViolation *is* the
        # subset assertion (the guard enforces it store by store).
        assert predicted is not None
