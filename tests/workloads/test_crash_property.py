"""Property-based crash testing: random histories, random crash points.

Hypothesis drives a random operation sequence against a workload, crashes
at a random store within a randomly chosen operation, recovers, and checks
the structure.  This complements the deterministic sweeps in
test_crash_consistency.py with shrinkable counterexamples: if the WAL
protocol has a hole, hypothesis will find and minimise the history that
exposes it.
"""

import sys

from hypothesis import given, settings, strategies as st

from repro.pmem.crash import CrashSignal
from repro.txn.modes import PersistMode

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class _CrashAtStore:
    def __init__(self, countdown):
        self.countdown = countdown

    def load(self, addr, size=8, meta=None):
        pass

    def store(self, addr, size=8, meta=None):
        self.countdown -= 1
        if self.countdown == 0:
            raise CrashSignal()


def _run_history(ab, keys, crash_op_index, crash_store, seed):
    """Apply *keys* as operations, crashing inside operation
    *crash_op_index* at its *crash_store*-th store; recover and verify."""
    workload = make_workload(ab, mode=PersistMode.LOG_P_SF, seed=seed)
    workload.populate(20)
    domain = workload.bench.domain
    crashed = False
    for index, key in enumerate(keys):
        key %= workload._key_space
        if index == crash_op_index:
            crasher = _CrashAtStore(crash_store)
            workload.heap.attach(crasher)
            try:
                workload.operation(key)
            except CrashSignal:
                crashed = True
            finally:
                workload.heap.detach(crasher)
            domain.crash()
            workload.recover()
            break
        workload.operation(key)
    error = workload.check_invariants()
    return crashed, error


@given(
    keys=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=8),
    crash_op=st.integers(min_value=0, max_value=7),
    crash_store=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_linkedlist_random_crash_histories(keys, crash_op, crash_store, seed):
    crashed, error = _run_history(
        "LL", keys, crash_op % len(keys), crash_store, seed
    )
    assert error is None, f"crashed={crashed}: {error}"


@given(
    keys=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=8),
    crash_op=st.integers(min_value=0, max_value=7),
    crash_store=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_hashmap_random_crash_histories(keys, crash_op, crash_store, seed):
    crashed, error = _run_history(
        "HM", keys, crash_op % len(keys), crash_store, seed
    )
    assert error is None, f"crashed={crashed}: {error}"


@given(
    keys=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=6),
    crash_op=st.integers(min_value=0, max_value=5),
    crash_store=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_rbtree_random_crash_histories(keys, crash_op, crash_store, seed):
    crashed, error = _run_history(
        "RT", keys, crash_op % len(keys), crash_store, seed
    )
    assert error is None, f"crashed={crashed}: {error}"
