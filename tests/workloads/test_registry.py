"""Benchmark registry (repro.workloads.registry)."""

import pytest

from repro.txn.modes import PersistMode
from repro.workloads.registry import PAPER_SPECS, WORKLOADS, build_workload


class TestTable1Fidelity:
    def test_seven_benchmarks_in_paper_order(self):
        assert WORKLOADS == ("GH", "HM", "LL", "SS", "AT", "BT", "RT")

    def test_paper_counts(self):
        expected = {
            "GH": (2_600_000, 100_000),
            "HM": (1_500_000, 100_000),
            "LL": (500, 50_000),
            "SS": (120_000, 500_000),
            "AT": (1_000_000, 50_000),
            "BT": (1_000_000, 50_000),
            "RT": (1_500_000, 50_000),
        }
        for ab, (init, sim) in expected.items():
            assert PAPER_SPECS[ab].paper_init_ops == init, ab
            assert PAPER_SPECS[ab].paper_sim_ops == sim, ab

    def test_scaled_counts_positive(self):
        for ab in WORKLOADS:
            spec = PAPER_SPECS[ab]
            assert spec.scaled_sim_ops > 0
            assert spec.scaled_init_ops >= 0

    def test_abbrev_consistency(self):
        for ab, spec in PAPER_SPECS.items():
            assert spec.abbrev == ab


class TestBuildWorkload:
    def test_builds_each_benchmark(self):
        for ab in WORKLOADS:
            workload = build_workload(ab)
            assert workload.abbrev in (ab, workload.abbrev)
            assert workload.bench.mode is PersistMode.LOG_P_SF

    def test_mode_threading(self):
        workload = build_workload("LL", PersistMode.LOG)
        assert workload.bench.mode is PersistMode.LOG

    def test_observers_off_by_default(self):
        workload = build_workload("LL")
        assert workload.bench.recorder is None
        assert workload.bench.domain is None

    def test_observers_on_request(self):
        workload = build_workload("LL", record=True, track_persistence=True)
        assert workload.bench.recorder is not None
        assert workload.bench.domain is not None

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_workload("ZZ")

    def test_factory_kwargs_override(self):
        spec = PAPER_SPECS["LL"]
        from repro.workloads.base import Workbench

        workload = spec.factory(Workbench(heap_size=1 << 22), max_nodes=16)
        assert workload.max_nodes == 16
