"""Hash-Map workload (repro.workloads.hashmap)."""

import sys

import pytest

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestFunctional:
    def test_insert_and_lookup(self):
        hm = make_workload("HM")
        hm.operation(10)
        assert hm.items() == {10: 10 ^ 0x5555}

    def test_delete(self):
        hm = make_workload("HM")
        hm.operation(10)
        result = hm.operation(10)
        assert result.deleted
        assert hm.items() == {}

    def test_tombstone_preserves_probe_chain(self):
        hm = make_workload("HM", initial_capacity=8)
        # Force a collision chain, then delete the middle entry.
        keys = [0, 8, 16]  # hash to related slots in a tiny table
        for key in keys:
            hm.operation(key % hm._key_space)
        present = set(hm.items())
        victim = sorted(present)[1]
        hm.operation(victim)
        for key in present - {victim}:
            assert key in hm.items()

    def test_count_tracks_live_records(self):
        hm = make_workload("HM")
        hm.operation(1)
        hm.operation(2)
        hm.operation(1)  # delete
        with hm.bench.untimed():
            assert hm._count() == 1

    def test_many_random_ops_match_model(self):
        hm = make_workload("HM", seed=5)
        for _ in range(300):
            hm.random_operation()
        assert hm.check_invariants() is None


class TestResize:
    def test_resize_triggered_by_load_factor(self):
        hm = make_workload("HM", initial_capacity=8)
        hm._key_space = 1 << 30  # unique keys so the table only grows
        for key in range(7):
            hm.operation(key * 1013 + 1)
        assert hm.resizes >= 1
        with hm.bench.untimed():
            assert hm._capacity() >= 16

    def test_resize_preserves_contents(self):
        hm = make_workload("HM", initial_capacity=8)
        hm._key_space = 1 << 30
        keys = [k * 769 + 3 for k in range(12)]
        for key in keys:
            hm.operation(key)
        assert hm.check_invariants() is None
        assert set(hm.items()) == set(keys)

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            make_workload("HM", initial_capacity=100)


class TestTraceShape:
    def test_operation_is_one_transaction(self):
        hm = make_workload("HM")
        before = hm.persist.n_pcommit
        hm.operation(42)
        assert hm.persist.n_pcommit - before == 4
