"""Hash-map probing edge cases (repro.workloads.hashmap)."""

import sys

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestProbeWraparound:
    def test_chain_wraps_past_table_end(self):
        """Force a probe chain across the table boundary by filling the
        last slots, then verify lookups still find everything."""
        hm = make_workload("HM", initial_capacity=8)
        hm._key_space = 1 << 30

        # find keys hashing to the last slot (index 7 of 8)
        tail_keys = [k for k in range(1, 4000) if (hm._hash(k) & 7) == 7][:3]
        assert len(tail_keys) == 3
        for key in tail_keys:
            hm.operation(key)
        found = hm.items()
        for key in tail_keys:
            assert key in found
        assert hm.check_invariants() is None

    def test_delete_in_wrapped_chain(self):
        hm = make_workload("HM", initial_capacity=8)
        hm._key_space = 1 << 30
        tail_keys = [k for k in range(1, 4000) if (hm._hash(k) & 7) == 7][:3]
        for key in tail_keys:
            hm.operation(key)
        hm.operation(tail_keys[0])  # delete the chain head
        found = hm.items()
        assert tail_keys[0] not in found
        assert tail_keys[1] in found and tail_keys[2] in found

    def test_reinsert_reuses_tombstone(self):
        hm = make_workload("HM", initial_capacity=8)
        hm._key_space = 1 << 30
        hm.operation(11)
        hm.operation(11)   # delete -> tombstone
        hm.operation(11)   # reinsert
        assert 11 in hm.items()
        assert hm.check_invariants() is None

    def test_tombstone_churn_does_not_grow_table(self):
        hm = make_workload("HM", initial_capacity=16)
        hm._key_space = 1 << 30
        for _ in range(30):
            hm.operation(7)  # insert/delete the same key repeatedly
        with hm.bench.untimed():
            capacity = hm._capacity()
        # one slot of churn must not force resizes
        assert capacity == 16 or hm.resizes <= 1
