"""Extra persistent structures (repro.workloads.extra)."""

import pytest

from repro.pmem.crash import CrashTester
from repro.txn.modes import PersistMode
from repro.workloads.base import Workbench
from repro.workloads.extra import PersistentQueue, PersistentStack


def make_bench(seed=1):
    return Workbench(
        mode=PersistMode.LOG_P_SF,
        heap_size=1 << 22,
        record=True,
        track_persistence=True,
        seed=seed,
    )


class TestQueueFunctional:
    def test_fifo_order(self):
        queue = PersistentQueue(make_bench())
        for value in (1, 2, 3):
            queue.enqueue(value)
        assert queue.dequeue() == 1
        assert queue.dequeue() == 2
        assert queue.contents() == [3]

    def test_dequeue_empty(self):
        queue = PersistentQueue(make_bench())
        assert queue.dequeue() is None

    def test_drain_and_refill(self):
        queue = PersistentQueue(make_bench())
        queue.enqueue(5)
        queue.dequeue()
        queue.enqueue(6)
        assert queue.contents() == [6]
        assert queue.check_invariants() is None

    def test_length(self):
        queue = PersistentQueue(make_bench())
        for value in range(7):
            queue.enqueue(value)
        assert len(queue) == 7

    def test_random_churn(self):
        queue = PersistentQueue(make_bench(seed=3))
        for _ in range(300):
            queue.random_operation()
        assert queue.check_invariants() is None

    def test_one_transaction_per_op(self):
        queue = PersistentQueue(make_bench())
        before = queue.persist.n_pcommit
        queue.enqueue(1)
        assert queue.persist.n_pcommit - before == 4


class TestStackFunctional:
    def test_lifo_order(self):
        stack = PersistentStack(make_bench())
        for value in (1, 2, 3):
            stack.push(value)
        assert stack.pop() == 3
        assert stack.pop() == 2
        assert stack.contents() == [1]

    def test_pop_empty(self):
        stack = PersistentStack(make_bench())
        assert stack.pop() is None

    def test_random_churn(self):
        stack = PersistentStack(make_bench(seed=5))
        for _ in range(300):
            stack.random_operation()
        assert stack.check_invariants() is None

    def test_depth_counter(self):
        stack = PersistentStack(make_bench())
        stack.push(1)
        stack.push(2)
        stack.pop()
        assert stack.check_invariants() is None


@pytest.mark.parametrize("cls", [PersistentQueue, PersistentStack])
class TestCrashConsistency:
    def test_crash_sweep(self, cls):
        bench = make_bench(seed=11)
        structure = cls(bench)
        structure.populate(40)
        keys = iter(range(100000))
        tester = CrashTester(
            bench.domain,
            lambda: structure.operation(next(keys)),
            structure.recover,
            structure.check_invariants,
            seed=7,
        )
        tester.sweep(max_points=20)
        assert tester.all_consistent

    def test_completed_op_survives_crash(self, cls):
        bench = make_bench(seed=13)
        structure = cls(bench)
        structure.populate(10)
        before = len(structure.model)
        structure.operation(1000)  # even key -> always an insert
        bench.domain.crash()
        structure.recover()
        assert structure.check_invariants() is None
        assert len(structure.model) == before + 1
