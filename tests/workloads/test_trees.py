"""Tree workloads: AVL, 2-3 B-tree, LLRB (repro.workloads.{avltree,btree,rbtree}).

The three trees share the full-logging mixin, so the structural tests run
parametrised over all of them; tree-specific invariants live below.
"""

import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.txn.modes import PersistMode
from repro.workloads.avltree import AVLTreeWorkload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.rbtree import RBTreeWorkload, RED

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402

TREES = ["AT", "BT", "RT"]


@pytest.mark.parametrize("ab", TREES)
class TestCommonBehaviour:
    def test_insert_and_items(self, ab):
        tree = make_workload(ab)
        tree.operation(10)
        tree.operation(20)
        tree.operation(5)
        assert [k for k, _ in tree.items()] == [5, 10, 20]

    def test_delete(self, ab):
        tree = make_workload(ab)
        for key in (10, 20, 5):
            tree.operation(key)
        tree.operation(10)  # present -> delete
        assert [k for k, _ in tree.items()] == [5, 20]
        assert tree.check_invariants() is None

    def test_delete_until_empty(self, ab):
        tree = make_workload(ab)
        keys = [3, 1, 4, 1, 5, 9, 2, 6]
        for key in keys:
            tree.operation(key)
        for key in sorted(set(tree.model)):
            tree.operation(key)
        assert tree.items() == []
        assert tree.check_invariants() is None

    def test_ascending_insertions_stay_balanced(self, ab):
        tree = make_workload(ab)
        for key in range(40):
            tree.operation(key)
        assert tree.check_invariants() is None

    def test_descending_insertions_stay_balanced(self, ab):
        tree = make_workload(ab)
        for key in reversed(range(40)):
            tree.operation(key)
        assert tree.check_invariants() is None

    def test_random_churn_matches_model(self, ab):
        tree = make_workload(ab, seed=13)
        for _ in range(400):
            tree.random_operation()
        assert tree.check_invariants() is None

    def test_one_transaction_per_operation(self, ab):
        """Full logging: exactly 4 pcommits per op, rebalancing or not
        (paper §3.2)."""
        tree = make_workload(ab, seed=1)
        for _ in range(30):
            before = tree.persist.n_pcommit
            tree.random_operation()
            assert tree.persist.n_pcommit - before == 4

    def test_full_logging_never_violated(self, ab):
        """The guarded-store check would raise if any rotation touched an
        unlogged node; 500 churn ops across shapes must stay silent."""
        tree = make_workload(ab, seed=99)
        for _ in range(500):
            tree.random_operation()

    def test_log_volume_grows_with_depth(self, ab):
        small = make_workload(ab, seed=4)
        small.operation(1)
        shallow = small.tx.stats.bytes_logged
        big = make_workload(ab, seed=4)
        for key in range(0, 120, 2):
            big.operation(key)
        before = big.tx.stats.bytes_logged
        big.operation(63)
        deep = big.tx.stats.bytes_logged - before
        assert deep > shallow

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_random_sequences(self, ab, data):
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60)
        )
        tree = make_workload(ab)
        reference = {}
        for key in keys:
            result = tree.operation(key)
            if result.inserted:
                reference[key] = True
            else:
                reference.pop(key, None)
        assert sorted(k for k, _ in tree.items()) == sorted(reference)
        assert tree.check_invariants() is None


class TestAVLSpecific:
    def test_heights_maintained(self):
        tree = make_workload("AT")
        for key in range(31):
            tree.operation(key)
        with tree.bench.untimed():
            height = tree._check_node(tree._root())
        assert height <= 6  # AVL bound ~1.44*log2(32)

    def test_update_existing_key_overwrites_value(self):
        tree = make_workload("AT")
        tree.operation(5)
        with tree.bench.untimed():
            tree._insert(5, 999)
        assert dict(tree.items())[5] == 999


class TestBTreeSpecific:
    def test_search_api(self):
        tree = make_workload("BT")
        tree.operation(7)
        with tree.bench.untimed():
            assert tree.search(7) == 7 ^ 0x1111
            assert tree.search(8) is None

    def test_leaves_at_equal_depth(self):
        tree = make_workload("BT")
        for key in range(50):
            tree.operation(key)
        assert tree.check_invariants() is None  # includes equal-depth check

    def test_root_collapse_on_shrink(self):
        tree = make_workload("BT")
        for key in range(16):
            tree.operation(key)
        for key in range(15):
            tree.operation(key)
        assert [k for k, _ in tree.items()] == [15]


class TestRBSpecific:
    def test_root_is_black(self):
        tree = make_workload("RT")
        for key in range(20):
            tree.operation(key)
        with tree.bench.untimed():
            assert tree.heap.load_u64(tree._root() + 32) != RED

    def test_black_height_uniform(self):
        tree = make_workload("RT")
        for key in range(64):
            tree.operation(key)
        assert tree.check_invariants() is None


class TestFactoryTypes:
    def test_registry_builds_correct_types(self):
        assert isinstance(make_workload("AT"), AVLTreeWorkload)
        assert isinstance(make_workload("BT"), BTreeWorkload)
        assert isinstance(make_workload("RT"), RBTreeWorkload)

    def test_modes_produce_identical_structures(self):
        for ab in TREES:
            shapes = []
            for mode in PersistMode:
                tree = make_workload(ab, mode=mode, seed=55)
                for _ in range(60):
                    tree.random_operation()
                shapes.append(tree.items())
            assert all(s == shapes[0] for s in shapes)
