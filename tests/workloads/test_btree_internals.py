"""2-3 B-tree internals (repro.workloads.btree)."""

import sys

import pytest

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


class TestNodeEncoding:
    def test_leaf_encoding(self):
        tree = make_workload("BT")
        tree.operation(5)
        with tree.bench.untimed():
            root = tree._root()
            assert tree._is_leaf(root)
            assert tree._leaf_key(root) == 5

    def test_internal_encoding_after_second_insert(self):
        tree = make_workload("BT")
        tree.operation(5)
        tree.operation(9)
        with tree.bench.untimed():
            root = tree._root()
            assert not tree._is_leaf(root)
            assert tree._n_children(root) == 2
            assert tree._router(root, 0) == 5
            assert tree._router(root, 1) == 9

    def test_write_internal_validates_arity(self):
        tree = make_workload("BT")
        node = tree._alloc_node()
        with pytest.raises(ValueError):
            tree._write_internal(node, [(1, 2)])
        with pytest.raises(ValueError):
            tree._write_internal(node, [(1, 2)] * 4)

    def test_routers_are_subtree_minima(self):
        tree = make_workload("BT")
        for key in (10, 20, 30, 5, 25, 15, 35):
            tree.operation(key)
        with tree.bench.untimed():
            root = tree._root()
            for i in range(tree._n_children(root)):
                child = tree._child(root, i)
                assert tree._router(root, i) == tree._min_key(child)


class TestDescent:
    def test_descend_picks_floor_child(self):
        tree = make_workload("BT")
        for key in (10, 20, 30, 40):
            tree.operation(key)
        with tree.bench.untimed():
            root = tree._root()
            # a key below every router descends into child 0
            assert tree._descend_child(root, 1) == tree._child(root, 0)
            # a huge key descends into the last child
            last = tree._n_children(root) - 1
            assert tree._descend_child(root, 999) == tree._child(root, last)

    def test_search_absent_key_between_leaves(self):
        tree = make_workload("BT")
        for key in (10, 30):
            tree.operation(key)
        with tree.bench.untimed():
            assert tree.search(20) is None
            assert tree.search(10) is not None


class TestStructuralTransitions:
    def test_root_split_increases_depth(self):
        tree = make_workload("BT")

        def depth():
            with tree.bench.untimed():
                node, levels = tree._root(), 1
                while not tree._is_leaf(node):
                    node = tree._child(node, 0)
                    levels += 1
                return levels

        tree.operation(1)
        tree.operation(2)
        shallow = depth()
        for key in range(3, 12):
            tree.operation(key)
        assert depth() > shallow
        assert tree.check_invariants() is None

    def test_merge_reduces_depth(self):
        tree = make_workload("BT")
        for key in range(12):
            tree.operation(key)
        deep_before = True
        for key in range(11):
            tree.operation(key)  # delete back down to one record
        with tree.bench.untimed():
            assert tree._is_leaf(tree._root())
        assert tree.check_invariants() is None
        del deep_before

    def test_alternating_churn_at_boundary(self):
        tree = make_workload("BT")
        for key in range(8):
            tree.operation(key)
        for _ in range(40):  # repeatedly split/merge the same boundary
            tree.operation(8)
        assert tree.check_invariants() is None
