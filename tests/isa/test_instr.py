"""Instr micro-op records (repro.isa.instr)."""

import pytest

from repro.isa.instr import Instr
from repro.isa.ops import Op


class TestConstruction:
    def test_defaults(self):
        instr = Instr(Op.ALU)
        assert instr.op is Op.ALU
        assert instr.addr == 0
        assert instr.size == 8
        assert instr.meta is None

    def test_memory_op_keeps_address(self):
        instr = Instr(Op.LOAD, 0x1234)
        assert instr.addr == 0x1234

    def test_negative_address_rejected_for_memory_ops(self):
        with pytest.raises(ValueError):
            Instr(Op.STORE, -8)

    def test_meta_annotation(self):
        instr = Instr(Op.STORE, 0x40, meta="log")
        assert instr.meta == "log"


class TestBlockComputation:
    def test_aligned_address(self):
        assert Instr(Op.LOAD, 0x1000).block() == 0x1000

    def test_unaligned_address_rounds_down(self):
        assert Instr(Op.LOAD, 0x1038).block() == 0x1000

    def test_custom_block_size(self):
        assert Instr(Op.LOAD, 0x1038).block(block_size=16) == 0x1030


class TestMemoryPredicate:
    @pytest.mark.parametrize("op", [Op.LOAD, Op.STORE, Op.CLWB, Op.CLFLUSHOPT])
    def test_memory_ops(self, op):
        assert Instr(op, 0x40).is_memory()

    @pytest.mark.parametrize("op", [Op.ALU, Op.BRANCH, Op.SFENCE, Op.PCOMMIT])
    def test_non_memory_ops(self, op):
        assert not Instr(op).is_memory()


class TestEquality:
    def test_equal_instrs(self):
        assert Instr(Op.LOAD, 0x40) == Instr(Op.LOAD, 0x40)

    def test_meta_does_not_affect_equality(self):
        assert Instr(Op.LOAD, 0x40, meta="a") == Instr(Op.LOAD, 0x40, meta="b")

    def test_different_addresses(self):
        assert Instr(Op.LOAD, 0x40) != Instr(Op.LOAD, 0x80)

    def test_hashable(self):
        assert len({Instr(Op.LOAD, 0x40), Instr(Op.LOAD, 0x40)}) == 1
