"""Trace serialisation round trips (repro.isa.serialize)."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.serialize import TraceFormatError, dump_trace, load_trace
from repro.isa.trace import Trace


def sample_trace() -> Trace:
    return Trace(
        [
            Instr(Op.ALU),
            Instr(Op.LOAD, 0x1000),
            Instr(Op.STORE, 0x2040, meta="log"),
            Instr(Op.CLWB, 0x2040, 64, meta="log"),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
            Instr(Op.ALU, meta="op-boundary"),
        ]
    )


class TestRoundTrip:
    def test_in_memory(self):
        buffer = io.BytesIO()
        original = sample_trace()
        dump_trace(original, buffer)
        buffer.seek(0)
        restored = load_trace(buffer)
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b
            assert a.meta == b.meta

    def test_via_path(self, tmp_path):
        path = tmp_path / "trace.bin"
        dump_trace(sample_trace(), path)
        restored = load_trace(path)
        assert len(restored) == 8

    def test_empty_trace(self):
        buffer = io.BytesIO()
        dump_trace(Trace(), buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 0

    def test_simulation_equivalence(self, tmp_path):
        """A reloaded trace simulates to identical statistics."""
        from repro.uarch import MachineConfig, simulate

        original = sample_trace()
        path = tmp_path / "trace.bin"
        dump_trace(original, path)
        restored = load_trace(path)
        a = simulate(original, MachineConfig())
        b = simulate(restored, MachineConfig())
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from([Op.ALU, Op.LOAD, Op.STORE, Op.CLWB, Op.SFENCE]),
                st.integers(min_value=0, max_value=(1 << 48)),
                st.sampled_from([None, "log", "data", "str"]),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, ops):
        trace = Trace(
            [Instr(op, addr if op is not Op.ALU else 0, meta=meta)
             for op, addr, meta in ops]
        )
        buffer = io.BytesIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        restored = load_trace(buffer)
        assert list(restored) == list(trace)
        assert [i.meta for i in restored] == [i.meta for i in trace]


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(b"NOTATRACE"))

    def test_truncated_body(self):
        buffer = io.BytesIO()
        dump_trace(sample_trace(), buffer)
        data = buffer.getvalue()
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(data[:-5]))


class TestWorkloadTraces:
    def test_real_workload_trace_round_trips(self, tmp_path):
        import sys

        sys.path.insert(0, "tests")
        from conftest import make_workload

        workload = make_workload("LL", seed=3)
        workload.populate(30)
        workload.run(5)
        original = workload.bench.trace
        path = tmp_path / "ll.trace"
        dump_trace(original, path)
        restored = load_trace(path)
        assert restored.stats().by_op == original.stats().by_op


class TestIntegrityFooter:
    """The RPC2 CRC-32 footer turns silent bit rot into TraceFormatError."""

    def _dumped(self) -> bytes:
        buffer = io.BytesIO()
        dump_trace(sample_trace(), buffer)
        return buffer.getvalue()

    def test_footer_present_and_checks_out(self):
        data = self._dumped()
        assert data[-8:-4] == b"RPC2"
        assert list(load_trace(io.BytesIO(data))) == list(sample_trace())

    def test_footerless_rptr2_still_loads(self):
        # files written before the footer existed end at the last column
        data = self._dumped()[:-8]
        assert list(load_trace(io.BytesIO(data))) == list(sample_trace())

    def test_flipped_body_byte_fails_the_checksum(self):
        data = bytearray(self._dumped())
        # flip one address byte: without the footer this would load as a
        # different but plausible trace
        data[-20] ^= 0xFF
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(bytes(data)))

    def test_flipped_footer_byte_is_detected(self):
        data = bytearray(self._dumped())
        data[-1] ^= 0x01
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(bytes(data)))

    def test_partial_footer_is_a_corrupt_trailer(self):
        data = self._dumped()
        with pytest.raises(TraceFormatError):
            load_trace(io.BytesIO(data[:-3]))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_single_flip_never_loads_wrong(self, data):
        blob = bytearray(self._dumped())
        index = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[index] ^= 1 << bit
        try:
            restored = load_trace(io.BytesIO(bytes(blob)))
        except TraceFormatError:
            return  # detected: the cache layer drops the entry
        # undetected flips must be semantically invisible (e.g. a flip
        # inside JSON header whitespace cannot occur: header is compact)
        assert list(restored) == list(sample_trace())
        assert [i.meta for i in restored] == [i.meta for i in sample_trace()]
