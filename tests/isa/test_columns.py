"""Columnar trace representation (repro.isa.columns).

The dual-representation contract: a trace's packed columns, its
materialised ``Instr`` rows, and its serialised bytes must all describe
the same instruction stream — instruction for instruction — across every
real workload trace, the legacy RPTR1 format, and fuzz-grammar traces.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.runner import build_trace, clear_trace_cache
from repro.isa.columns import MAX_METAS, OPS_BY_VALUE, TraceColumns
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.serialize import (
    dump_trace,
    dump_trace_legacy,
    load_trace,
)
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.validate.tracefuzz import generate_trace
from repro.workloads.registry import WORKLOADS

SMALL = dict(init_ops=100, sim_ops=6)


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    clear_trace_cache()
    yield
    clear_trace_cache()


def assert_same_stream(a: Trace, b: Trace) -> None:
    """Instruction-for-instruction equality, including metadata."""
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.op is right.op
        assert left.addr == right.addr
        assert left.size == right.size
        assert left.meta == right.meta


class TestColumnsBasics:
    def test_ops_by_value_covers_the_enum(self):
        assert len(OPS_BY_VALUE) == len(Op)
        for op in Op:
            assert OPS_BY_VALUE[int(op)] is op

    def test_round_trip_instrs(self):
        instrs = [
            Instr(Op.ALU),
            Instr(Op.LOAD, 0x1040, 8),
            Instr(Op.STORE, 0x2040, 8, meta="log"),
            Instr(Op.CLWB, 0x2040, 64, meta="log"),
            Instr(Op.SFENCE),
        ]
        columns = TraceColumns.from_instrs(instrs)
        assert len(columns) == len(instrs)
        assert columns.instrs() == instrs
        assert [columns.instr(i) for i in range(len(instrs))] == instrs

    def test_meta_interning(self):
        instrs = [Instr(Op.STORE, 64 * i, meta="log") for i in range(10)]
        columns = TraceColumns.from_instrs(instrs)
        assert columns.metas == [None, "log"]
        assert set(columns.meta_idx) == {1}

    def test_equality(self):
        instrs = [Instr(Op.LOAD, 0x40), Instr(Op.ALU)]
        assert TraceColumns.from_instrs(instrs) == TraceColumns.from_instrs(
            instrs
        )
        assert TraceColumns.from_instrs(instrs) != TraceColumns.from_instrs(
            instrs[:1]
        )

    def test_mutation_invalidates_memo(self):
        trace = Trace([Instr(Op.ALU)])
        first = trace.columns()
        trace.append(Instr(Op.LOAD, 0x80))
        second = trace.columns()
        assert second is not first
        assert len(second) == 2
        assert second.instr(1).op is Op.LOAD


@pytest.mark.parametrize("abbrev", WORKLOADS)
@pytest.mark.parametrize("mode", [PersistMode.BASE, PersistMode.LOG_P_SF])
class TestWorkloadRoundTrip:
    """Trace <-> columns <-> bytes on every real workload trace."""

    def test_columns_match_rows(self, abbrev, mode):
        trace = build_trace(abbrev, mode, **SMALL)
        columns = trace.columns()
        rebuilt = Trace.from_columns(columns)
        assert_same_stream(trace, rebuilt)

    def test_serialised_matches_legacy_format(self, abbrev, mode):
        """RPTR2 and RPTR1 must load the identical instruction stream."""
        trace = build_trace(abbrev, mode, **SMALL)
        new = io.BytesIO()
        old = io.BytesIO()
        dump_trace(trace, new)
        dump_trace_legacy(trace, old)
        new.seek(0)
        old.seek(0)
        from_new = load_trace(new)
        from_old = load_trace(old)
        assert_same_stream(from_new, from_old)
        assert_same_stream(trace, from_new)

    def test_segments_cover_the_stream(self, abbrev, mode):
        """Segment runs + events + barrier triples partition the trace."""
        from repro.isa.analysis import K_BARRIER, K_TAIL

        trace = build_trace(abbrev, mode, **SMALL)
        segments = trace.segments()
        covered = 0
        for run, kind, _block, _mi, _idx in segments.entries:
            covered += run
            if kind == K_BARRIER:
                covered += 3
            elif kind != K_TAIL:
                covered += 1
        assert covered == len(trace) == segments.n


class TestFuzzGrammarRoundTrip:
    """Property tests over tracefuzz-grammar traces."""

    @pytest.mark.parametrize("seed", range(12))
    def test_grammar_trace_round_trips(self, seed):
        trace = generate_trace(seed, length=200)
        buffer = io.BytesIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert_same_stream(trace, load_trace(buffer))

    @pytest.mark.parametrize("seed", range(6))
    def test_grammar_trace_legacy_equivalence(self, seed):
        trace = generate_trace(seed, length=150)
        new, old = io.BytesIO(), io.BytesIO()
        dump_trace(trace, new)
        dump_trace_legacy(trace, old)
        new.seek(0)
        old.seek(0)
        assert_same_stream(load_trace(new), load_trace(old))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(Op)),
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=255),
                st.sampled_from([None, "log", "data", "op-boundary"]),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_instrs_round_trip(self, rows):
        instrs = [Instr(op, addr, size, meta) for op, addr, size, meta in rows]
        trace = Trace(instrs)
        columns = trace.columns()
        assert columns.instrs() == instrs
        buffer = io.BytesIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert_same_stream(trace, load_trace(buffer))

    def test_meta_table_limit_enforced(self):
        instrs = [
            Instr(Op.STORE, 64 * i, meta=f"m{i}") for i in range(MAX_METAS + 1)
        ]
        with pytest.raises(ValueError):
            TraceColumns.from_instrs(instrs)
