"""Trace container and static statistics (repro.isa.trace)."""

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace


def _sample_trace() -> Trace:
    return Trace(
        [
            Instr(Op.ALU),
            Instr(Op.LOAD, 0x40),
            Instr(Op.STORE, 0x80),
            Instr(Op.CLWB, 0x80),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
        ]
    )


class TestContainer:
    def test_len_and_iteration(self):
        trace = _sample_trace()
        assert len(trace) == 7
        assert [i.op for i in trace][:2] == [Op.ALU, Op.LOAD]

    def test_indexing(self):
        trace = _sample_trace()
        assert trace[1].op is Op.LOAD

    def test_append_and_extend(self):
        trace = Trace()
        trace.append(Instr(Op.ALU))
        trace.extend([Instr(Op.LOAD, 0x40), Instr(Op.BRANCH)])
        assert len(trace) == 3

    def test_reiterable(self):
        trace = _sample_trace()
        assert len(list(trace)) == len(list(trace))


class TestStats:
    def test_totals(self):
        stats = _sample_trace().stats()
        assert stats.total == 7
        assert stats.by_op[Op.SFENCE] == 2

    def test_pmem_count(self):
        stats = _sample_trace().stats()
        assert stats.pmem_count == 2  # clwb + pcommit

    def test_fence_count(self):
        assert _sample_trace().stats().fence_count == 2

    def test_memory_count(self):
        assert _sample_trace().stats().memory_count == 2  # load + store

    def test_count_helper(self):
        stats = _sample_trace().stats()
        assert stats.count(Op.ALU, Op.LOAD) == 2
        assert stats.count(Op.XCHG) == 0


class TestMarkerSlicing:
    def test_split_on_markers(self):
        trace = Trace(
            [
                Instr(Op.ALU, meta="op"),
                Instr(Op.LOAD, 0x40),
                Instr(Op.ALU, meta="op"),
                Instr(Op.STORE, 0x80),
                Instr(Op.STORE, 0xC0),
            ]
        )
        pieces = trace.slice_between_markers("op")
        assert len(pieces) == 3
        assert len(pieces[0]) == 0
        assert len(pieces[1]) == 1
        assert len(pieces[2]) == 2

    def test_no_markers_yields_whole_trace(self):
        trace = _sample_trace()
        pieces = trace.slice_between_markers("missing")
        assert len(pieces) == 1
        assert len(pieces[0]) == len(trace)
