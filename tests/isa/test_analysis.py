"""Trace characterisation helpers (repro.isa.analysis)."""

import sys

import pytest

from repro.isa import analysis
from repro.isa.analysis import barrier_distances, characterise, persist_clusters
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace

sys.path.insert(0, "tests")
from conftest import make_workload  # noqa: E402


def barrier():
    return [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]


def wal_like_trace():
    instrs = []
    for step in range(4):
        instrs += [Instr(Op.ALU)] * 30
        instrs += [Instr(Op.CLWB, 0x1000 + i * 64) for i in range(3)]
        instrs += barrier()
    return Trace(instrs)


class TestClusters:
    def test_wal_steps_form_four_clusters(self):
        clusters = persist_clusters(wal_like_trace())
        assert len(clusters) == 4
        for cluster in clusters:
            assert cluster.persist_ops == 4  # 3 clwb + 1 pcommit
            assert cluster.fences == 2
            assert cluster.pcommits == 1

    def test_gap_merges_nearby_clusters(self):
        clusters = persist_clusters(wal_like_trace(), gap=100)
        assert len(clusters) == 1

    def test_isolated_ops_are_singleton_clusters(self):
        trace = Trace(
            [Instr(Op.CLWB, 0x40)] + [Instr(Op.ALU)] * 50 + [Instr(Op.CLWB, 0x80)]
        )
        clusters = persist_clusters(trace)
        assert len(clusters) == 2
        assert all(c.span == 1 for c in clusters)

    def test_empty_trace(self):
        assert persist_clusters(Trace()) == []

    def test_cluster_span(self):
        clusters = persist_clusters(wal_like_trace())
        assert all(c.span == 6 for c in clusters)  # 3 clwb + sfence,pcommit,sfence


class TestBarrierDistances:
    def test_distances_between_pcommits(self):
        distances = barrier_distances(wal_like_trace())
        assert len(distances) == 3
        assert all(d == 36 for d in distances)  # 30 ALU + 3 clwb + 3 barrier ops

    def test_no_pcommits(self):
        assert barrier_distances(Trace([Instr(Op.ALU)] * 10)) == []


class TestCharacterise:
    def test_summary_counts(self):
        summary = characterise(wal_like_trace())
        assert summary.clusters == 4
        assert summary.pcommits == 4
        assert summary.fences == 8
        assert summary.persist_ops == 16

    def test_clustered_fraction_high_for_wal(self):
        summary = characterise(wal_like_trace())
        assert summary.clustered_fraction == 1.0

    def test_sparse_trace_low_clustering(self):
        instrs = []
        for i in range(6):
            instrs += [Instr(Op.ALU)] * 40 + [Instr(Op.CLWB, 0x40 * i)]
        summary = characterise(Trace(instrs))
        assert summary.clustered_fraction == 0.0

    def test_real_workload_is_clustered(self):
        """The paper's observation holds on our actual benchmarks: most
        persistency/fence instructions sit in multi-instruction clusters."""
        workload = make_workload("LL", seed=5)
        workload.populate(40)
        workload.run(10)
        summary = characterise(workload.bench.trace)
        assert summary.clusters >= 10
        assert summary.clustered_fraction > 0.9
        assert summary.mean_cluster_size >= 3


class TestSegmentationVectorizedVsScalar:
    """segment_trace has two implementations — the numpy one and the
    pure-Python fallback used when numpy is absent.  They must produce
    identical segmentations, entry for entry, including the batch
    metadata the kernel consumes, on every barrier-recognition edge."""

    CASES = {
        "empty": [],
        "compute_only": [Instr(Op.ALU)] * 7,
        "lone_sfence": [Instr(Op.ALU), Instr(Op.SFENCE)],
        "incomplete_barrier": [Instr(Op.SFENCE), Instr(Op.PCOMMIT)],
        "barrier_at_end": [Instr(Op.ALU)] * 3 + barrier(),
        "barrier_at_start": barrier() + [Instr(Op.ALU)] * 3,
        "overlapping_candidates": [
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
            Instr(Op.PCOMMIT),
            Instr(Op.SFENCE),
        ],
        "mixed": (
            [Instr(Op.LOAD, 0x1000, meta="read")]
            + [Instr(Op.ALU)] * 4
            + [Instr(Op.STORE, 0x1040, meta="commit")]
            + [Instr(Op.CLWB, 0x1040)]
            + barrier()
            + [Instr(Op.XCHG, 0x2000), Instr(Op.MFENCE)]
            + [Instr(Op.BRANCH)] * 2
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case(self, name, monkeypatch):
        if analysis._np is None:
            pytest.skip("numpy unavailable: only the scalar path exists")
        columns = Trace(self.CASES[name]).columns()
        vec = analysis.segment_trace(columns)
        monkeypatch.setattr(analysis, "_np", None)
        ref = analysis.segment_trace(columns)
        assert [tuple(e) for e in vec.entries] == [tuple(e) for e in ref.entries]
        assert vec.n == ref.n
        for field in ("runs", "kinds", "blocks", "metas", "batch_end"):
            assert [int(v) for v in getattr(vec, field)] == [
                int(v) for v in getattr(ref, field)
            ], field
        assert [int(v) for v in vec.cum_instrs] == [int(v) for v in ref.cum_instrs]

    def test_lazy_entries_len_without_materialisation(self):
        if analysis._np is None:
            pytest.skip("numpy unavailable")
        columns = Trace(self.CASES["mixed"]).columns()
        seg = analysis.segment_trace(columns)
        assert seg.entries._rows is None
        n_entries = len(seg.entries)
        assert seg.entries._rows is None  # len must not materialise
        assert len(list(seg.entries)) == n_entries
        assert seg.entries[0] == list(seg.entries)[0]
