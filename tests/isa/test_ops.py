"""Opcode classification (repro.isa.ops)."""

import pytest

from repro.isa.ops import (
    Op,
    FENCE_OPS,
    FLUSH_OPS,
    MEMORY_OPS,
    ORDERING_OPS,
    PMEM_OPS,
    is_fence,
    is_flush,
    is_pmem,
    is_speculation_boundary,
)


class TestFenceClassification:
    def test_sfence_is_fence(self):
        assert is_fence(Op.SFENCE)

    def test_mfence_is_fence(self):
        assert is_fence(Op.MFENCE)

    @pytest.mark.parametrize("op", [Op.ALU, Op.LOAD, Op.STORE, Op.PCOMMIT, Op.CLWB])
    def test_non_fences(self, op):
        assert not is_fence(op)


class TestFlushClassification:
    @pytest.mark.parametrize("op", [Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH])
    def test_flushes(self, op):
        assert is_flush(op)

    @pytest.mark.parametrize("op", [Op.PCOMMIT, Op.SFENCE, Op.STORE])
    def test_non_flushes(self, op):
        assert not is_flush(op)


class TestPmemClassification:
    @pytest.mark.parametrize("op", [Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH, Op.PCOMMIT])
    def test_pmem_ops(self, op):
        assert is_pmem(op)

    def test_sfence_is_not_pmem(self):
        # sfence is an ordering instruction, not a persistency instruction
        assert not is_pmem(Op.SFENCE)


class TestSpeculationBoundaries:
    """Paper §4.1: clwb/clflushopt/pcommit may be delayed to the end of an
    epoch, but fences, XCHG, LOCK-prefixed RMWs (and the legacy serialising
    clflush) may not be reordered and bound speculation."""

    @pytest.mark.parametrize(
        "op", [Op.SFENCE, Op.MFENCE, Op.XCHG, Op.LOCK_RMW, Op.CLFLUSH]
    )
    def test_boundaries(self, op):
        assert is_speculation_boundary(op)

    @pytest.mark.parametrize(
        "op", [Op.CLWB, Op.CLFLUSHOPT, Op.PCOMMIT, Op.LOAD, Op.STORE, Op.ALU]
    )
    def test_delayable(self, op):
        assert not is_speculation_boundary(op)


class TestOpSets:
    def test_sets_are_disjoint_where_expected(self):
        assert not FENCE_OPS & FLUSH_OPS
        assert FLUSH_OPS <= PMEM_OPS

    def test_memory_ops_carry_addresses(self):
        assert Op.LOAD in MEMORY_OPS
        assert Op.STORE in MEMORY_OPS
        assert Op.CLWB in MEMORY_OPS
        assert Op.PCOMMIT not in MEMORY_OPS
        assert Op.SFENCE not in MEMORY_OPS

    def test_ordering_ops_are_boundaries(self):
        for op in ORDERING_OPS:
            assert is_speculation_boundary(op)
