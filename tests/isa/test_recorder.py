"""TraceRecorder behaviour (repro.isa.recorder)."""

from repro.isa.ops import Op
from repro.isa.recorder import TraceRecorder


class TestEmission:
    def test_load_emits_alu_padding_then_load(self):
        rec = TraceRecorder(alu_per_load=2, alu_per_store=0)
        rec.load(0x40)
        ops = [i.op for i in rec.trace]
        assert ops == [Op.ALU, Op.ALU, Op.LOAD]

    def test_store_padding(self):
        rec = TraceRecorder(alu_per_load=0, alu_per_store=3)
        rec.store(0x80)
        assert [i.op for i in rec.trace] == [Op.ALU] * 3 + [Op.STORE]

    def test_persistence_instructions(self):
        rec = TraceRecorder()
        rec.clwb(0x40)
        rec.clflushopt(0x80)
        rec.clflush(0xC0)
        rec.pcommit()
        rec.sfence()
        rec.mfence()
        rec.xchg(0x100)
        ops = [i.op for i in rec.trace]
        assert ops == [
            Op.CLWB,
            Op.CLFLUSHOPT,
            Op.CLFLUSH,
            Op.PCOMMIT,
            Op.SFENCE,
            Op.MFENCE,
            Op.XCHG,
        ]

    def test_flushes_record_block_size(self):
        rec = TraceRecorder()
        rec.clwb(0x44)
        assert rec.trace[0].size == 64

    def test_compute_with_branches(self):
        rec = TraceRecorder()
        rec.compute(4, branch_every=2)
        ops = [i.op for i in rec.trace]
        assert ops == [Op.ALU, Op.ALU, Op.BRANCH, Op.ALU, Op.ALU, Op.BRANCH]

    def test_compute_zero_is_noop(self):
        rec = TraceRecorder()
        rec.compute(0)
        assert len(rec.trace) == 0

    def test_marker_is_tagged_alu(self):
        rec = TraceRecorder()
        rec.marker("boundary")
        assert rec.trace[0].op is Op.ALU
        assert rec.trace[0].meta == "boundary"


class TestFastForward:
    def test_suppresses_all_events(self):
        rec = TraceRecorder()
        with rec.fast_forward():
            rec.load(0x40)
            rec.store(0x80)
            rec.clwb(0x40)
            rec.pcommit()
            rec.sfence()
            rec.compute(10)
            rec.marker("x")
        assert len(rec.trace) == 0

    def test_reentrant(self):
        rec = TraceRecorder()
        with rec.fast_forward():
            with rec.fast_forward():
                rec.load(0x40)
            rec.load(0x40)  # still inside the outer fast-forward
        rec.load(0x40)
        assert rec.trace.stats().count(Op.LOAD) == 1

    def test_flag(self):
        rec = TraceRecorder()
        assert not rec.fast_forwarding
        with rec.fast_forward():
            assert rec.fast_forwarding
        assert not rec.fast_forwarding
