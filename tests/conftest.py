"""Shared fixtures for the test suite.

Workloads are built tiny (small structures, few operations) so the whole
suite stays fast; the benchmarks/ tree exercises the paper-scale
configurations.
"""

from __future__ import annotations

import pytest

from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workbench
from repro.workloads.registry import PAPER_SPECS


@pytest.fixture
def heap() -> NVMHeap:
    return NVMHeap(1 << 20)


@pytest.fixture
def allocator(heap: NVMHeap) -> Allocator:
    return Allocator(heap)


@pytest.fixture
def bench() -> Workbench:
    """A fully-instrumented workbench in the failure-safe mode."""
    return Workbench(
        mode=PersistMode.LOG_P_SF,
        heap_size=1 << 22,
        record=True,
        track_persistence=True,
        seed=1234,
    )


@pytest.fixture
def base_config() -> MachineConfig:
    return MachineConfig()


@pytest.fixture
def sp_config() -> MachineConfig:
    return MachineConfig().with_sp(256)


def make_workload(abbrev: str, mode=PersistMode.LOG_P_SF, seed=42, **kwargs):
    """Build a small instance of a registered workload."""
    small = {
        "GH": dict(n_vertices=16),
        "HM": dict(initial_capacity=64),
        "LL": dict(max_nodes=64),
        "SS": dict(n_strings=8),
        "AT": dict(key_space=128),
        "BT": dict(key_space=128),
        "RT": dict(key_space=128),
    }
    bench = Workbench(
        mode=mode,
        heap_size=1 << 22,
        record=True,
        track_persistence=True,
        seed=seed,
    )
    params = {**small[abbrev], **kwargs}
    return PAPER_SPECS[abbrev].factory(bench, **params)
