"""CrashTester mechanics (repro.pmem.crash)."""

from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap
from repro.pmem.crash import CrashTester
from repro.pmem.domain import PersistenceDomain
from repro.txn.manager import TxManager
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps


class _Counter:
    """A trivially-transactional workload: one durable counter."""

    def __init__(self, mode=PersistMode.LOG_P_SF):
        self.heap = NVMHeap(1 << 18)
        self.alloc = Allocator(self.heap)
        self.domain = PersistenceDomain(self.heap)
        self.heap.attach(self.domain)
        persist = PersistOps(mode, domain=self.domain)
        self.tx = TxManager(self.heap, self.alloc, persist)
        self.addr = self.alloc.alloc(64)
        self.heap.store_u64(self.addr, 0)
        self.domain.sync_base()
        self.expected = 0

    def increment(self):
        self.tx.begin()
        self.tx.log_block(self.addr)
        self.tx.seal()
        self.heap.store_u64(self.addr, self.heap.load_u64(self.addr) + 1)
        self.tx.flush(self.addr)
        self.tx.commit()
        self.expected += 1

    def check(self):
        value = self.heap.load_u64(self.addr)
        if value not in (self.expected, self.expected + 1):
            return f"counter {value} != {self.expected}"
        self.expected = value
        return None


def make_tester(mode=PersistMode.LOG_P_SF, **kwargs):
    counter = _Counter(mode)
    tester = CrashTester(
        counter.domain,
        counter.increment,
        counter.tx.recover,
        counter.check,
        **kwargs,
    )
    return counter, tester


class TestEventCounting:
    def test_count_events_positive(self):
        _, tester = make_tester()
        assert tester.count_events() > 0

    def test_count_events_restores_consistency(self):
        counter, tester = make_tester()
        tester.count_events()
        assert counter.check() is None


class TestInjection:
    def test_crash_at_point_zero(self):
        _, tester = make_tester(seed=1)
        outcomes = tester.sweep(points=[0])
        assert outcomes[0].crashed
        assert outcomes[0].invariants_ok

    def test_crash_past_end_runs_to_completion(self):
        counter, tester = make_tester(seed=1)
        total = tester.count_events()
        outcomes = tester.sweep(points=[total + 10])
        assert not outcomes[0].crashed
        assert outcomes[0].invariants_ok

    def test_full_sweep_consistent(self):
        _, tester = make_tester(seed=2)
        outcomes = tester.sweep(max_points=32)
        assert outcomes
        assert tester.all_consistent

    def test_sweep_without_evictions(self):
        _, tester = make_tester(adversarial_evictions=False, seed=3)
        tester.sweep(max_points=16)
        assert tester.all_consistent

    def test_all_consistent_false_when_empty(self):
        _, tester = make_tester()
        assert not tester.all_consistent


class TestNegativeControl:
    """Without fences (LOG_P) nothing ever becomes durable on purpose, so a
    crash at the end of a completed operation must lose the update — the
    experiment that shows sfences are *necessary*, not just slow."""

    def test_log_p_is_not_failure_safe(self):
        counter, tester = make_tester(mode=PersistMode.LOG_P, seed=4)
        total = tester.count_events()
        counter.expected = counter.heap.load_u64(counter.addr)
        before = counter.heap.load_u64(counter.addr)
        counter.increment()
        counter.domain.crash()
        counter.tx.recover()
        after = counter.heap.load_u64(counter.addr)
        assert after == before  # the committed increment evaporated
        del total
