"""PersistenceDomain state machine (repro.pmem.domain).

These tests pin down the paper's Figure-1 semantics: stores dirty the
cache, clwb+sfence moves blocks into the WPQ, pcommit drains the WPQ to
NVMM, and nothing is durable before that.
"""

import random

from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.pmem.domain import PersistenceDomain


def make_domain(size=1 << 16):
    heap = NVMHeap(size)
    domain = PersistenceDomain(heap)
    heap.attach(domain)
    return heap, domain


class TestStoreTracking:
    def test_store_marks_block_dirty(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        assert 0x100 in domain.dirty
        assert not domain.is_durable(0x100)

    def test_straddling_store_dirties_both_blocks(self):
        heap, domain = make_domain()
        heap.store_bytes(0x13C, bytes(8))
        assert {0x100, 0x140} <= domain.dirty

    def test_loads_do_not_dirty(self):
        heap, domain = make_domain()
        heap.load_u64(0x100)
        assert not domain.dirty


class TestFlushAndFence:
    def test_unfenced_clwb_gives_no_guarantee(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        assert 0x100 in domain.dirty  # still only in the cache
        assert 0x100 not in domain.wpq

    def test_fenced_clwb_enters_wpq(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        domain.sfence()
        assert 0x100 not in domain.dirty
        assert 0x100 in domain.wpq
        assert not domain.is_durable(0x100)  # WPQ is volatile (paper fn 1)

    def test_clwb_of_clean_block_is_noop(self):
        heap, domain = make_domain()
        domain.clwb(0x100)
        domain.sfence()
        assert 0x100 not in domain.wpq

    def test_store_after_flush_supersedes(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        heap.store_u64(0x100, 2)  # newer value makes the flush stale
        domain.sfence()
        assert 0x100 in domain.dirty
        assert 0x100 not in domain.wpq


class TestPcommit:
    def test_pcommit_drains_wpq(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.clwb(0x100)
        domain.sfence()
        domain.pcommit()
        assert domain.is_durable(0x100)

    def test_pcommit_without_flush_persists_nothing(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.pcommit()
        assert not domain.is_durable(0x100)

    def test_persist_barrier_helper(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.clwb(0x100)
        domain.persist_barrier()
        assert domain.is_durable(0x100)


class TestCrashImage:
    def test_crash_loses_cached_data(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.crash()
        assert heap.load_u64(0x100) == 0

    def test_crash_loses_wpq_data(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.clwb(0x100)
        domain.sfence()
        domain.crash()
        assert heap.load_u64(0x100) == 0

    def test_crash_preserves_durable_data(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 0xAB)
        domain.clwb(0x100)
        domain.persist_barrier()
        domain.crash()
        assert heap.load_u64(0x100) == 0xAB

    def test_crash_preserves_block_granularity(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)  # same block as 0x108
        heap.store_u64(0x108, 2)
        domain.clwb(0x100)
        domain.persist_barrier()
        domain.crash()
        # both words persisted together: durability is block-granular
        assert heap.load_u64(0x100) == 1
        assert heap.load_u64(0x108) == 2

    def test_state_reset_after_crash(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.crash()
        assert not domain.dirty and not domain.wpq

    def test_crash_image_does_not_mutate_heap(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 7)
        image = domain.crash_image()
        assert heap.load_u64(0x100) == 7  # functional state untouched
        assert image[0x100] == 0


class TestEvictions:
    def test_eviction_makes_dirty_block_durable(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 5)
        domain.evict(0x100)
        assert domain.is_durable(0x100)
        domain.crash()
        assert heap.load_u64(0x100) == 5

    def test_eviction_of_clean_block_is_noop(self):
        heap, domain = make_domain()
        domain.evict(0x100)
        assert domain.n_evictions == 0

    def test_random_evict_subset(self):
        heap, domain = make_domain()
        for i in range(20):
            heap.store_u64(0x100 + i * CACHE_BLOCK, i)
        domain.random_evict(random.Random(0), fraction=1.0)
        assert not domain.dirty
        assert domain.n_evictions == 20


class TestSyncBase:
    def test_sync_base_makes_everything_durable(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 9)
        domain.sync_base()
        assert domain.is_durable(0x100)
        domain.crash()
        assert heap.load_u64(0x100) == 9
