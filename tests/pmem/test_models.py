"""Persistency-model taxonomy (repro.pmem.models, paper §2.1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pmem.models import (
    ALL_MODELS,
    BufferedEpochPersistency,
    EpochPersistency,
    StrandPersistency,
    StrictPersistency,
)


def w(value: int) -> bytes:
    return value.to_bytes(8, "little")


class TestStrict:
    def test_store_is_immediately_durable(self):
        model = StrictPersistency()
        model.store(0x100, w(1))
        assert model.durable_value(0x100) == w(1)

    def test_crash_image_is_exact(self):
        model = StrictPersistency()
        model.store(0x100, w(1))
        model.store(0x108, w(2))
        image = model.sample_crash_image(random.Random(0))
        assert image == {0x100: w(1), 0x108: w(2)}

    def test_every_store_stalls(self):
        model = StrictPersistency()
        for i in range(10):
            model.store(0x100 + i * 8, w(i))
        assert model.stall_events == 10
        assert model.nvmm_writes == 10


class TestEpoch:
    def test_open_epoch_is_not_durable(self):
        model = EpochPersistency()
        model.store(0x100, w(1))
        assert model.durable_value(0x100) is None

    def test_barrier_persists_the_epoch(self):
        model = EpochPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        assert model.durable_value(0x100) == w(1)

    def test_barrier_stalls_only_with_pending_stores(self):
        model = EpochPersistency()
        model.persist_barrier()
        assert model.stall_events == 0
        model.store(0x100, w(1))
        model.persist_barrier()
        assert model.stall_events == 1

    def test_crash_may_expose_any_open_subset(self):
        model = EpochPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        model.store(0x108, w(2))
        model.store(0x110, w(3))
        seen = set()
        for seed in range(40):
            image = model.sample_crash_image(random.Random(seed))
            assert image[0x100] == w(1)  # closed epoch always durable
            seen.add((0x108 in image, 0x110 in image))
        assert len(seen) > 1  # the open epoch really is unordered

    def test_same_address_folds_to_latest(self):
        model = EpochPersistency()
        model.store(0x100, w(1))
        model.store(0x100, w(2))
        image = model.sample_crash_image(random.Random(3))
        assert image.get(0x100) in (None, w(2))


class TestBufferedEpoch:
    def test_barrier_does_not_stall(self):
        model = BufferedEpochPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        assert model.stall_events == 0
        assert model.durable_value(0x100) is None  # still queued

    def test_drain_persists_in_epoch_order(self):
        model = BufferedEpochPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        model.store(0x108, w(2))
        model.persist_barrier()
        assert model.drain(1) == 1
        assert model.durable_value(0x100) == w(1)
        assert model.durable_value(0x108) is None
        model.drain(1)
        assert model.durable_value(0x108) == w(2)

    def test_crash_respects_epoch_ordering(self):
        """If anything from epoch k+1 survives, all of epoch k survives."""
        model = BufferedEpochPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        model.store(0x108, w(2))
        model.persist_barrier()
        for seed in range(60):
            image = model.sample_crash_image(random.Random(seed))
            if 0x108 in image:
                assert image.get(0x100) == w(1)

    def test_drain_on_empty_queue(self):
        assert BufferedEpochPersistency().drain(5) == 0


class TestStrand:
    def test_strands_are_independent(self):
        """A younger strand's store may persist while an older strand's
        earlier store has not — impossible under epoch persistency."""
        model = StrandPersistency()
        model.store(0x100, w(1))
        model.new_strand()
        model.store(0x108, w(2))
        model.persist_barrier()
        younger_without_older = False
        for seed in range(80):
            image = model.sample_crash_image(random.Random(seed))
            if 0x108 in image and 0x100 not in image:
                younger_without_older = True
        assert younger_without_older

    def test_within_strand_ordering_kept(self):
        model = StrandPersistency()
        model.store(0x100, w(1))
        model.persist_barrier()
        model.store(0x108, w(2))
        model.persist_barrier()
        for seed in range(60):
            image = model.sample_crash_image(random.Random(seed))
            if 0x108 in image:
                assert image.get(0x100) == w(1)

    def test_strand_count(self):
        model = StrandPersistency()
        model.new_strand()
        model.new_strand()
        assert model.n_strands == 3


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestCommonProperties:
    def test_names_distinct(self, model_cls):
        assert model_cls.name

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_durable_values_always_in_crash_images(self, model_cls, data):
        """Whatever the model declares durable must appear in every
        sampled crash image (no false durability claims)."""
        model = model_cls()
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["store", "barrier"]),
                    st.integers(min_value=0, max_value=15),
                    st.integers(min_value=0, max_value=255),
                ),
                max_size=30,
            )
        )
        for kind, slot, value in ops:
            if kind == "store":
                model.store(0x100 + slot * 8, w(value))
            else:
                model.persist_barrier()
        durable = {
            addr
            for addr in range(0x100, 0x180, 8)
            if model.durable_value(addr) is not None
        }
        for seed in range(5):
            image = model.sample_crash_image(random.Random(seed))
            for addr in durable:
                # a durable address is never *lost*; a still-pending newer
                # store to the same address may legally supersede the value
                assert addr in image

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_crash_images_only_contain_written_values(self, model_cls, data):
        model = model_cls()
        writes = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=7),
                    st.integers(min_value=0, max_value=255),
                ),
                max_size=20,
            )
        )
        legal = {}
        for slot, value in writes:
            model.store(0x100 + slot * 8, w(value))
            legal.setdefault(0x100 + slot * 8, set()).add(w(value))
            if data.draw(st.booleans()):
                model.persist_barrier()
        image = model.sample_crash_image(random.Random(0))
        for addr, payload in image.items():
            assert payload in legal.get(addr, set())
