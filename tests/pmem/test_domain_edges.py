"""PersistenceDomain edge cases beyond the main state-machine tests."""

import random

from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.pmem.domain import PersistenceDomain


def make_domain(size=1 << 16):
    heap = NVMHeap(size)
    domain = PersistenceDomain(heap)
    heap.attach(domain)
    return heap, domain


class TestFlushEvictInteractions:
    def test_pending_flush_then_evict(self):
        """An eviction while a clwb is pending: the block becomes durable
        via the eviction; the later sfence must not resurrect stale data."""
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        domain.evict(0x100)
        assert domain.is_durable(0x100)
        domain.sfence()  # the pending flush finds the block clean
        domain.pcommit()
        domain.crash()
        assert heap.load_u64(0x100) == 1

    def test_evict_then_store_then_flush(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.evict(0x100)
        heap.store_u64(0x100, 2)  # re-dirty after the writeback
        assert not domain.is_durable(0x100)
        domain.clwb(0x100)
        domain.persist_barrier()
        domain.crash()
        assert heap.load_u64(0x100) == 2

    def test_double_flush_same_block(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        domain.clwb(0x100)
        domain.persist_barrier()
        assert domain.is_durable(0x100)

    def test_flush_pending_superseded_by_store_not_persisted(self):
        """store A; clwb; store A'; sfence; pcommit: the flush was
        invalidated by the newer store, so nothing persists."""
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.clwb(0x100)
        heap.store_u64(0x100, 2)
        domain.sfence()
        domain.pcommit()
        domain.crash()
        assert heap.load_u64(0x100) == 0


class TestMultipleBarriers:
    def test_interleaved_epochs(self):
        heap, domain = make_domain()
        for round_ in range(5):
            heap.store_u64(0x100 + round_ * CACHE_BLOCK, round_ + 1)
            domain.clwb(0x100 + round_ * CACHE_BLOCK)
            domain.persist_barrier()
        domain.crash()
        for round_ in range(5):
            assert heap.load_u64(0x100 + round_ * CACHE_BLOCK) == round_ + 1

    def test_barrier_without_any_work(self):
        _, domain = make_domain()
        domain.persist_barrier()
        assert domain.n_pcommits == 1


class TestCounters:
    def test_all_counters_advance(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        heap.load_u64(0x100)
        domain.clwb(0x100)
        domain.persist_barrier()
        assert domain.n_stores == 1
        assert domain.n_flushes == 1
        assert domain.n_sfences == 2
        assert domain.n_pcommits == 1

    def test_eviction_counter(self):
        heap, domain = make_domain()
        for i in range(4):
            heap.store_u64(0x100 + i * CACHE_BLOCK, i)
        domain.random_evict(random.Random(1), fraction=1.0)
        assert domain.n_evictions == 4


class TestCrashIdempotence:
    def test_double_crash(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 7)
        domain.clwb(0x100)
        domain.persist_barrier()
        domain.crash()
        domain.crash()
        assert heap.load_u64(0x100) == 7

    def test_work_after_crash(self):
        heap, domain = make_domain()
        heap.store_u64(0x100, 1)
        domain.crash()
        heap.store_u64(0x100, 2)
        domain.clwb(0x100)
        domain.persist_barrier()
        domain.crash()
        assert heap.load_u64(0x100) == 2
