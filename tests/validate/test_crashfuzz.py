"""The crash-consistency fuzzer (engine 2)."""

import random

import pytest

from repro.harness.runner import build_trace
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.validate.crashfuzz import (
    probe_speculative_crash,
    run_campaign,
    run_crashfuzz,
    speculation_probe_points,
)
from repro.validate.mutations import inject

SP = MachineConfig().with_sp(256)


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestCampaigns:
    def test_failure_safe_campaign_consistent(self):
        tester = run_campaign("HM", PersistMode.LOG_P_SF, seed=0, n_crashes=4)
        assert tester.outcomes
        assert all(o.invariants_ok for o in tester.outcomes)

    def test_campaign_reproducible_from_seed(self):
        first = run_campaign("LL", PersistMode.LOG_P_SF, seed=3, n_crashes=4)
        second = run_campaign("LL", PersistMode.LOG_P_SF, seed=3, n_crashes=4)
        assert [
            (o.crash_point, o.op_index, o.crashed, o.invariants_ok)
            for o in first.outcomes
        ] == [
            (o.crash_point, o.op_index, o.crashed, o.invariants_ok)
            for o in second.outcomes
        ]

    def test_outcomes_carry_op_index(self):
        tester = run_campaign("HM", PersistMode.LOG_P_SF, seed=1, n_crashes=3)
        indices = [o.op_index for o in tester.outcomes]
        assert all(i >= 0 for i in indices)
        assert indices == sorted(indices)


class TestSpeculationProbes:
    def _trace(self):
        return build_trace(
            "HM", PersistMode.LOG_P_SF, seed=0, init_ops=100, sim_ops=6
        )

    def test_probe_points_bounded_and_seeded(self):
        trace = self._trace()
        first = speculation_probe_points(trace, random.Random(5), 8)
        second = speculation_probe_points(trace, random.Random(5), 8)
        assert first == second
        assert all(0 < p < len(trace) for p in first)

    def test_probe_clean_machine_state(self):
        trace = self._trace()
        hits = 0
        for point in speculation_probe_points(trace, random.Random(0), 8):
            errors, speculating = probe_speculative_crash(trace, point, SP)
            assert errors == []
            hits += speculating
        assert hits > 0  # probes actually observed live speculation

    def test_probe_detects_lossy_bloom(self):
        # BT's store pattern reliably leaves a dropped-bit store in the
        # SSB at one of the seeded probe points
        trace = build_trace(
            "BT", PersistMode.LOG_P_SF, seed=0, init_ops=100, sim_ops=6
        )
        caught = False
        with inject("bloom-drop-bits"):
            for point in speculation_probe_points(trace, random.Random(0), 12):
                errors, _ = probe_speculative_crash(trace, point, SP)
                if any("bloom false negative" in e for e in errors):
                    caught = True
                    break
        assert caught


class TestEngine:
    def test_quick_subset_green(self):
        report = run_crashfuzz(seed=0, benchmarks=["HM", "LL"], quick=True)
        assert report.ok, [f.as_dict() for f in report.failures[:3]]
        names = [c.name for c in report.checks]
        assert any(n.startswith("sweep/") for n in names)
        assert any(n.startswith("campaign/") for n in names)
        assert any(n.startswith("sp-crash/") for n in names)
        assert any(n.startswith("sp-coverage/") for n in names)

    def test_same_seed_reports_identical(self):
        first = run_crashfuzz(seed=21, benchmarks=["HM"], quick=True)
        second = run_crashfuzz(seed=21, benchmarks=["HM"], quick=True)
        assert first.as_dict() == second.as_dict()

    def test_undo_truncation_flagged(self):
        with inject("undo-skip-tail"):
            report = run_crashfuzz(seed=0, benchmarks=["HM"], quick=True)
        assert not report.ok
        assert any(f.name.startswith("sweep/") for f in report.failures)

    def test_broken_fence_flagged(self):
        with inject("fence-no-order"):
            report = run_crashfuzz(seed=0, benchmarks=["HM"], quick=True)
        assert not report.ok
