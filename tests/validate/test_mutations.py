"""Fault injections and the top-level orchestrator.

The central claim of this suite: for EVERY registered mutation, at least
one validation engine goes red.  A validator that cannot detect a
deliberately broken machine is not validating anything.
"""

import pytest

from repro.core.bloom import BloomFilter
from repro.pmem.domain import PersistenceDomain
from repro.txn.undolog import UndoLog
from repro.uarch.pipeline import PipelineModel
from repro.validate import MUTATIONS, active_mutation, inject, run_validation


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestInjectionMechanics:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            inject("no-such-fault")

    def test_active_mutation_scoped_to_block(self):
        assert active_mutation() is None
        with inject("bloom-drop-bits"):
            assert active_mutation() == "bloom-drop-bits"
        assert active_mutation() is None

    def test_patches_restored_on_exit(self):
        originals = (
            BloomFilter.insert,
            UndoLog.entries,
            PersistenceDomain.sfence,
            PipelineModel._compute_batch,
        )
        for name in MUTATIONS:
            with inject(name):
                pass
        assert (
            BloomFilter.insert,
            UndoLog.entries,
            PersistenceDomain.sfence,
            PipelineModel._compute_batch,
        ) == originals

    def test_restored_even_on_error(self):
        original = BloomFilter.insert
        with pytest.raises(RuntimeError):
            with inject("bloom-drop-bits"):
                raise RuntimeError("boom")
        assert BloomFilter.insert is original
        assert active_mutation() is None


class TestEveryMutationCaught:
    """Engine sensitivity: each fault must turn some check red."""

    # the cheapest (engine, benchmarks) combination known to catch each
    # fault; the full `repro validate --inject NAME` run covers the rest
    CATCHERS = {
        "bloom-drop-bits": (["crash"], ["BT"]),
        "undo-skip-tail": (["crash"], ["HM"]),
        "fence-no-order": (["conformance"], ["HM"]),
        "pipeline-skew": (["conformance"], ["HM"]),
    }

    def test_catcher_table_covers_registry(self):
        assert set(self.CATCHERS) == set(MUTATIONS)

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_turns_run_red(self, name):
        engines, benchmarks = self.CATCHERS[name]
        report = run_validation(
            seed=0, engines=engines, benchmarks=benchmarks,
            quick=True, injected=name,
        )
        assert report.injected == name
        assert not report.ok, f"{name} was not caught by {engines}"

    def test_honest_run_after_mutations_green(self):
        # mutations must leave no residue behind
        report = run_validation(
            seed=0, engines=["crash"], benchmarks=["HM"], quick=True
        )
        assert report.ok, [f.as_dict() for e in report.engines.values()
                           for f in e.failures[:3]]


class TestOrchestrator:
    def test_engine_selection(self):
        report = run_validation(
            seed=0, engines=["tracefuzz"], quick=True
        )
        assert list(report.engines) == ["tracefuzz"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            run_validation(engines=["nonsense"])

    def test_report_metadata(self):
        report = run_validation(
            seed=99, engines=["tracefuzz"], quick=True
        )
        assert report.seed == 99
        assert report.quick
        assert report.injected is None
