"""The validation report containers and their JSON serialisation."""

import json

from repro.validate.report import CheckResult, EngineReport, ValidationReport


class TestEngineReport:
    def test_add_records_seed_and_context(self):
        report = EngineReport(engine="demo", seed=42)
        check = report.add("prop/a", True, abbrev="HM", mode="log+p+sf")
        assert check.seed == 42
        assert check.context == {"abbrev": "HM", "mode": "log+p+sf"}
        assert report.ok

    def test_explicit_seed_overrides_engine_seed(self):
        report = EngineReport(engine="demo", seed=42)
        check = report.add("prop/b", True, seed=7)
        assert check.seed == 7

    def test_failures_filtered(self):
        report = EngineReport(engine="demo", seed=0)
        report.add("good", True)
        report.add("bad", False, detail="boom")
        assert not report.ok
        assert [c.name for c in report.failures] == ["bad"]

    def test_as_dict_counts(self):
        report = EngineReport(engine="demo", seed=0, params={"n": 3})
        report.add("good", True)
        report.add("bad", False)
        data = report.as_dict()
        assert data["n_checks"] == 2
        assert data["n_failures"] == 1
        assert data["params"] == {"n": 3}


class TestValidationReport:
    def _populated(self) -> ValidationReport:
        report = ValidationReport(seed=5, quick=True)
        engine = EngineReport(engine="demo", seed=5)
        engine.add("prop", True)
        report.engines["demo"] = engine
        return report

    def test_empty_report_is_not_ok(self):
        assert not ValidationReport(seed=0, quick=False).ok

    def test_ok_aggregates_engines(self):
        report = self._populated()
        assert report.ok
        report.engines["demo"].add("bad", False)
        assert not report.ok

    def test_json_round_trip(self):
        report = self._populated()
        data = json.loads(report.to_json())
        assert data["subsystem"] == "repro.validate"
        assert data["seed"] == 5
        assert data["quick"] is True
        assert data["engines"]["demo"]["ok"] is True

    def test_write_and_summary(self, tmp_path):
        report = self._populated()
        path = report.write(tmp_path / "report.json")
        assert json.loads(path.read_text())["ok"] is True
        summary = report.summary()
        assert "seed 5" in summary
        assert "PASS" in summary

    def test_summary_lists_failures(self):
        report = self._populated()
        report.engines["demo"].add("prop/broken", False, detail="diverged")
        summary = report.summary()
        assert "prop/broken" in summary
        assert "FAIL" in summary

    def test_injected_recorded(self):
        report = ValidationReport(seed=0, quick=False, injected="bloom-drop-bits")
        assert report.as_dict()["injected"] == "bloom-drop-bits"
        assert "bloom-drop-bits" in report.summary()

    def test_check_result_as_dict_omits_empty(self):
        data = CheckResult("n", True).as_dict()
        assert data == {"name": "n", "ok": True}
