"""The trace-level property fuzzer (engine 3)."""

from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.validate.mutations import inject
from repro.validate.tracefuzz import (
    fuzz_blt,
    fuzz_bloom,
    fuzz_checkpoints,
    generate_trace,
    run_tracefuzz,
    shrink_trace,
    trace_property_violations,
)

SP = MachineConfig().with_sp(256)


class TestGenerator:
    def test_same_seed_same_trace(self):
        first = [(i.op, i.addr) for i in generate_trace(7, 100)]
        second = [(i.op, i.addr) for i in generate_trace(7, 100)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [(i.op, i.addr) for i in generate_trace(1, 100)]
        second = [(i.op, i.addr) for i in generate_trace(2, 100)]
        assert first != second

    def test_grammar_produces_persistence_ops(self):
        ops = {i.op for i in generate_trace(0, 600)}
        assert Op.STORE in ops
        assert Op.SFENCE in ops
        assert Op.PCOMMIT in ops


class TestProperties:
    def test_random_traces_hold_on_sp(self):
        for seed in range(6):
            trace = generate_trace(seed, 80)
            assert trace_property_violations(trace, SP) == []

    def test_skewed_pipeline_violates(self):
        trace = generate_trace(0, 80)
        with inject("pipeline-skew"):
            violations = trace_property_violations(trace, MachineConfig())
        assert any("diverged" in v for v in violations)


class TestShrinking:
    def test_shrinks_to_minimal_failing_input(self):
        # property: trace contains a STORE — minimal reproducer is 1 instr
        trace = generate_trace(3, 120)
        failing = lambda t: any(i.op is Op.STORE for i in t)
        assert failing(trace)
        shrunk = shrink_trace(trace, failing)
        assert len(shrunk) == 1
        assert shrunk[0].op is Op.STORE

    def test_never_returns_passing_trace(self):
        trace = Trace(list(generate_trace(4, 60)))
        failing = lambda t: sum(i.op is Op.SFENCE for i in t) >= 2
        if failing(trace):
            shrunk = shrink_trace(trace, failing)
            assert failing(shrunk)
            assert len(shrunk) <= len(trace)

    def test_respects_eval_budget(self):
        calls = []

        def failing(t):
            calls.append(1)
            return True

        shrink_trace(generate_trace(5, 200), failing, max_evals=25)
        assert len(calls) <= 25


class TestComponentFuzzes:
    def test_bloom_has_no_false_negatives(self):
        assert fuzz_bloom(seed=0, n_ops=3000) is None

    def test_bloom_fuzz_catches_lossy_filter(self):
        with inject("bloom-drop-bits"):
            assert fuzz_bloom(seed=0, n_ops=3000) is not None

    def test_checkpoint_accounting(self):
        assert fuzz_checkpoints(seed=0, n_ops=3000) is None

    def test_blt_soundness(self):
        assert fuzz_blt(seed=0, n_ops=3000) is None


class TestEngine:
    def test_quick_run_green(self):
        report = run_tracefuzz(seed=0, quick=True)
        assert report.ok, [f.as_dict() for f in report.failures[:3]]

    def test_same_seed_reports_identical(self):
        first = run_tracefuzz(seed=13, quick=True, n_traces=6)
        second = run_tracefuzz(seed=13, quick=True, n_traces=6)
        assert first.as_dict() == second.as_dict()

    def test_failure_report_carries_shrunk_reproducer(self):
        with inject("pipeline-skew"):
            report = run_tracefuzz(seed=0, quick=True, n_traces=3)
        assert not report.ok
        failure = next(f for f in report.failures if f.name.startswith("trace/"))
        assert failure.context["shrunk_length"] <= failure.context["trace_length"]
        assert failure.context["shrunk_trace"]  # replayable opcode listing
        assert failure.seed is not None
