"""The differential conformance oracle (engine 1)."""

import pytest

from repro.txn.modes import PersistMode
from repro.validate.conformance import (
    ablation_matrix,
    build_small_workload,
    end_state_digests,
    masked_heap_digest,
    model_digest,
    run_conformance,
)
from repro.validate.mutations import inject

SUBSET = ["HM", "LL"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets a private persistent cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


class TestDigests:
    def test_masked_digest_ignores_log_contents(self):
        base = build_small_workload("HM", PersistMode.BASE, seed=3)
        logged = build_small_workload("HM", PersistMode.LOG, seed=3)
        for workload in (base, logged):
            workload.populate(20)
        # identical ops, different log traffic: masked digests agree
        assert masked_heap_digest(base) == masked_heap_digest(logged)

    def test_heap_digest_sees_structure_changes(self):
        one = build_small_workload("HM", PersistMode.LOG_P_SF, seed=3)
        two = build_small_workload("HM", PersistMode.LOG_P_SF, seed=3)
        one.populate(20)
        two.populate(21)
        assert masked_heap_digest(one) != masked_heap_digest(two)

    def test_model_digest_canonical_for_sets(self):
        # the graph model is a set: digest must not depend on iteration order
        a = build_small_workload("GH", PersistMode.LOG_P_SF, seed=5)
        b = build_small_workload("GH", PersistMode.LOG_P_SF, seed=5)
        a.populate(30)
        b.populate(30)
        assert model_digest(a) == model_digest(b)

    def test_end_state_digests_deterministic(self):
        first = end_state_digests("LL", PersistMode.LOG_P_SF, 9, 20, 4)
        second = end_state_digests("LL", PersistMode.LOG_P_SF, 9, 20, 4)
        assert first == second
        assert first[2] is None  # invariants hold


class TestAblationMatrix:
    def test_covers_baseline_and_sp_knobs(self):
        labels = dict(ablation_matrix())
        assert not labels["eager"].sp_enabled
        assert labels["sp256"].sp_enabled
        assert not labels["sp256-no-bloom"].bloom_enabled
        assert not labels["sp256-no-coalesce"].coalesce_barrier_checkpoints
        assert labels["sp32"].ssb_entries == 32
        assert labels["sp256-ckpt2"].checkpoint_entries == 2


class TestHonestRun:
    def test_quick_subset_is_green(self):
        report = run_conformance(seed=0, benchmarks=SUBSET, quick=True)
        assert report.ok, [f.as_dict() for f in report.failures[:3]]
        names = [c.name for c in report.checks]
        # every layer produced checks
        assert any(n.startswith("end-state/") for n in names)
        assert any(n.startswith("recovery/") for n in names)
        assert any(n.startswith("pipeline-vs-ref/") for n in names)
        assert any(n.startswith("instruction-invariance/") for n in names)

    def test_same_seed_reports_identical(self):
        first = run_conformance(seed=11, benchmarks=["HM"], quick=True)
        second = run_conformance(seed=11, benchmarks=["HM"], quick=True)
        assert first.as_dict() == second.as_dict()

    def test_seed_recorded_on_every_check(self):
        report = run_conformance(seed=17, benchmarks=["HM"], quick=True)
        assert all(c.seed == 17 for c in report.checks)


class TestMutationsCaught:
    """The oracle must flag a deliberately broken machine."""

    def test_pipeline_skew_flagged(self):
        with inject("pipeline-skew"):
            report = run_conformance(seed=0, benchmarks=["HM"], quick=True)
        assert not report.ok
        assert any(
            f.name.startswith("pipeline-vs-ref/") for f in report.failures
        )

    def test_fence_no_order_flagged_by_recovery(self):
        with inject("fence-no-order"):
            report = run_conformance(seed=0, benchmarks=["HM"], quick=True)
        assert not report.ok
        assert any(f.name.startswith("recovery/") for f in report.failures)
