"""Machine-state invariant checks and the mid-run probing API."""

import pytest

from repro.harness.runner import build_trace
from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel
from repro.validate.invariants import post_run_errors, speculative_state_errors

SP = MachineConfig().with_sp(256)


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


def _barrier():
    return [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]


def _speculating_model() -> PipelineModel:
    instrs = (
        [Instr(Op.STORE, 0x1000)] * 4
        + [Instr(Op.CLWB, 0x1000)]
        + _barrier()
        + [Instr(Op.STORE, 0x2000), Instr(Op.STORE, 0x2040)]
    )
    model = PipelineModel(SP)
    model.run(Trace(instrs), finish=False)
    assert model.epochs.speculating
    return model


class TestUnfinishedRun:
    def test_finish_false_leaves_speculation_live(self):
        model = _speculating_model()
        assert len(model.ssb) > 0
        assert model.checkpoints.in_use > 0

    def test_mid_speculation_state_is_clean(self):
        assert speculative_state_errors(_speculating_model()) == []

    def test_quiescent_machine_has_no_errors(self):
        model = PipelineModel(SP)
        model.run(Trace([Instr(Op.ALU), Instr(Op.STORE, 0x100)]))
        assert post_run_errors(model) == []

    def test_benchmark_trace_end_state_clean(self):
        trace = build_trace(
            "LL", PersistMode.LOG_P_SF, seed=0, init_ops=100, sim_ops=4
        )
        model = PipelineModel(SP)
        model.run(trace)
        assert post_run_errors(model) == []


class TestAbortSpeculation:
    def test_abort_outside_speculation_is_none(self):
        model = PipelineModel(SP)
        model.run(Trace([Instr(Op.ALU)]))
        assert model.abort_speculation() is None

    def test_abort_discards_speculative_state(self):
        model = _speculating_model()
        resume = model.abort_speculation()
        assert resume is not None
        assert not model.epochs.speculating
        assert len(model.ssb) == 0
        assert model.checkpoints.in_use == 0

    def test_abort_resumes_at_oldest_checkpoint(self):
        model = _speculating_model()
        expected = model.epochs.oldest.start_index
        assert model.abort_speculation() == expected


class TestViolationDetection:
    def test_forged_bloom_false_negative_detected(self):
        model = _speculating_model()
        model.bloom.reset()  # drop every recorded bit
        errors = speculative_state_errors(model)
        assert any("bloom false negative" in e for e in errors)

    def test_forged_checkpoint_leak_detected(self):
        model = _speculating_model()
        model.checkpoints.acquire(now=0)  # one more than active epochs
        errors = speculative_state_errors(model)
        assert any("checkpoint accounting" in e for e in errors)

    def test_forged_epoch_count_detected(self):
        model = _speculating_model()
        model.epochs.current.n_stores += 1
        errors = speculative_state_errors(model)
        assert any("SSB stores" in e for e in errors)
