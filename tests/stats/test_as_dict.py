"""RunStats.as_dict export (repro.stats.run)."""

from repro.stats.run import RunStats


class TestAsDict:
    def test_contains_all_counters(self):
        stats = RunStats(cycles=100, instructions=200, pcommits=4)
        data = stats.as_dict()
        assert data["cycles"] == 100
        assert data["instructions"] == 200
        assert data["pcommits"] == 4

    def test_contains_derived_metrics(self):
        stats = RunStats(cycles=100, instructions=200)
        data = stats.as_dict()
        assert data["ipc"] == 2.0
        assert "stores_per_pcommit" in data
        assert "bloom_false_positive_rate" in data

    def test_extra_merged(self):
        stats = RunStats()
        stats.extra["custom_metric"] = 3.5
        assert stats.as_dict()["custom_metric"] == 3.5

    def test_extra_key_not_duplicated(self):
        data = RunStats().as_dict()
        assert "extra" not in data

    def test_json_serialisable(self):
        import json

        json.dumps(RunStats(cycles=5).as_dict())

    def test_real_run_exports(self):
        from repro.isa.instr import Instr
        from repro.isa.ops import Op
        from repro.isa.trace import Trace
        from repro.uarch import MachineConfig, simulate

        stats = simulate(Trace([Instr(Op.LOAD, 0x1000)]), MachineConfig())
        data = stats.as_dict()
        assert data["loads"] == 1
        assert data["cycles"] > 0
