"""RunStats derived metrics (repro.stats.run)."""

import pytest

from repro.stats.run import RunStats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = RunStats(cycles=100, instructions=250)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert RunStats().ipc == 0.0

    def test_stores_per_pcommit(self):
        stats = RunStats(pcommits=4, stores_during_pcommit=48)
        assert stats.stores_per_pcommit == 12.0

    def test_stores_per_pcommit_no_pcommits(self):
        assert RunStats(stores_during_pcommit=10).stores_per_pcommit == 0.0

    def test_bloom_fp_rate(self):
        stats = RunStats(bloom_queries=200, bloom_false_positives=10)
        assert stats.bloom_false_positive_rate == 0.05

    def test_bloom_fp_rate_no_queries(self):
        assert RunStats().bloom_false_positive_rate == 0.0


class TestOverhead:
    def test_overhead_vs_baseline(self):
        base = RunStats(cycles=1000)
        variant = RunStats(cycles=1250)
        assert variant.overhead_vs(base) == pytest.approx(0.25)

    def test_overhead_negative_when_faster(self):
        base = RunStats(cycles=1000)
        assert RunStats(cycles=900).overhead_vs(base) == pytest.approx(-0.1)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            RunStats(cycles=10).overhead_vs(RunStats(cycles=0))

    def test_extra_dict_available(self):
        stats = RunStats()
        stats.extra["custom"] = 1.5
        assert stats.extra["custom"] == 1.5
