"""as_dict/from_dict must be lossless, including ``extra``."""

from repro.stats.run import RunStats


class TestRoundTrip:
    def test_plain_counters(self):
        stats = RunStats(cycles=100, instructions=80, pcommits=3)
        assert RunStats.from_dict(stats.as_dict()) == stats

    def test_extra_survives_flattened_form(self):
        """as_dict flattens ``extra`` into the mapping; from_dict must
        absorb those keys back instead of dropping them."""
        stats = RunStats(cycles=10, extra={"speedup": 1.5, "warm_ratio": 0.2})
        rebuilt = RunStats.from_dict(stats.as_dict())
        assert rebuilt == stats
        assert rebuilt.extra == {"speedup": 1.5, "warm_ratio": 0.2}

    def test_extra_survives_nested_form(self):
        """The persistent cache's JSON records keep ``extra`` nested."""
        rebuilt = RunStats.from_dict(
            {"cycles": 10, "extra": {"speedup": 1.5}}
        )
        assert rebuilt == RunStats(cycles=10, extra={"speedup": 1.5})

    def test_derived_metrics_not_absorbed(self):
        stats = RunStats(cycles=100, instructions=80)
        rebuilt = RunStats.from_dict(stats.as_dict())
        assert rebuilt.extra == {}
        assert rebuilt.ipc == stats.ipc

    def test_double_round_trip_is_stable(self):
        stats = RunStats(cycles=7, extra={"x": 1.0})
        once = RunStats.from_dict(stats.as_dict())
        twice = RunStats.from_dict(once.as_dict())
        assert twice == stats

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        """Store → load through the persistent cache preserves extra."""
        from repro.harness import cache as disk_cache
        from repro.harness.runner import TraceKey
        from repro.txn.modes import PersistMode
        from repro.uarch.config import MachineConfig

        monkeypatch.setenv(disk_cache.ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.delenv(disk_cache.ENV_NO_CACHE, raising=False)
        key = TraceKey("BT", PersistMode.BASE, 7)
        config = MachineConfig()
        stats = RunStats(cycles=42, extra={"speedup": 2.0})
        disk_cache.store_stats(key, config, stats)
        assert disk_cache.load_cached_stats(key, config) == stats
