"""Simulation-as-a-service: ``python -m repro serve --listen HOST:PORT``.

A long-running stdlib HTTP endpoint that accepts sweep requests and
streams per-cell results as they complete.  Each ``POST /sweep`` body is
a JSON object::

    {"benchmarks": ["BT", "HM"],        # default: all seven
     "modes": ["base", "log+p", "sp256"],  # default: the figure-8 set
     "seed": 7,                          # optional
     "init_ops": 200, "sim_ops": 100}    # optional overrides

and the response is ``application/x-ndjson``: one line per completed
cell (benchmark × mode) followed by a ``{"done": true, ...}`` summary
line.  Cells execute through the normal campaign path —
:func:`repro.harness.parallel.run_variants` under the supervisor — so
they hit the content-addressed cache, are journaled, and can fan out to
a worker fleet when the http transport is configured (``--transport
http --workers ...`` / ``REPRO_TRANSPORT``/``REPRO_WORKERS``).

``GET /healthz`` answers liveness; ``GET /metrics`` returns the full
:func:`repro.obs.metrics.metrics_snapshot` JSON (cache counters,
supervisor recoveries, transport fleet health).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.harness.parallel import VariantJob, run_variants
from repro.harness import transport
from repro.obs import metrics as obs_metrics
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.workloads.registry import WORKLOADS

#: The figure-8 variant set, served when a sweep names no modes.
DEFAULT_MODES = ("base", "log", "log+p", "log+p+sf", "sp256")


class SweepRequestError(ValueError):
    """The sweep request body failed validation (answered with a 400)."""


def _resolve_mode(label: str) -> Tuple[str, PersistMode, MachineConfig]:
    """Map a wire mode label to ``(label, PersistMode, MachineConfig)``.

    Accepts the four persist-mode values plus ``sp<N>`` (speculative
    persistence with an N-entry SSB on top of ``log+p+sf``).
    """
    label = label.strip().lower()
    try:
        return label, PersistMode(label), MachineConfig()
    except ValueError:
        pass
    if label.startswith("sp"):
        try:
            entries = int(label[2:])
        except ValueError:
            entries = -1
        if entries > 0:
            return label, PersistMode.LOG_P_SF, MachineConfig().with_sp(entries)
    raise SweepRequestError(
        f"unknown mode {label!r} (expected "
        f"{'/'.join(m.value for m in PersistMode)} or spN)"
    )


def parse_sweep(payload: Dict[str, object]):
    """Validate a sweep request; returns ``(benchmarks, mode_triples,
    seed, init_ops, sim_ops)``."""
    if not isinstance(payload, dict):
        raise SweepRequestError("sweep request must be a JSON object")
    unknown = set(payload) - {
        "benchmarks", "modes", "seed", "init_ops", "sim_ops"
    }
    if unknown:
        raise SweepRequestError(f"unknown sweep fields: {sorted(unknown)}")
    benchmarks = payload.get("benchmarks") or list(WORKLOADS)
    if not isinstance(benchmarks, list) or not benchmarks:
        raise SweepRequestError("'benchmarks' must be a non-empty list")
    for abbrev in benchmarks:
        if abbrev not in WORKLOADS:
            raise SweepRequestError(
                f"unknown benchmark {abbrev!r} "
                f"(expected one of {list(WORKLOADS)})"
            )
    mode_labels = payload.get("modes") or list(DEFAULT_MODES)
    if not isinstance(mode_labels, list) or not mode_labels:
        raise SweepRequestError("'modes' must be a non-empty list")
    modes = [_resolve_mode(str(label)) for label in mode_labels]

    def _int_field(name: str, default) -> Optional[int]:
        value = payload.get(name, default)
        if value is None:
            return None
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise SweepRequestError(f"'{name}' must be an integer") from None
        if name != "seed" and value <= 0:
            raise SweepRequestError(f"'{name}' must be positive")
        return value

    seed = _int_field("seed", 7)
    init_ops = _int_field("init_ops", None)
    sim_ops = _int_field("sim_ops", None)
    return benchmarks, modes, seed, init_ops, sim_ops


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], jobs: Optional[int]) -> None:
        super().__init__(address, _ServiceHandler)
        self.jobs = jobs
        self.sweeps = 0
        self.lock = threading.Lock()


class _ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _reply_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:
            pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/healthz":
            self._reply_json(
                200,
                {
                    "ok": True,
                    "kind": "serve",
                    "pid": os.getpid(),
                    "sweeps": self.server.sweeps,
                },
            )
            return
        if self.path == "/metrics":
            self._reply_json(200, obs_metrics.metrics_snapshot())
            return
        self._reply_json(404, {"ok": False, "error": "not found"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/sweep":
            self._reply_json(404, {"ok": False, "error": "not found"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, OSError) as exc:
            self._reply_json(400, {"ok": False, "error": f"bad body: {exc}"})
            return
        try:
            benchmarks, modes, seed, init_ops, sim_ops = parse_sweep(payload)
        except SweepRequestError as exc:
            self._reply_json(400, {"ok": False, "error": str(exc)})
            return
        with self.server.lock:
            self.server.sweeps += 1
        self._stream_sweep(benchmarks, modes, seed, init_ops, sim_ops)

    def _stream_sweep(self, benchmarks, modes, seed, init_ops, sim_ops) -> None:
        """Run the sweep one benchmark at a time, streaming each
        benchmark's cells as soon as its campaign merges."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        started = time.perf_counter()
        cells = 0
        try:
            for abbrev in benchmarks:
                jobs = [
                    VariantJob(
                        abbrev=abbrev, mode=mode, config=config, seed=seed,
                        init_ops=init_ops, sim_ops=sim_ops,
                    )
                    for _label, mode, config in modes
                ]
                results = run_variants(jobs, jobs=self.server.jobs)
                for (label, _mode, _config), stats in zip(modes, results):
                    cells += 1
                    self._write_line(
                        {
                            "benchmark": abbrev,
                            "mode": label,
                            "cycles": stats.cycles,
                            "instructions": stats.instructions,
                            "ipc": round(stats.ipc, 6),
                        }
                    )
            self._write_line(
                {
                    "done": True,
                    "cells": cells,
                    "wall_s": round(time.perf_counter() - started, 3),
                }
            )
        except OSError:
            pass  # client hung up mid-stream; the cache keeps the work
        except Exception as exc:  # the service must survive a bad sweep
            try:
                self._write_line(
                    {"done": False, "error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass

    def _write_line(self, payload: dict) -> None:
        self.wfile.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode()
        )
        self.wfile.flush()


def make_service(
    host: str = "127.0.0.1", port: int = 0, jobs: Optional[int] = None
) -> ServiceServer:
    """Build (but don't start) the service; ``port=0`` binds any free
    port — read it back from ``server.server_address``."""
    return ServiceServer((host, port), jobs)


def serve_service(listen: str, jobs: Optional[int] = None) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    host, port = transport.parse_hostport(listen)
    server = make_service(host, port, jobs)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving sweeps on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        try:
            server.server_close()
        except OSError:
            pass
    return 0
