"""Parallel variant scheduler: fan (benchmark, mode, config, seed) jobs
across cores.

The paper's methodology — one recorded trace replayed on many machine
configurations — is embarrassingly parallel across variants, so the
scheduler runs them in a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges results deterministically (results are ordered by job
position, never by completion order, so ``--jobs N`` output is
byte-identical to serial output).

Work is split into two phases so that every trace is generated exactly
once fleet-wide:

1. the unique :class:`~repro.harness.runner.TraceKey` set of all
   cache-missing jobs is generated in parallel, each worker writing the
   trace into the shared on-disk store (:mod:`repro.harness.cache`);
2. simulations fan out, each worker loading its trace from the store,
   simulating, and persisting the resulting stats.

Workers exchange traces in the columnar RPTR2 format: a worker's load is
four ``array.frombytes`` calls into a column-backed trace, so no
``Instr`` objects are materialised anywhere on the warm path.

When the persistent cache is disabled (``REPRO_NO_CACHE``) a temporary
directory serves as the job-scoped shared store and is removed after the
merge.

Multi-worker campaigns are normally routed through the fault-tolerant
supervisor (:mod:`repro.harness.supervisor` — watchdog timeouts, retry
with backoff, pool-death recovery, resumable journals).  ``--no-supervise``
(``supervisor.set_enabled(False)``) keeps them on the plain two-phase
``pool.map`` scheduler below, which produces byte-identical results: the
supervisor changes only *scheduling*, never *what* is computed.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.harness import cache as disk_cache
from repro.harness import runner
from repro.harness.runner import TraceKey
from repro.obs import metrics as obs_metrics
from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate


@dataclass(frozen=True)
class VariantJob:
    """One (benchmark, mode, config, seed) simulation request."""

    abbrev: str
    mode: PersistMode
    config: MachineConfig
    seed: int = 7
    init_ops: Optional[int] = None
    sim_ops: Optional[int] = None

    @property
    def trace_key(self) -> TraceKey:
        return TraceKey(self.abbrev, self.mode, self.seed, self.init_ops, self.sim_ops)


_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``)."""
    global _default_jobs
    _default_jobs = jobs


def default_jobs() -> int:
    """The effective default worker count (``--jobs`` or ``os.cpu_count()``)."""
    if _default_jobs is not None:
        return max(1, _default_jobs)
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# worker entry points (top-level so they pickle)
# ----------------------------------------------------------------------
def _trace_worker(payload: Tuple[TraceKey, str]) -> Tuple[int, float, int]:
    """Generate one trace into the shared store; returns ``(length,
    wall_seconds, worker_pid)`` so the coordinator can attribute work."""
    key, root = payload
    started = time.perf_counter()
    path = disk_cache.trace_path(key, root=root)
    if path is not None and path.exists():
        return 0, time.perf_counter() - started, os.getpid()
    trace = runner.generate_trace(key)
    disk_cache.store_trace(key, trace, root=root)
    return len(trace), time.perf_counter() - started, os.getpid()


def _sim_worker(
    payload: Tuple[TraceKey, MachineConfig, str]
) -> Tuple[RunStats, float, int]:
    """Simulate one variant, reading its trace from the shared store.

    Returns ``(stats, wall_seconds, worker_pid)``."""
    key, config, root = payload
    started = time.perf_counter()
    trace = disk_cache.load_cached_trace(key, root=root)
    if trace is None:
        # phase 1 should have produced it; regenerate defensively
        trace = runner.generate_trace(key)
        disk_cache.store_trace(key, trace, root=root)
    stats = simulate(trace, config)
    disk_cache.store_stats(key, config, stats, root=root)
    return stats, time.perf_counter() - started, os.getpid()


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------
def run_variants(
    jobs_list: Sequence[VariantJob], jobs: Optional[int] = None
) -> List[RunStats]:
    """Run every job and return results in job order (deterministic merge).

    With ``jobs <= 1`` (or a single job) everything runs serially in
    process through :func:`repro.harness.runner.run_variant`; results are
    identical either way because simulation is a pure function of
    ``(trace, config)``.
    """
    jobs_list = list(jobs_list)
    n_workers = default_jobs() if jobs is None else max(1, jobs)
    if n_workers <= 1 or len(jobs_list) <= 1:
        return [
            runner.run_variant(
                job.abbrev, job.mode, job.config, job.seed, job.init_ops, job.sim_ops
            )
            for job in jobs_list
        ]

    from repro.harness import supervisor

    if supervisor.enabled():
        return supervisor.run_supervised(jobs_list, n_workers)

    results: List[Optional[RunStats]] = [None] * len(jobs_list)
    missing: List[Tuple[int, VariantJob, TraceKey]] = []
    for index, job in enumerate(jobs_list):
        key = job.trace_key
        memo = runner._STATS_CACHE.get((key, job.config))
        if memo is not None:
            results[index] = memo
            continue
        started = time.perf_counter()
        cached = runner.peek_cached_stats(key, job.config)
        if cached is not None:
            results[index] = cached
            obs_metrics.record_variant(
                "sim",
                f"{key.abbrev}/{key.mode.value}",
                "disk",
                time.perf_counter() - started,
            )
        else:
            missing.append((index, job, key))
    if not missing:
        return results  # type: ignore[return-value]

    root = disk_cache.cache_root()
    scratch: Optional[tempfile.TemporaryDirectory] = None
    if root is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-scratch-")
        root = Path(scratch.name)
    try:
        root_str = str(root)
        # phase 1: each needed trace is generated exactly once fleet-wide
        seen = set()
        gen_keys: List[TraceKey] = []
        for _, _, key in missing:
            if key in seen:
                continue
            seen.add(key)
            memo = runner._TRACE_CACHE.get(key)
            if memo is not None:
                # already generated in this process: publish to the store
                path = disk_cache.trace_path(key, root=root_str)
                if path is not None and not path.exists():
                    disk_cache.store_trace(key, memo, root=root_str)
                continue
            path = disk_cache.trace_path(key, root=root_str)
            if path is None or not path.exists():
                gen_keys.append(key)
        pool = ProcessPoolExecutor(max_workers=min(n_workers, len(missing)))
        try:
            if gen_keys:
                for key, (length, wall_s, pid) in zip(
                    gen_keys,
                    pool.map(_trace_worker, [(key, root_str) for key in gen_keys]),
                ):
                    if length:
                        obs_metrics.record_variant(
                            "trace",
                            f"{key.abbrev}/{key.mode.value}",
                            "generated",
                            wall_s,
                            worker=f"pid:{pid}",
                        )
            # phase 2: fan out the simulations
            payloads = [(key, job.config, root_str) for _, job, key in missing]
            for (index, job, key), (stats, wall_s, pid) in zip(
                missing, pool.map(_sim_worker, payloads)
            ):
                results[index] = stats
                runner.seed_stats_cache(key, job.config, stats)
                obs_metrics.record_variant(
                    "sim",
                    f"{key.abbrev}/{key.mode.value}",
                    "simulated",
                    wall_s,
                    worker=f"pid:{pid}",
                )
            pool.shutdown(wait=True)
        except KeyboardInterrupt:
            # Ctrl-C mid-campaign: don't hang in ProcessPoolExecutor's
            # atexit join waiting for in-flight simulations — cancel the
            # queue, SIGKILL the workers, and re-raise so the CLI exits
            # promptly (completed cells are already in the shared store)
            from repro.harness.supervisor import _terminate_pool

            _terminate_pool(pool)
            raise
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    finally:
        if scratch is not None:
            scratch.cleanup()
    return results  # type: ignore[return-value]


def prefetch_variants(
    pairs: Iterable[Tuple[str, PersistMode, MachineConfig]],
    seed: int = 7,
    jobs: Optional[int] = None,
) -> List[RunStats]:
    """Warm the caches for *(abbrev, mode, config)* pairs in parallel.

    Figure and sweep functions call this with their full variant
    cross-product before their (serial, order-sensitive) result assembly
    loops; the assembly then hits the in-process memo only.
    """
    jobs_list = [VariantJob(ab, mode, config, seed) for ab, mode, config in pairs]
    # de-duplicate while preserving order (BASE repeats across series)
    unique: List[VariantJob] = []
    seen = set()
    for job in jobs_list:
        if job not in seen:
            seen.add(job)
            unique.append(job)
    return run_variants(unique, jobs=jobs)
