"""Harness performance benchmark (``python -m repro bench``).

Times the three layers the performance work targets and records them in
``BENCH_harness.json`` so the perf trajectory is tracked across commits:

* **cold** — a Figure-8 regeneration against an empty cache (trace
  generation + simulation for every variant);
* **warm** — the same regeneration against the now-populated persistent
  cache (must be at least ~5x faster; warm runs only read JSON/RPTR1);
* **pipeline throughput** — committed instructions per second of the
  timing model itself, measured by re-simulating the recorded traces.

The bench uses a temporary cache directory so it never reads from (or
pollutes) the user's ``.repro-cache``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.harness import cache as disk_cache
from repro.harness.figures import fig8_overheads
from repro.harness.parallel import default_jobs
from repro.harness.runner import all_benchmarks, build_trace, clear_trace_cache
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate

#: Subset used by ``bench --quick`` (CI smoke): the cheapest two traces.
QUICK_BENCHMARKS = ("LL", "GH")

DEFAULT_OUTPUT = "BENCH_harness.json"


@contextmanager
def _isolated_cache(root: str):
    """Point the persistent cache at *root* for the duration of the bench."""
    saved_dir = os.environ.get(disk_cache.ENV_CACHE_DIR)
    saved_off = os.environ.get(disk_cache.ENV_NO_CACHE)
    os.environ[disk_cache.ENV_CACHE_DIR] = root
    os.environ.pop(disk_cache.ENV_NO_CACHE, None)
    try:
        yield
    finally:
        if saved_dir is None:
            os.environ.pop(disk_cache.ENV_CACHE_DIR, None)
        else:
            os.environ[disk_cache.ENV_CACHE_DIR] = saved_dir
        if saved_off is not None:
            os.environ[disk_cache.ENV_NO_CACHE] = saved_off


def run_bench(
    quick: bool = False,
    output: Optional[str] = DEFAULT_OUTPUT,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Dict[str, object]:
    """Run the harness benchmark; returns (and optionally writes) the record."""
    names: List[str] = list(
        benchmarks or (QUICK_BENCHMARKS if quick else all_benchmarks())
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with _isolated_cache(tmp):
            clear_trace_cache()
            t0 = time.perf_counter()
            fig8_overheads(names, seed=seed)
            cold = time.perf_counter() - t0

            # drop the in-process memo so the warm run exercises the disk
            # cache, exactly like a fresh process against .repro-cache
            clear_trace_cache()
            t0 = time.perf_counter()
            fig8_overheads(names, seed=seed)
            warm = time.perf_counter() - t0

            # pipeline throughput: re-simulate the recorded traces (cache
            # hits now) on the baseline machine and count committed
            # instructions per wall-clock second
            instructions = 0
            sim_seconds = 0.0
            for ab in names:
                for mode in (PersistMode.BASE, PersistMode.LOG_P_SF):
                    trace = build_trace(ab, mode, seed=seed)
                    t0 = time.perf_counter()
                    stats = simulate(trace, MachineConfig())
                    sim_seconds += time.perf_counter() - t0
                    instructions += stats.instructions
        clear_trace_cache()

    record: Dict[str, object] = {
        "bench": "harness",
        "schema": disk_cache.CACHE_SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": names,
        "jobs": default_jobs(),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 3),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
        "pipeline_instructions": instructions,
        "pipeline_seconds": round(sim_seconds, 3),
        "pipeline_ips": round(instructions / sim_seconds) if sim_seconds else None,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return record


def render_bench(record: Dict[str, object]) -> str:
    """Human-readable summary of a bench record."""
    return "\n".join([
        f"harness bench ({'quick, ' if record['quick'] else ''}"
        f"{len(record['benchmarks'])} benchmarks, jobs={record['jobs']})",
        f"  cold figure-8 run : {record['cold_seconds']:>8.3f} s",
        f"  warm (cached) run : {record['warm_seconds']:>8.3f} s"
        f"   ({record['warm_speedup']}x speedup)",
        f"  pipeline model    : {record['pipeline_ips']:>8,} instr/s"
        f" ({record['pipeline_instructions']:,} instrs"
        f" in {record['pipeline_seconds']} s)",
    ])
