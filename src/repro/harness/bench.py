"""Harness performance benchmark (``python -m repro bench``).

Times the three layers the performance work targets and records them in
``BENCH_harness.json`` so the perf trajectory is tracked across commits:

* **cold** — a Figure-8 regeneration against an empty cache (trace
  generation + simulation for every variant);
* **warm** — the same regeneration against the now-populated persistent
  cache (must be at least ~5x faster; warm runs only read JSON and
  columnar RPTR2 traces);
* **pipeline throughput** — committed instructions per second of the
  timing model itself, measured **per kernel backend** (pure-Python
  walker and, when available, the vectorized NumPy kernel) on one long
  pointer-chase trace (LL/BASE) *and* on a miss-heavy hash-map trace
  that is classification-bound (HM/BASE grown past L1), plus a *sweep*
  number over every recorded bench variant (best-of-N per trace,
  columns/segments prewarmed — see ``docs/PERFORMANCE.md``).  The NumPy
  kernel's best rep is attributed per phase (classify vs solve), and
  ``classify_ips`` reports the classification pass's own throughput on
  the miss-heavy cell.

The headline ``pipeline_ips`` is the sustained single-trace number for
the *active* backend; ``pipeline_ips_by_backend`` carries both
backends measured like-for-like in the same process, so the record
demonstrates the kernel speedup on every machine that writes one.

The bench uses a temporary cache directory so it never reads from (or
pollutes) the user's ``.repro-cache``.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import tempfile
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

from repro.harness import cache as disk_cache
from repro.harness.figures import fig8_overheads
from repro.harness.parallel import default_jobs
from repro.harness.runner import all_benchmarks, build_trace, clear_trace_cache
from repro.txn.modes import PersistMode
from repro.uarch.classify import resolve_mode as resolve_classify_mode
from repro.uarch.config import MachineConfig
from repro.uarch import kernel as kernel_mod
from repro.uarch.kernel import numpy_available, resolve_backend
from repro.uarch.pipeline import simulate
from repro.uarch.system import SystemModel
from repro.workloads.concurrent import generate_concurrent

#: Subset used by ``bench --quick`` (CI smoke): the cheapest two traces.
QUICK_BENCHMARKS = ("LL", "GH")

DEFAULT_OUTPUT = "BENCH_harness.json"

#: Version of the *bench record* layout itself — independent of
#: :data:`repro.harness.cache.CACHE_SCHEMA_VERSION`, which keys the
#: persistent trace/stats store.  2: added ``schema``/``cache_schema``
#: split, ``git_rev``, and ``timestamp_utc`` fields.  3: added
#: ``cold_cache``/``warm_cache`` hit/miss counter deltas per phase.
#: 4: ``pipeline_ips`` became the sustained single-trace throughput of
#: the active kernel backend (previously an aggregate over the small
#: bench variants, now recorded as ``sweep_ips``); added
#: ``kernel_backend``, ``pipeline_ips_by_backend``,
#: ``sweep_ips_by_backend``, and the ``pipeline_trace`` descriptor.
#: 5: added ``system_ips`` — aggregate multi-core throughput of the
#: :class:`~repro.uarch.system.SystemModel` co-simulation driver (total
#: committed instructions across cores per wall-clock second, conflicts
#: included) with its ``system_trace`` descriptor.  Tracked, no floor
#: enforced yet.
#: 6: added the miss-heavy sustained cell (``miss_trace``,
#: ``miss_instructions``, ``miss_seconds``, ``miss_ips``,
#: ``miss_ips_by_backend`` with its own ``MISS_IPS_FLOORS``), the
#: per-phase attribution of the NumPy kernel's best sustained rep
#: (``pipeline_phase_seconds``/``miss_phase_seconds``, classify vs
#: solve), and ``classify_ips`` — committed instructions per second of
#: classification time alone on the miss-heavy trace, the direct
#: microbench of the classification pass.
#: 7: added host provenance (``python_version``, ``numpy_version``,
#: ``cpu_count``) so history records are comparable across machines,
#: and the append-only ``BENCH_history.jsonl`` trail every run joins
#: (``bench --compare`` reads it — see :func:`compare_to_history`).
BENCH_SCHEMA_VERSION = 7

#: Append-only JSON-lines trail of every bench record ever taken on
#: this checkout; ``bench --compare`` mines it for the best comparable
#: prior record per metric.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Throughput metrics tracked by ``bench --compare``, and the relative
#: drop against the best comparable prior measurement that counts as a
#: regression.  0.25 leaves room for host noise (frequency scaling,
#: noisy CI neighbours) while catching the order-of-magnitude cliffs
#: the floors exist for — but, unlike the static floors, relative to
#: *this machine's* own history.
COMPARE_TOLERANCE = 0.25
COMPARE_METRICS = (
    "pipeline_ips_by_backend",
    "miss_ips_by_backend",
    "sweep_ips_by_backend",
    "classify_ips",
    "system_ips",
)

#: Sustained-throughput trace: the paper's linked-list benchmark on the
#: unfenced baseline, scaled up until per-run fixed costs vanish (a few
#: hundred thousand micro-ops of pointer chasing, field accesses, and
#: list surgery with no persist events).  One long BASE trace isolates
#: the pipeline model's steady-state speed from the event-handling and
#: cache-layer costs that the cold/warm phases already track.  Quick
#: mode uses a shorter run so CI stays fast.
SUSTAINED_BENCHMARK = "LL"
SUSTAINED_SIM_OPS = 200
SUSTAINED_SIM_OPS_QUICK = 60

#: Miss-heavy sustained cell: the hash-map benchmark grown far past L1
#: (a long randomized init walks the table over every cache set, then
#: the timed ops chase buckets with no locality), so the classification
#: pass — not the recurrence solve — is what this cell measures.  The
#: LL cell above is hit-dominated and barely exercises the miss walk;
#: CI enforcing only it would let classification regressions ship.
MISS_BENCHMARK = "HM"
MISS_INIT_OPS = 20_000
MISS_SIM_OPS = 5_000
MISS_SIM_OPS_QUICK = 1_200

#: Multi-core throughput cell: a moderately contended 2-core hash-map
#: run on the speculative machine, so the measurement covers the whole
#: co-simulation driver — min-clock scheduling, store broadcasts, BLT
#: probes, and abort/replay — not just the per-core exact loops.
SYSTEM_BENCHMARK = "HM"
SYSTEM_CORES = 2
SYSTEM_CONTENTION = 0.5
SYSTEM_SIM_OPS = 200
SYSTEM_SIM_OPS_QUICK = 60

#: Per-backend regression floors for ``bench --enforce-floor`` (CI):
#: the run fails if a measured backend's sustained ``pipeline_ips``
#: lands below its floor.  Set to roughly half the throughput measured
#: on a developer machine, leaving headroom for slower CI hardware
#: while still catching order-of-magnitude regressions (the Python
#: walker sliding back to per-``Instr`` dispatch, the NumPy kernel
#: silently degrading to the walker).
PIPELINE_IPS_FLOORS = {"python": 800_000, "numpy": 3_500_000}

#: Floors for the miss-heavy sustained cell (``miss_ips_by_backend``):
#: same half-of-measured policy, sized to the classification-bound
#: regime where throughput is far below the LL cell's.
MISS_IPS_FLOORS = {"python": 250_000, "numpy": 1_000_000}

#: Backwards-compatible alias: the floor every backend must clear.
PIPELINE_IPS_FLOOR = PIPELINE_IPS_FLOORS["python"]


def _host_provenance() -> Dict[str, object]:
    """Interpreter / numpy / host facts stamped into every record, so a
    history comparison can tell a code regression from a toolchain or
    machine change."""
    import platform

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python_version": platform.python_version(),
        "numpy_version": numpy_version,
        "cpu_count": os.cpu_count(),
    }


def _git_rev() -> Optional[str]:
    """The short git revision of the working tree, or ``None`` outside a
    checkout (benches must work from tarballs too)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, ValueError, subprocess.SubprocessError):
        # git missing, hung (TimeoutExpired), unrunnable, or emitting
        # undecodable output — the record is still useful without a rev
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@contextmanager
def _isolated_cache(root: str):
    """Point the persistent cache at *root* for the duration of the bench."""
    saved_dir = os.environ.get(disk_cache.ENV_CACHE_DIR)
    saved_off = os.environ.get(disk_cache.ENV_NO_CACHE)
    os.environ[disk_cache.ENV_CACHE_DIR] = root
    os.environ.pop(disk_cache.ENV_NO_CACHE, None)
    # a runtime cache degrade (ENOSPC elsewhere) must not leak into the
    # bench's isolated store, which lives on a fresh temp directory
    disk_cache.reset_runtime_disable()
    try:
        yield
    finally:
        if saved_dir is None:
            os.environ.pop(disk_cache.ENV_CACHE_DIR, None)
        else:
            os.environ[disk_cache.ENV_CACHE_DIR] = saved_dir
        if saved_off is not None:
            os.environ[disk_cache.ENV_NO_CACHE] = saved_off


def run_bench(
    quick: bool = False,
    output: Optional[str] = DEFAULT_OUTPUT,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 7,
    history: Optional[str] = None,
) -> Dict[str, object]:
    """Run the harness benchmark; returns (and optionally writes) the record.

    With *history*, the record is additionally appended to that
    JSON-lines trail (one record per line; see :func:`append_history`) —
    the CLI passes ``BENCH_history.jsonl`` so every bench run feeds the
    regression-tracking corpus ``bench --compare`` mines."""
    names: List[str] = list(
        benchmarks or (QUICK_BENCHMARKS if quick else all_benchmarks())
    )

    def _counter_delta(
        after: Dict[str, int], before: Dict[str, int]
    ) -> Dict[str, int]:
        return {key: after[key] - before.get(key, 0) for key in after}

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with _isolated_cache(tmp):
            clear_trace_cache()
            counters_start = disk_cache.cache_counters().as_dict()
            t0 = time.perf_counter()
            fig8_overheads(names, seed=seed)
            cold = time.perf_counter() - t0
            counters_cold = disk_cache.cache_counters().as_dict()

            # drop the in-process memo so the warm run exercises the disk
            # cache, exactly like a fresh process against .repro-cache
            clear_trace_cache()
            t0 = time.perf_counter()
            fig8_overheads(names, seed=seed)
            warm = time.perf_counter() - t0
            counters_warm = disk_cache.cache_counters().as_dict()

            # pipeline throughput: re-simulate recorded traces (cache
            # hits now) on the baseline machine and count committed
            # instructions per wall-clock second, once per kernel
            # backend so the record carries a like-for-like comparison.
            # Columns and segments are memoized per-trace artifacts
            # amortised over every simulation of that trace, so they
            # are built outside the timer; per-trace best-of-N damps
            # scheduler noise so the number tracks the model, not the
            # machine's mood.  GC is paused across the timed region —
            # the cold sweep above leaves plenty of garbage, and a
            # collection pause inside a 20 ms sample would swamp the
            # measurement.
            backends = ["python"] + (["numpy"] if numpy_available() else [])
            active_backend = resolve_backend(None)
            reps = 5
            variants = []
            for ab in names:
                for mode in (PersistMode.BASE, PersistMode.LOG_P_SF):
                    trace = build_trace(ab, mode, seed=seed)
                    trace.columns()
                    trace.segments()
                    variants.append(trace)
            sustained_ops = SUSTAINED_SIM_OPS_QUICK if quick else SUSTAINED_SIM_OPS
            sustained = build_trace(
                SUSTAINED_BENCHMARK, PersistMode.BASE, seed=seed,
                sim_ops=sustained_ops,
            )
            sustained.columns()
            sustained.segments()
            miss_ops = MISS_SIM_OPS_QUICK if quick else MISS_SIM_OPS
            miss = build_trace(
                MISS_BENCHMARK, PersistMode.BASE, seed=seed,
                init_ops=MISS_INIT_OPS, sim_ops=miss_ops,
            )
            miss.columns()
            miss.segments()
            system_ops = SYSTEM_SIM_OPS_QUICK if quick else SYSTEM_SIM_OPS
            system_run = generate_concurrent(
                SYSTEM_BENCHMARK, PersistMode.LOG_P_SF,
                n_cores=SYSTEM_CORES, contention=SYSTEM_CONTENTION,
                seed=seed, sim_ops=system_ops,
            )
            for trace in system_run.traces:
                trace.columns()

            sweep_best = {
                backend: [float("inf")] * len(variants) for backend in backends
            }
            sustained_best = {backend: float("inf") for backend in backends}
            miss_best = {backend: float("inf") for backend in backends}
            sweep_instructions = 0
            sustained_instructions = 0
            miss_instructions = 0
            sustained_phases: Optional[Dict[str, float]] = None
            miss_phases: Optional[Dict[str, float]] = None
            gc_was_enabled = gc.isenabled()
            gc.collect()
            gc.disable()
            try:
                # round-interleaved sampling: each trace's reps are spread
                # across the whole measurement window instead of run
                # back-to-back, so a transient slow spell (scheduler,
                # frequency scaling) can't poison every sample of one trace
                for rep in range(reps):
                    for backend in backends:
                        for i, trace in enumerate(variants):
                            t0 = time.perf_counter()
                            stats = simulate(trace, MachineConfig(), kernel=backend)
                            elapsed = time.perf_counter() - t0
                            if elapsed < sweep_best[backend][i]:
                                sweep_best[backend][i] = elapsed
                            if rep == 0 and backend == backends[0]:
                                sweep_instructions += stats.instructions
                for rep in range(reps):
                    for backend in backends:
                        kernel_mod.reset_phase_seconds()
                        t0 = time.perf_counter()
                        stats = simulate(sustained, MachineConfig(), kernel=backend)
                        elapsed = time.perf_counter() - t0
                        if elapsed < sustained_best[backend]:
                            sustained_best[backend] = elapsed
                            if backend == "numpy":
                                sustained_phases = kernel_mod.phase_seconds()
                        sustained_instructions = stats.instructions
                for rep in range(reps):
                    for backend in backends:
                        kernel_mod.reset_phase_seconds()
                        t0 = time.perf_counter()
                        stats = simulate(miss, MachineConfig(), kernel=backend)
                        elapsed = time.perf_counter() - t0
                        if elapsed < miss_best[backend]:
                            miss_best[backend] = elapsed
                            if backend == "numpy":
                                miss_phases = kernel_mod.phase_seconds()
                        miss_instructions = stats.instructions
                # multi-core driver throughput (backend-independent: the
                # co-sim driver always walks the exact loop); a fresh
                # SystemModel per rep, since core stats accumulate
                system_best = float("inf")
                system_instructions = 0
                sp_config = MachineConfig().with_sp(256)
                for rep in range(reps):
                    system = SystemModel(sp_config, n_cores=SYSTEM_CORES)
                    t0 = time.perf_counter()
                    result = system.run(system_run.traces)
                    elapsed = time.perf_counter() - t0
                    if elapsed < system_best:
                        system_best = elapsed
                    system_instructions = sum(
                        stats.instructions for stats in result.per_core
                    )
            finally:
                if gc_was_enabled:
                    gc.enable()
            sweep_seconds = {
                backend: sum(times) for backend, times in sweep_best.items()
            }
            sweep_ips = {
                backend: round(sweep_instructions / seconds)
                for backend, seconds in sweep_seconds.items()
                if seconds
            }
            pipeline_ips = {
                backend: round(sustained_instructions / seconds)
                for backend, seconds in sustained_best.items()
                if seconds
            }
            miss_ips = {
                backend: round(miss_instructions / seconds)
                for backend, seconds in miss_best.items()
                if seconds
            }
        clear_trace_cache()

    def _round_phases(phases: Optional[Dict[str, float]]):
        if not phases:
            return None
        return {name: round(seconds, 4) for name, seconds in phases.items()}

    classify_seconds = (miss_phases or {}).get("classify", 0.0)
    classify_ips = (
        round(miss_instructions / classify_seconds) if classify_seconds else None
    )

    record: Dict[str, object] = {
        "bench": "harness",
        "schema": BENCH_SCHEMA_VERSION,
        "cache_schema": disk_cache.CACHE_SCHEMA_VERSION,
        "git_rev": _git_rev(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        **_host_provenance(),
        "quick": quick,
        "benchmarks": names,
        "jobs": default_jobs(),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 3),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
        "cold_cache": _counter_delta(counters_cold, counters_start),
        "warm_cache": _counter_delta(counters_warm, counters_cold),
        "kernel_backend": active_backend,
        "pipeline_trace": {
            "benchmark": SUSTAINED_BENCHMARK,
            "mode": PersistMode.BASE.value,
            "sim_ops": sustained_ops,
        },
        "pipeline_instructions": sustained_instructions,
        "pipeline_reps": reps,
        "pipeline_seconds": round(sustained_best.get(active_backend, 0.0), 3),
        "pipeline_ips": pipeline_ips.get(active_backend),
        "pipeline_ips_by_backend": pipeline_ips,
        "pipeline_phase_seconds": _round_phases(sustained_phases),
        "classify_mode": resolve_classify_mode(None),
        "miss_trace": {
            "benchmark": MISS_BENCHMARK,
            "mode": PersistMode.BASE.value,
            "init_ops": MISS_INIT_OPS,
            "sim_ops": miss_ops,
        },
        "miss_instructions": miss_instructions,
        "miss_seconds": round(miss_best.get(active_backend, 0.0), 3),
        "miss_ips": miss_ips.get(active_backend),
        "miss_ips_by_backend": miss_ips,
        "miss_phase_seconds": _round_phases(miss_phases),
        "classify_ips": classify_ips,
        "sweep_instructions": sweep_instructions,
        "sweep_seconds": round(sweep_seconds.get(active_backend, 0.0), 3),
        "sweep_ips": sweep_ips.get(active_backend),
        "sweep_ips_by_backend": sweep_ips,
        "system_trace": {
            "benchmark": SYSTEM_BENCHMARK,
            "mode": PersistMode.LOG_P_SF.value,
            "cores": SYSTEM_CORES,
            "contention": SYSTEM_CONTENTION,
            "sim_ops": system_ops,
        },
        "system_instructions": system_instructions,
        "system_seconds": round(system_best, 3),
        "system_ips": (
            round(system_instructions / system_best) if system_best else None
        ),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if history:
        append_history(record, history)
    return record


# ----------------------------------------------------------------------
# bench history: append-only trail + regression comparison
# ----------------------------------------------------------------------
def append_history(record: Dict[str, object], path: str = DEFAULT_HISTORY) -> None:
    """Append *record* as one JSON line to the history trail.

    The whole line goes down in a single ``write(2)`` on an ``O_APPEND``
    descriptor: POSIX appends are atomic per write, so concurrent bench
    runs — routine under ``repro serve`` — interleave whole lines, never
    partial ones.  (Buffered ``file.write`` offers no such guarantee:
    the libc buffer may flush mid-line.)
    """
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def load_history(path: str = DEFAULT_HISTORY) -> List[Dict[str, object]]:
    """Every parseable record in the trail, oldest first.

    Unparseable lines are skipped, not fatal: a run killed mid-append
    leaves a torn last line, and one bad write must not brick every
    future comparison.
    """
    records: List[Dict[str, object]] = []
    try:
        with open(path, "r") as handle:
            lines = handle.readlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            continue
        if isinstance(parsed, dict):
            records.append(parsed)
    return records


def _comparable_metrics(record: Dict[str, object]) -> Dict[str, float]:
    """Flatten the tracked throughput metrics of one record into
    ``metric[/backend] -> ips`` (missing/null measurements dropped)."""
    flat: Dict[str, float] = {}
    for metric in COMPARE_METRICS:
        value = record.get(metric)
        if isinstance(value, dict):
            for backend, ips in value.items():
                if isinstance(ips, (int, float)) and ips > 0:
                    flat[f"{metric}/{backend}"] = float(ips)
        elif isinstance(value, (int, float)) and value > 0:
            flat[metric] = float(value)
    return flat


def comparable(record: Dict[str, object], prior: Dict[str, object]) -> bool:
    """Whether *prior* is a like-for-like baseline for *record*: same
    quick/full shape, same active kernel backend, and same classify
    mode — anything else measures a different configuration, not a
    regression."""
    keys = ("quick", "kernel_backend", "classify_mode")
    return all(prior.get(key) == record.get(key) for key in keys)


def compare_to_history(
    record: Dict[str, object],
    history: Sequence[Dict[str, object]],
    tolerance: float = COMPARE_TOLERANCE,
    ref: Optional[str] = None,
) -> Dict[str, object]:
    """Compare *record* against the best comparable prior measurements.

    For each tracked metric, the baseline is the **best** value over the
    comparable history records (with *ref*, only records whose
    ``git_rev`` starts with it) — best-of-history damps the noise a
    single slow baseline run would inject.  A metric regresses when it
    lands below ``baseline * (1 - tolerance)``.

    Returns ``{"compared", "baselines", "regressions", "improvements"}``
    where ``regressions`` is a list of human-readable findings (empty =
    pass) and ``compared`` counts the history records consulted.  A
    warn-only CI gate prints the findings without failing the build.
    """
    current = _comparable_metrics(record)
    candidates = [prior for prior in history if comparable(record, prior)]
    if ref:
        candidates = [
            prior for prior in candidates
            if str(prior.get("git_rev") or "").startswith(ref)
        ]
    baselines: Dict[str, Dict[str, object]] = {}
    for prior in candidates:
        for name, ips in _comparable_metrics(prior).items():
            best = baselines.get(name)
            if best is None or ips > best["ips"]:
                baselines[name] = {
                    "ips": ips,
                    "git_rev": prior.get("git_rev"),
                    "timestamp_utc": prior.get("timestamp_utc"),
                }
    regressions: List[str] = []
    improvements: List[str] = []
    for name, baseline in sorted(baselines.items()):
        now = current.get(name)
        if now is None:
            regressions.append(
                f"{name}: measured {baseline['ips']:,.0f} instr/s at "
                f"{baseline['git_rev']}, missing from this record"
            )
            continue
        floor = baseline["ips"] * (1.0 - tolerance)
        if now < floor:
            regressions.append(
                f"{name}: {now:,.0f} instr/s is {1 - now / baseline['ips']:.0%}"
                f" below the best prior {baseline['ips']:,.0f}"
                f" ({baseline['git_rev']} @ {baseline['timestamp_utc']};"
                f" tolerance {tolerance:.0%})"
            )
        elif now > baseline["ips"]:
            improvements.append(
                f"{name}: {now:,.0f} instr/s beats the best prior "
                f"{baseline['ips']:,.0f}"
            )
    return {
        "compared": len(candidates),
        "baselines": baselines,
        "regressions": regressions,
        "improvements": improvements,
    }


def render_compare(result: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`compare_to_history` result."""
    compared = result.get("compared", 0)
    if not compared:
        return "bench compare: no comparable history records (trail starts here)"
    lines = [
        f"bench compare: {compared} comparable history records,"
        f" {len(result['baselines'])} metrics"
    ]
    regressions = result.get("regressions") or []
    improvements = result.get("improvements") or []
    for finding in regressions:
        lines.append(f"  REGRESSION {finding}")
    for finding in improvements:
        lines.append(f"  improved   {finding}")
    if not regressions:
        lines.append("  no regressions beyond tolerance")
    return "\n".join(lines)


def _fmt(value: object, spec: str = "", missing: str = "n/a") -> str:
    """Format *value* with *spec*, or a placeholder when it is ``None``.

    Bench records from interrupted or degenerate runs (zero measured
    seconds, no git checkout) legitimately carry ``None`` fields; the
    renderer must not crash on them.
    """
    if value is None:
        return missing
    return format(value, spec)


def render_bench(record: Dict[str, object]) -> str:
    """Human-readable summary of a bench record (``None``-field safe)."""
    provenance = []
    if record.get("git_rev"):
        provenance.append(str(record["git_rev"]))
    if record.get("timestamp_utc"):
        provenance.append(str(record["timestamp_utc"]))
    lines = [
        f"harness bench ({'quick, ' if record.get('quick') else ''}"
        f"{len(record.get('benchmarks') or [])} benchmarks,"
        f" jobs={_fmt(record.get('jobs'))},"
        f" kernel={_fmt(record.get('kernel_backend'))})",
        f"  cold figure-8 run : {_fmt(record.get('cold_seconds'), '>8.3f')} s",
        f"  warm (cached) run : {_fmt(record.get('warm_seconds'), '>8.3f')} s"
        f"   ({_fmt(record.get('warm_speedup'))}x speedup)",
        f"  pipeline model    : {_fmt(record.get('pipeline_ips'), '>8,')} instr/s"
        f" sustained ({_fmt(record.get('pipeline_instructions'), ',')} instrs"
        f" in {_fmt(record.get('pipeline_seconds'))} s)",
    ]
    by_backend = record.get("pipeline_ips_by_backend")
    sweep_by_backend = record.get("sweep_ips_by_backend") or {}
    if isinstance(by_backend, dict) and by_backend:
        for backend in sorted(by_backend):
            sweep = sweep_by_backend.get(backend)
            lines.append(
                f"    {backend:<8}        : {_fmt(by_backend[backend], '>8,')}"
                f" instr/s sustained,"
                f" {_fmt(sweep, ',')} instr/s variant sweep"
            )
    elif record.get("sweep_ips") is not None:
        lines.append(
            f"  variant sweep     : {_fmt(record.get('sweep_ips'), '>8,')} instr/s"
        )
    if record.get("miss_ips") is not None:
        lines.append(
            f"  miss-heavy model  : {_fmt(record.get('miss_ips'), '>8,')} instr/s"
            f" sustained ({_fmt(record.get('miss_instructions'), ',')} instrs"
            f" in {_fmt(record.get('miss_seconds'))} s)"
        )
        miss_by_backend = record.get("miss_ips_by_backend")
        if isinstance(miss_by_backend, dict) and miss_by_backend:
            for backend in sorted(miss_by_backend):
                lines.append(
                    f"    {backend:<8}        : "
                    f"{_fmt(miss_by_backend[backend], '>8,')} instr/s sustained"
                )
    phases = record.get("miss_phase_seconds")
    if isinstance(phases, dict) and phases:
        split = ", ".join(
            f"{name} {_fmt(seconds, '.3f')} s" for name, seconds in sorted(phases.items())
        )
        lines.append(
            f"  kernel phase split: {split}"
            f" (classify_ips {_fmt(record.get('classify_ips'), ',')})"
        )
    if record.get("system_ips") is not None:
        descriptor = record.get("system_trace") or {}
        lines.append(
            f"  multi-core system : {_fmt(record.get('system_ips'), '>8,')} instr/s"
            f" aggregate ({_fmt(descriptor.get('cores'))} cores,"
            f" p={_fmt(descriptor.get('contention'))})"
        )
    for phase in ("cold", "warm"):
        counters = record.get(f"{phase}_cache")
        if isinstance(counters, dict):
            hits = counters.get("trace_hits", 0) + counters.get("stats_hits", 0)
            misses = (
                counters.get("trace_misses", 0) + counters.get("stats_misses", 0)
            )
            lines.append(
                f"  {phase} cache        : {hits} hits / {misses} misses"
                f" (coordinator process)"
            )
    if provenance:
        lines.append(f"  recorded at       : {' @ '.join(reversed(provenance))}")
    return "\n".join(lines)


def check_floor(
    record: Dict[str, object], floors: Optional[Dict[str, int]] = None
) -> Optional[str]:
    """Return an error message if any measured backend's sustained
    ``pipeline_ips`` is below its floor (or the measurement is missing),
    else ``None``.  CI runs the quick bench with ``--enforce-floor`` so
    a regression — the walker sliding back to per-object dispatch, or
    the NumPy kernel silently degrading to walker speed — fails the
    build instead of silently shipping.  Only backends actually measured
    are checked, so the no-NumPy CI leg enforces the Python floor
    alone."""
    floors = PIPELINE_IPS_FLOORS if floors is None else floors
    by_backend = record.get("pipeline_ips_by_backend")
    if not isinstance(by_backend, dict) or not by_backend:
        # pre-v4 records carried one aggregate number
        ips = record.get("pipeline_ips")
        if ips is None:
            return "bench record has no pipeline_ips measurement"
        by_backend = {"python": ips}
    problems = []
    for backend, ips in sorted(by_backend.items()):
        floor = floors.get(backend)
        if floor is not None and ips < floor:
            problems.append(
                f"pipeline throughput regression ({backend} backend): "
                f"{ips:,} instr/s is below the checked-in floor of "
                f"{floor:,} instr/s"
            )
    # the miss-heavy cell has its own floors (absent in pre-v6 records);
    # only enforced when default floors are in effect, so callers passing
    # explicit LL floors keep the old single-cell contract
    miss_by_backend = record.get("miss_ips_by_backend")
    if floors is PIPELINE_IPS_FLOORS and isinstance(miss_by_backend, dict):
        for backend, ips in sorted(miss_by_backend.items()):
            floor = MISS_IPS_FLOORS.get(backend)
            if floor is not None and ips < floor:
                problems.append(
                    f"miss-heavy throughput regression ({backend} backend): "
                    f"{ips:,} instr/s is below the checked-in floor of "
                    f"{floor:,} instr/s"
                )
    return "; ".join(problems) if problems else None
