"""Worker transports: where campaign cells execute.

The supervisor (:mod:`repro.harness.supervisor`) drives a list of tasks
— trace generations and simulations — to completion.  *Where* each task
runs is this module's job:

* the ``local`` transport is the existing in-process
  :class:`~concurrent.futures.ProcessPoolExecutor` pool (the supervisor
  uses it directly; this module only names it);
* the ``http`` transport fans cells out to remote workers
  (``python -m repro worker --listen HOST:PORT``) over a minimal
  line-delimited JSON job protocol, with the coordinator's campaign
  journal staying the single source of truth.

Remote execution is treated as hostile by construction:

* every request has a wall-clock deadline (``REPRO_NET_TIMEOUT``) and
  failed attempts retry with the supervisor's seeded exponential
  backoff + jitter, so a rerun of a flaky campaign schedules
  identically;
* workers are heartbeated (``GET /healthz``); a peer that stops
  answering is marked dead and its jobs are reassigned to survivors;
* a worker that keeps failing is quarantined for a bounded window
  (``REPRO_WORKER_QUARANTINE`` seconds), then re-probed; repeat
  offenders are dropped from the fleet for the campaign;
* every response is a CRC-32 envelope (the PR-5 stats container
  format); a garbled payload is rejected and the attempt retried —
  corrupt bytes can never become results;
* the degradation ladder is total: fleet -> surviving workers -> local
  process pool -> in-process serial.  A dead fleet costs time, never
  correctness, and every rung transition is counted in
  :mod:`repro.obs.telemetry` / the metrics line.

``REPRO_CHAOS`` gains four network fault classes — ``drop:p`` (response
lost after the worker did the work), ``delay:p`` (latency pushed past
the deadline), ``garble:p`` (response bytes flipped), ``partition:p``
(peer unreachable) — injected client-side, deterministic per
``(seed, job digest, attempt)``, so chaos campaigns replay identically.

See ``docs/RESILIENCE.md`` §8 for the protocol sketch and policies.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import os
import random
import socket
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.harness import cache as disk_cache
from repro.harness.runner import TraceKey
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry
from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import CacheConfig, MachineConfig

ENV_TRANSPORT = "REPRO_TRANSPORT"
ENV_WORKERS = "REPRO_WORKERS"
ENV_NET_TIMEOUT = "REPRO_NET_TIMEOUT"
ENV_WORKER_MAX_FAILURES = "REPRO_WORKER_MAX_FAILURES"
ENV_WORKER_QUARANTINE = "REPRO_WORKER_QUARANTINE"
ENV_WORKER_MAX_QUARANTINES = "REPRO_WORKER_MAX_QUARANTINES"
ENV_HEARTBEAT_INTERVAL = "REPRO_HEARTBEAT_INTERVAL"
ENV_HEARTBEAT_MISSES = "REPRO_HEARTBEAT_MISSES"

#: Version of the wire protocol (requests and response records).
PROTOCOL_VERSION = 1

TRANSPORTS = ("local", "http")


class TransportConfigError(ValueError):
    """The transport selection is unusable (e.g. ``http`` with no workers)."""


class TransportProtocolError(ValueError):
    """A peer's payload failed to parse or verify (CRC, shape, schema)."""


# ----------------------------------------------------------------------
# transport selection (mirrors supervisor.set_enabled's CLI plumbing)
# ----------------------------------------------------------------------
_TRANSPORT_OVERRIDE: Optional[str] = None
_WORKERS_OVERRIDE: Optional[List[str]] = None


def set_transport(name: Optional[str]) -> None:
    """CLI override for the campaign transport (``--transport``)."""
    global _TRANSPORT_OVERRIDE
    if name is not None and name not in TRANSPORTS:
        raise TransportConfigError(
            f"unknown transport {name!r} (expected one of {TRANSPORTS})"
        )
    _TRANSPORT_OVERRIDE = name


def set_workers(addresses: Optional[Sequence[str]]) -> None:
    """CLI override for the http worker endpoints (``--workers``)."""
    global _WORKERS_OVERRIDE
    if addresses is None:
        _WORKERS_OVERRIDE = None
        return
    _WORKERS_OVERRIDE = [addr for addr in addresses if addr.strip()]


def reset() -> None:
    """Restore default transport state (tests)."""
    global _TRANSPORT_OVERRIDE, _WORKERS_OVERRIDE
    _TRANSPORT_OVERRIDE = None
    _WORKERS_OVERRIDE = None


def configured_transport(environ=os.environ) -> str:
    """The active transport name: CLI override, then env, then ``local``."""
    if _TRANSPORT_OVERRIDE is not None:
        return _TRANSPORT_OVERRIDE
    name = environ.get(ENV_TRANSPORT, "").strip() or "local"
    if name not in TRANSPORTS:
        raise TransportConfigError(
            f"unknown {ENV_TRANSPORT}={name!r} (expected one of {TRANSPORTS})"
        )
    return name


def worker_addresses(environ=os.environ) -> List[str]:
    """The configured http worker endpoints (possibly empty)."""
    if _WORKERS_OVERRIDE is not None:
        return list(_WORKERS_OVERRIDE)
    raw = environ.get(ENV_WORKERS, "")
    return [part.strip() for part in raw.split(",") if part.strip()]


def parse_hostport(address: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``"host:port"`` (bare ``":port"`` binds the default host)."""
    host, sep, port_text = address.rpartition(":")
    if not sep:
        raise TransportConfigError(f"worker address {address!r} needs host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise TransportConfigError(
            f"bad port in worker address {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise TransportConfigError(f"port out of range in {address!r}")
    return (host or default_host), port


# ----------------------------------------------------------------------
# wire protocol: job requests and CRC-enveloped response records
# ----------------------------------------------------------------------
def encode_key(key: TraceKey) -> Dict[str, object]:
    return {
        "abbrev": key.abbrev,
        "mode": key.mode.value,
        "seed": key.seed,
        "init_ops": key.init_ops,
        "sim_ops": key.sim_ops,
        "cores": key.cores,
        "contention": key.contention,
    }


def decode_key(payload: Dict[str, object]) -> TraceKey:
    try:
        return TraceKey(
            abbrev=str(payload["abbrev"]),
            mode=PersistMode(payload["mode"]),
            seed=int(payload["seed"]),
            init_ops=payload.get("init_ops"),
            sim_ops=payload.get("sim_ops"),
            cores=int(payload.get("cores", 1)),
            contention=float(payload.get("contention", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportProtocolError(f"bad trace key: {exc}") from None


def encode_config(config: MachineConfig) -> Dict[str, object]:
    return dataclasses.asdict(config)


def decode_config(payload: Dict[str, object]) -> MachineConfig:
    try:
        fields = dict(payload)
        for level in ("l1", "l2", "l3"):
            fields[level] = CacheConfig(**fields[level])
        return MachineConfig(**fields)
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportProtocolError(f"bad machine config: {exc}") from None


def encode_job(
    kind: str,
    key: TraceKey,
    config: Optional[MachineConfig],
    digest: str,
    attempt: int,
) -> bytes:
    """One job request as a ``\\n``-terminated JSON line."""
    payload = {
        "schema": PROTOCOL_VERSION,
        "kind": kind,
        "key": encode_key(key),
        "config": None if config is None else encode_config(config),
        "digest": digest,
        "attempt": attempt,
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def decode_job(blob: bytes):
    """Parse a job request; returns ``(kind, key, config, digest, attempt)``."""
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise TransportProtocolError(f"unparseable job request: {exc}") from None
    if not isinstance(payload, dict):
        raise TransportProtocolError("job request is not an object")
    if payload.get("schema") != PROTOCOL_VERSION:
        raise TransportProtocolError(
            f"protocol schema mismatch: {payload.get('schema')!r}"
        )
    kind = payload.get("kind")
    if kind not in ("trace", "sim"):
        raise TransportProtocolError(f"unknown job kind {kind!r}")
    key = decode_key(payload.get("key") or {})
    config = None
    if payload.get("config") is not None:
        config = decode_config(payload["config"])
    if kind == "sim" and config is None:
        raise TransportProtocolError("sim job without a machine config")
    digest = payload.get("digest")
    if not isinstance(digest, str) or not digest:
        raise TransportProtocolError("job request without a digest")
    return kind, key, config, digest, int(payload.get("attempt", 0))


def seal_record(record: Dict[str, object]) -> bytes:
    """Wrap *record* in the PR-5 CRC-32 integrity envelope (one JSON line)."""
    envelope = {
        "schema": PROTOCOL_VERSION,
        "crc": disk_cache.record_crc(record),
        "record": record,
    }
    return (
        json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def unseal_record(blob: bytes) -> Dict[str, object]:
    """Verify and unwrap a sealed response; raises on any damage."""
    try:
        envelope = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise TransportProtocolError(f"unparseable response: {exc}") from None
    if not isinstance(envelope, dict):
        raise TransportProtocolError("response is not an envelope object")
    record = envelope.get("record")
    if (
        not isinstance(record, dict)
        or "crc" not in envelope
        or disk_cache.record_crc(record) != envelope["crc"]
    ):
        raise TransportProtocolError("response record checksum mismatch")
    return record


# ----------------------------------------------------------------------
# fleet policy knobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """Timeout/heartbeat/quarantine policy of the http transport."""

    #: wall-clock deadline of one job request (``REPRO_NET_TIMEOUT``).
    request_timeout: float = 60.0
    #: consecutive failures before a worker is quarantined.
    worker_max_failures: int = 3
    #: bounded quarantine window, in seconds; the worker re-enters
    #: rotation afterwards (probation).
    worker_quarantine_s: float = 2.0
    #: quarantines tolerated before the worker is dropped for good.
    worker_max_quarantines: int = 3
    #: seconds between liveness probes of idle workers.
    heartbeat_interval: float = 1.0
    #: consecutive missed heartbeats before a worker is declared dead.
    heartbeat_max_misses: int = 3

    @classmethod
    def from_env(cls, environ=os.environ) -> "FleetConfig":
        def _float(name: str, default: float, low: float) -> float:
            try:
                return max(low, float(environ[name]))
            except (KeyError, ValueError):
                return default

        def _int(name: str, default: int, low: int) -> int:
            try:
                return max(low, int(environ[name]))
            except (KeyError, ValueError):
                return default

        return cls(
            request_timeout=_float(ENV_NET_TIMEOUT, cls.request_timeout, 0.05),
            worker_max_failures=_int(
                ENV_WORKER_MAX_FAILURES, cls.worker_max_failures, 1
            ),
            worker_quarantine_s=_float(
                ENV_WORKER_QUARANTINE, cls.worker_quarantine_s, 0.0
            ),
            worker_max_quarantines=_int(
                ENV_WORKER_MAX_QUARANTINES, cls.worker_max_quarantines, 0
            ),
            heartbeat_interval=_float(
                ENV_HEARTBEAT_INTERVAL, cls.heartbeat_interval, 0.01
            ),
            heartbeat_max_misses=_int(
                ENV_HEARTBEAT_MISSES, cls.heartbeat_max_misses, 1
            ),
        )


class _Failure(Exception):
    """One failed remote attempt, classified for blame assignment.

    ``kind`` is ``timeout`` (deadline exceeded or response lost),
    ``garble`` (payload failed the CRC/shape checks), ``http`` (non-200
    status), ``conn`` (peer unreachable — connection refused/reset), or
    ``partition`` (chaos-injected unreachability).  ``conn``/``partition``
    blame the *endpoint* and requeue the task uncharged; the rest charge
    the task an attempt.
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        super().__init__(detail or kind)
        self.kind = kind
        self.detail = detail


class _Endpoint:
    """Health state of one remote worker for one campaign."""

    __slots__ = (
        "host", "port", "label", "busy", "dead", "failures", "quarantines",
        "quarantined_until", "heartbeat_misses", "jobs_done",
        "cache_degraded_seen",
    )

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.label = f"{host}:{port}"
        self.busy = False
        self.dead = False
        self.failures = 0
        self.quarantines = 0
        self.quarantined_until = 0.0
        self.heartbeat_misses = 0
        self.jobs_done = 0
        self.cache_degraded_seen = False

    def alive(self, now: float) -> bool:
        return not self.dead and now >= self.quarantined_until

    def usable(self, now: float) -> bool:
        return self.alive(now) and not self.busy


def _garble_bytes(blob: bytes, rng: random.Random) -> bytes:
    """Deterministically damage *blob* (chaos ``garble``): truncate it or
    flip a few bytes — the CRC envelope must reject either."""
    if len(blob) < 2:
        return b"\x00"
    damaged = bytearray(blob)
    if rng.random() < 0.5:
        return bytes(damaged[: rng.randrange(1, len(damaged))])
    for _ in range(3):
        index = rng.randrange(len(damaged))
        damaged[index] ^= 1 + rng.randrange(255)
    return bytes(damaged)


def _bump(name: str, amount: int = 1) -> None:
    """Increment one transport counter, mirrored into telemetry."""
    counters = obs_metrics.transport_counters()
    setattr(counters, name, getattr(counters, name) + amount)
    telemetry.counter_inc(f"transport.{name}", amount)


# ----------------------------------------------------------------------
# the http fleet runner
# ----------------------------------------------------------------------
class FleetRunner:
    """Drive supervisor tasks across remote http workers.

    Completes what the fleet can; tasks it cannot finish (every worker
    dead, or a task exhausting its network attempts) are left not-done
    for the caller's local pool — the next rung of the degradation
    ladder.  Results are decoded from CRC envelopes and handed to the
    same ``on_done`` callbacks the local pool uses, so merge order and
    journaling are identical across transports.
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        sup_config,
        chaos,
        report,
        fleet_config: Optional[FleetConfig] = None,
    ) -> None:
        self.endpoints = [
            _Endpoint(*parse_hostport(address)) for address in endpoints
        ]
        if not self.endpoints:
            raise TransportConfigError(
                "http transport needs at least one worker "
                "(--workers or REPRO_WORKERS)"
            )
        self.sup = sup_config
        self.chaos = chaos if chaos is not None and chaos.network_active() else None
        self.report = report
        self.cfg = fleet_config or FleetConfig.from_env()
        self.counters = obs_metrics.transport_counters()

    # -- one request ---------------------------------------------------
    def _http(
        self, endpoint: _Endpoint, method: str, path: str,
        body: Optional[bytes], timeout: float,
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            endpoint.host, endpoint.port, timeout=timeout
        )
        try:
            headers = {"Content-Type": "application/x-ndjson"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _request_job(self, endpoint: _Endpoint, task, attempt: int):
        """Execute one job remotely; returns ``(record, wall_seconds)``.

        Chaos draws are deterministic in ``(seed, job digest, attempt)``:
        ``partition`` fails before any bytes move, ``drop`` loses the
        response *after* the worker did (and cached) the work, ``delay``
        models latency beyond the deadline, ``garble`` flips response
        bytes so the CRC envelope must catch them.
        """
        rng = None
        if self.chaos is not None:
            rng = random.Random(
                f"{self.chaos.seed}|net:{task.kind}:{task.digest}|{attempt}"
            )
            chaos_partition = rng.random() < self.chaos.partition
            chaos_drop = rng.random() < self.chaos.drop
            chaos_delay = rng.random() < self.chaos.delay
            chaos_garble = rng.random() < self.chaos.garble
            if chaos_partition:
                raise _Failure("partition", "chaos: peer unreachable")
            if chaos_delay:
                # model latency past the deadline without paying it in
                # real time: a short bounded sleep, then the timeout path
                time.sleep(min(0.25, self.cfg.request_timeout))
                raise _Failure("timeout", "chaos: response past deadline")
        else:
            chaos_drop = chaos_garble = False
        started = time.perf_counter()
        payload = encode_job(task.kind, task.key, task.config, task.digest, attempt)
        try:
            status, blob = self._http(
                endpoint, "POST", "/job", payload, self.cfg.request_timeout
            )
        except socket.timeout as exc:
            raise _Failure("timeout", repr(exc)) from None
        except (http.client.HTTPException, OSError) as exc:
            raise _Failure("conn", repr(exc)) from None
        wall = time.perf_counter() - started
        if chaos_drop:
            raise _Failure("timeout", "chaos: response dropped")
        if chaos_garble:
            blob = _garble_bytes(blob, rng)
        if status != 200:
            raise _Failure("http", f"status {status}")
        try:
            record = unseal_record(blob)
        except TransportProtocolError as exc:
            raise _Failure("garble", str(exc)) from None
        if (
            record.get("ok") is not True
            or record.get("digest") != task.digest
            or record.get("kind") != task.kind
        ):
            raise _Failure(
                "garble", f"response does not match job: {record.get('error')}"
            )
        return record, wall

    def _ping(self, endpoint: _Endpoint) -> bool:
        try:
            status, blob = self._http(
                endpoint, "GET", "/healthz", None,
                min(self.cfg.request_timeout, 2.0),
            )
            return status == 200 and json.loads(blob.decode()).get("ok") is True
        except (http.client.HTTPException, OSError, ValueError):
            return False

    # -- endpoint blame ------------------------------------------------
    def _mark_dead(self, endpoint: _Endpoint, reason: str) -> None:
        if endpoint.dead:
            return
        endpoint.dead = True
        _bump("dead_workers")
        self.report.event("worker_dead", endpoint.label, reason=reason)

    def _charge_endpoint(self, endpoint: _Endpoint, kind: str) -> None:
        endpoint.failures += 1
        if endpoint.failures < self.cfg.worker_max_failures:
            return
        endpoint.failures = 0
        endpoint.quarantines += 1
        if endpoint.quarantines > self.cfg.worker_max_quarantines:
            self._mark_dead(endpoint, f"repeat offender ({kind})")
            return
        endpoint.quarantined_until = (
            time.monotonic() + self.cfg.worker_quarantine_s
        )
        _bump("worker_quarantines")
        self.report.event(
            "worker_quarantine", endpoint.label,
            seconds=self.cfg.worker_quarantine_s, cause=kind,
        )

    # -- result decode -------------------------------------------------
    @staticmethod
    def _decode_result(task, record):
        if task.kind == "sim":
            result = record.get("result")
            if not isinstance(result, dict):
                raise TransportProtocolError("sim response without a record")
            try:
                return RunStats.from_dict(result)
            except (TypeError, ValueError) as exc:
                raise TransportProtocolError(f"bad stats record: {exc}") from None
        return int(record.get("result") or 0)

    # -- the loop ------------------------------------------------------
    def run(self, tasks: List, on_done: Callable) -> None:
        """Push *tasks* through the fleet; leaves the unfinishable ones
        not-done for the local fallback."""
        work = [t for t in tasks if not t.done and not t.quarantined]
        if not work:
            return
        self.report.transport = "http"
        now = time.monotonic()
        attempts: Dict[int, int] = {}
        ready_at: Dict[int, float] = {}
        last_endpoint: Dict[int, _Endpoint] = {}
        exhausted: Set[int] = set()
        flying: Set[int] = set()
        in_flight: Dict = {}
        next_heartbeat = {e: now + self.cfg.heartbeat_interval for e in self.endpoints}
        pool = ThreadPoolExecutor(max_workers=len(self.endpoints) + 1)
        try:
            while True:
                now = time.monotonic()
                pending = [
                    t for t in work
                    if not t.done and id(t) not in exhausted and id(t) not in flying
                ]
                if not in_flight:
                    if not pending:
                        break
                    if all(e.dead for e in self.endpoints):
                        break
                # submissions
                for task in pending:
                    if ready_at.get(id(task), 0.0) > now:
                        continue
                    endpoint = next(
                        (e for e in self.endpoints if e.usable(now)), None
                    )
                    if endpoint is None:
                        break
                    previous = last_endpoint.get(id(task))
                    if (
                        previous is not None
                        and previous is not endpoint
                        and not previous.alive(now)
                    ):
                        _bump("reassignments")
                        self.report.reassigned += 1
                        self.report.event(
                            "reassign", task.label,
                            source=previous.label, target=endpoint.label,
                        )
                    endpoint.busy = True
                    last_endpoint[id(task)] = endpoint
                    attempt = attempts.get(id(task), 0)
                    future = pool.submit(self._request_job, endpoint, task, attempt)
                    in_flight[future] = ("job", task, endpoint)
                    flying.add(id(task))
                    _bump("requests")
                # heartbeats for idle peers
                for endpoint in self.endpoints:
                    if endpoint.dead or endpoint.busy:
                        continue
                    if now >= next_heartbeat.get(endpoint, 0.0):
                        next_heartbeat[endpoint] = now + self.cfg.heartbeat_interval
                        future = pool.submit(self._ping, endpoint)
                        in_flight[future] = ("hb", None, endpoint)
                        _bump("heartbeats")
                if not in_flight:
                    # everything is backing off or quarantined
                    wake = [
                        ready_at[id(t)] for t in pending if id(t) in ready_at
                    ] + [
                        e.quarantined_until
                        for e in self.endpoints
                        if not e.dead and e.quarantined_until > now
                    ]
                    delay = min(wake) - now if wake else 0.05
                    time.sleep(min(0.25, max(0.0, delay)))
                    continue
                done, _pending_futures = wait(
                    set(in_flight), timeout=0.1, return_when=FIRST_COMPLETED
                )
                for future in done:
                    kind, task, endpoint = in_flight.pop(future)
                    if kind == "hb":
                        self._handle_heartbeat(future, endpoint)
                        continue
                    flying.discard(id(task))
                    endpoint.busy = False
                    try:
                        record, wall = future.result()
                        result = self._decode_result(task, record)
                    except _Failure as failure:
                        self._handle_failure(
                            task, endpoint, failure, attempts, ready_at, exhausted
                        )
                        continue
                    except TransportProtocolError as exc:
                        self._handle_failure(
                            task, endpoint, _Failure("garble", str(exc)),
                            attempts, ready_at, exhausted,
                        )
                        continue
                    self._handle_success(
                        task, endpoint, record, result, wall, on_done
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            remaining = [t for t in work if not t.done]
            if remaining:
                _bump("degraded_local")
                self.report.degraded_local = True
                self.report.event(
                    "fleet_degrade", "*", remaining=len(remaining),
                    dead=sum(e.dead for e in self.endpoints),
                )

    def _handle_heartbeat(self, future, endpoint: _Endpoint) -> None:
        try:
            ok = bool(future.result())
        except Exception:
            ok = False
        if ok:
            endpoint.heartbeat_misses = 0
            return
        endpoint.heartbeat_misses += 1
        _bump("heartbeat_misses")
        if endpoint.heartbeat_misses >= self.cfg.heartbeat_max_misses:
            self._mark_dead(
                endpoint,
                f"{endpoint.heartbeat_misses} missed heartbeats",
            )

    def _handle_success(
        self, task, endpoint: _Endpoint, record, result, wall, on_done
    ) -> None:
        endpoint.failures = 0
        endpoint.heartbeat_misses = 0
        endpoint.jobs_done += 1
        degraded = record.get("cache_degraded")
        if degraded and not endpoint.cache_degraded_seen:
            endpoint.cache_degraded_seen = True
            _bump("worker_cache_degraded")
            self.report.event(
                "worker_cache_degraded", endpoint.label, reason=str(degraded)
            )
        _bump("remote_jobs")
        self.report.remote += 1
        task.done = True
        on_done(task, result, wall, f"http:{endpoint.label}")

    def _handle_failure(
        self, task, endpoint: _Endpoint, failure: _Failure,
        attempts: Dict[int, int], ready_at: Dict[int, float],
        exhausted: Set[int],
    ) -> None:
        now = time.monotonic()
        if failure.kind == "timeout":
            _bump("timeouts")
        elif failure.kind in ("garble",):
            _bump("crc_rejected")
        self._charge_endpoint(endpoint, failure.kind)
        if failure.kind in ("conn", "partition"):
            # the endpoint is to blame; the task requeues uncharged
            ready_at[id(task)] = now
            self.report.event(
                "net_error", task.label, worker=endpoint.label,
                detail=failure.detail,
            )
            return
        count = attempts.get(id(task), 0) + 1
        attempts[id(task)] = count
        _bump("retries")
        self.report.net_retries += 1
        self.report.event(
            f"net_{failure.kind}", task.label, attempt=count,
            worker=endpoint.label, detail=failure.detail,
        )
        if count >= self.sup.max_attempts:
            exhausted.add(id(task))
            _bump("fleet_exhausted")
            self.report.event("fleet_exhausted", task.label, attempts=count)
            return
        delay = min(
            self.sup.backoff_cap,
            self.sup.backoff_base * (2 ** (count - 1)),
        )
        rng = random.Random(f"{self.sup.seed}|net:{task.digest}|{count}")
        ready_at[id(task)] = now + delay * (
            1.0 + self.sup.jitter * rng.random()
        )


def maybe_fleet(sup_config, chaos, report) -> Optional[FleetRunner]:
    """A :class:`FleetRunner` when the http transport is configured, else
    ``None`` (the supervisor then stays on the local pool)."""
    if configured_transport() != "http":
        return None
    addresses = worker_addresses()
    if not addresses:
        raise TransportConfigError(
            "http transport needs worker endpoints "
            "(--workers HOST:PORT[,HOST:PORT...] or REPRO_WORKERS)"
        )
    return FleetRunner(addresses, sup_config, chaos, report)
