"""The fleet worker: ``python -m repro worker --listen HOST:PORT``.

A small stdlib HTTP server that executes campaign cells for a remote
coordinator (:mod:`repro.harness.transport`).  The protocol is one
line-delimited JSON job request per ``POST /job``; every response — 200
or error — is a CRC-32 envelope (:func:`transport.seal_record`), so a
coordinator can always distinguish a damaged payload from a bad job.

The worker owns its cache store: results are persisted locally under
its own ``REPRO_CACHE_DIR`` (or a private scratch directory), so a
repeated job — e.g. after a chaos ``drop`` lost the response — is a
cache hit, not a re-simulation.  No shared filesystem is assumed; the
coordinator re-persists returned stats into the campaign root, keeping
its journal the single source of truth.

Endpoints:

* ``POST /job`` — execute one trace/sim cell, reply with the sealed
  result record (includes ``cache_degraded`` so the coordinator can
  surface a worker whose local cache writes started failing);
* ``GET /healthz`` — liveness probe for the coordinator's heartbeats;
* ``POST /shutdown`` — graceful stop (used by tests and deployments).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.harness import cache as disk_cache
from repro.harness import supervisor
from repro.harness import transport


class _WorkerState:
    """Mutable per-server bookkeeping, shared across handler threads."""

    def __init__(
        self, cache_root: Optional[str] = None, max_jobs: Optional[int] = None
    ) -> None:
        self.max_jobs = max_jobs
        self.jobs_done = 0
        self.started = time.time()
        self.lock = threading.Lock()
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        if cache_root is not None:
            self.cache_root = cache_root
        else:
            root = disk_cache.cache_root()
            if root is None:
                self._scratch = tempfile.TemporaryDirectory(
                    prefix="repro-worker-"
                )
                root = self._scratch.name
            self.cache_root = str(root)

    def cleanup(self) -> None:
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None


class WorkerServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], state: _WorkerState) -> None:
        super().__init__(address, _WorkerHandler)
        self.state = state

    def stop_soon(self) -> None:
        """Stop serving from a handler thread without deadlocking."""

        def _stop() -> None:
            self.shutdown()
            self.server_close()

        threading.Thread(target=_stop, daemon=True).start()


class _WorkerHandler(BaseHTTPRequestHandler):
    server_version = "repro-worker/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the worker is driven by tests and CI; stay quiet

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:
            pass  # peer went away (or chaos dropped it); nothing to do

    def _reply_sealed(self, status: int, record: dict) -> None:
        self._reply(
            status, transport.seal_record(record), "application/x-ndjson"
        )

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode(),
            "application/json",
        )

    # -- endpoints -----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/healthz":
            self._reply_json(404, {"ok": False, "error": "not found"})
            return
        state = self.server.state
        self._reply_json(
            200,
            {
                "ok": True,
                "kind": "worker",
                "pid": os.getpid(),
                "jobs_done": state.jobs_done,
                "uptime_s": round(time.time() - state.started, 3),
                "cache_degraded": disk_cache.runtime_disabled(),
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/shutdown":
            self._reply_json(200, {"ok": True, "stopping": True})
            self.server.stop_soon()
            return
        if self.path != "/job":
            self._reply_json(404, {"ok": False, "error": "not found"})
            return
        state = self.server.state
        try:
            length = int(self.headers.get("Content-Length", "0"))
            blob = self.rfile.read(length)
        except (ValueError, OSError):
            self._reply_sealed(400, {"ok": False, "error": "unreadable body"})
            return
        try:
            kind, key, config, digest, _attempt = transport.decode_job(blob)
        except transport.TransportProtocolError as exc:
            self._reply_sealed(400, {"ok": False, "error": str(exc)})
            return
        started = time.perf_counter()
        try:
            result, _stored = supervisor._do_work(
                kind, key, config, state.cache_root
            )
        except Exception as exc:  # a worker must never die on one job
            self._reply_sealed(
                500,
                {
                    "ok": False,
                    "kind": kind,
                    "digest": digest,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        wall = time.perf_counter() - started
        with state.lock:
            state.jobs_done += 1
            jobs_done = state.jobs_done
        self._reply_sealed(
            200,
            {
                "ok": True,
                "kind": kind,
                "digest": digest,
                "result": (
                    disk_cache.stats_record(result)
                    if kind == "sim"
                    else int(result)
                ),
                "wall_s": round(wall, 6),
                "pid": os.getpid(),
                "jobs_done": jobs_done,
                "cache_degraded": disk_cache.runtime_disabled(),
            },
        )
        if state.max_jobs is not None and jobs_done >= state.max_jobs:
            self.server.stop_soon()


def make_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_root: Optional[str] = None,
    max_jobs: Optional[int] = None,
) -> WorkerServer:
    """Build (but don't start) a worker server; ``port=0`` binds any
    free port — read it back from ``server.server_address``."""
    return WorkerServer((host, port), _WorkerState(cache_root, max_jobs))


def start_worker_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_root: Optional[str] = None,
    max_jobs: Optional[int] = None,
) -> Tuple[WorkerServer, threading.Thread]:
    """In-process worker for tests: serve on a daemon thread."""
    server = make_worker(host, port, cache_root, max_jobs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_worker(listen: str, max_jobs: Optional[int] = None) -> int:
    """Blocking entry point behind ``python -m repro worker``."""
    host, port = transport.parse_hostport(listen)
    server = make_worker(host, port, max_jobs=max_jobs)
    bound_host, bound_port = server.server_address[:2]
    print(f"worker listening on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        try:
            server.server_close()
        except OSError:
            pass
        server.state.cleanup()
    return 0
