"""Experiment harness: regenerates every table and figure of the paper.

One function per artefact (``fig8`` ... ``fig14``, ``table1`` ... ``table3``,
``headline``), each returning structured results plus a text renderer so the
benches under ``benchmarks/`` can print the same rows/series the paper
reports.  Traces are cached per (benchmark, mode, seed) within a process, so
running the whole figure suite costs one trace generation per variant.
"""

from repro.harness.runner import (
    TraceKey,
    build_trace,
    clear_trace_cache,
    run_variant,
    variant_stats,
)
from repro.harness.figures import (
    fig8_overheads,
    fig9_instruction_counts,
    fig10_fetch_stalls,
    fig11_inflight_pcommits,
    fig12_stores_per_pcommit,
    fig13_ssb_sweep,
    fig14_bloom_fp,
    headline_claim,
    render_bar_table,
)
from repro.harness.tables import table1_text, table2_text, table3_text

__all__ = [
    "TraceKey",
    "build_trace",
    "clear_trace_cache",
    "run_variant",
    "variant_stats",
    "fig8_overheads",
    "fig9_instruction_counts",
    "fig10_fetch_stalls",
    "fig11_inflight_pcommits",
    "fig12_stores_per_pcommit",
    "fig13_ssb_sweep",
    "fig14_bloom_fp",
    "headline_claim",
    "render_bar_table",
    "table1_text",
    "table2_text",
    "table3_text",
]
