"""Experiment harness: regenerates every table and figure of the paper.

One function per artefact (``fig8`` ... ``fig14``, ``table1`` ... ``table3``,
``headline``), each returning structured results plus a text renderer so the
benches under ``benchmarks/`` can print the same rows/series the paper
reports.

Results are cached at two layers: an in-process memo per (benchmark, mode,
seed, config), and a persistent content-keyed store under ``.repro-cache/``
(:mod:`repro.harness.cache`) that survives across processes, so warm re-runs
skip trace generation and simulation entirely.  Variant simulation fans out
across worker processes via :mod:`repro.harness.parallel` with a
deterministic merge.
"""

from repro.harness.cache import (
    CACHE_SCHEMA_VERSION,
    cache_info,
    cache_root,
    clear_cache,
)
from repro.harness.parallel import (
    VariantJob,
    default_jobs,
    prefetch_variants,
    run_variants,
    set_default_jobs,
)
from repro.harness.runner import (
    TraceKey,
    build_trace,
    clear_trace_cache,
    run_system,
    run_variant,
    system_result,
    variant_stats,
)
from repro.harness.bench import run_bench
from repro.harness.figures import (
    fig8_overheads,
    fig9_instruction_counts,
    fig10_fetch_stalls,
    fig11_inflight_pcommits,
    fig12_stores_per_pcommit,
    fig13_ssb_sweep,
    fig14_bloom_fp,
    fig15_concurrent_speedup,
    fig15_contention_report,
    headline_claim,
    render_bar_table,
)
from repro.harness.tables import table1_text, table2_text, table3_text
from repro.harness.transport import (
    configured_transport,
    set_transport,
    set_workers,
    worker_addresses,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "TraceKey",
    "VariantJob",
    "build_trace",
    "cache_info",
    "cache_root",
    "clear_cache",
    "clear_trace_cache",
    "configured_transport",
    "default_jobs",
    "prefetch_variants",
    "run_bench",
    "run_system",
    "run_variant",
    "system_result",
    "run_variants",
    "set_default_jobs",
    "set_transport",
    "set_workers",
    "variant_stats",
    "worker_addresses",
    "fig8_overheads",
    "fig9_instruction_counts",
    "fig10_fetch_stalls",
    "fig11_inflight_pcommits",
    "fig12_stores_per_pcommit",
    "fig13_ssb_sweep",
    "fig14_bloom_fp",
    "fig15_concurrent_speedup",
    "fig15_contention_report",
    "headline_claim",
    "render_bar_table",
    "table1_text",
    "table2_text",
    "table3_text",
]
