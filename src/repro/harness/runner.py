"""Trace generation and variant simulation, with per-process caching."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.trace import Trace
from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.workloads.base import Workbench
from repro.workloads.registry import PAPER_SPECS, WORKLOADS


@dataclass(frozen=True)
class TraceKey:
    """Cache key for a generated trace."""

    abbrev: str
    mode: PersistMode
    seed: int
    init_ops: Optional[int] = None
    sim_ops: Optional[int] = None


_TRACE_CACHE: Dict[TraceKey, Trace] = {}
_STATS_CACHE: Dict[Tuple[TraceKey, MachineConfig], RunStats] = {}


def clear_trace_cache() -> None:
    """Drop cached traces and simulation results (tests use this)."""
    _TRACE_CACHE.clear()
    _STATS_CACHE.clear()


def build_trace(
    abbrev: str,
    mode: PersistMode,
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
) -> Trace:
    """Generate (or fetch from cache) the trace for one benchmark variant.

    ``init_ops``/``sim_ops`` default to the registry's scaled counts.
    """
    key = TraceKey(abbrev, mode, seed, init_ops, sim_ops)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    spec = PAPER_SPECS[abbrev]
    bench = Workbench(mode=mode, record=True, seed=seed)
    workload = spec.build(bench)
    workload.populate(spec.scaled_init_ops if init_ops is None else init_ops)
    workload.run(spec.scaled_sim_ops if sim_ops is None else sim_ops)
    trace = bench.trace
    _TRACE_CACHE[key] = trace
    return trace


def run_variant(
    abbrev: str,
    mode: PersistMode,
    config: Optional[MachineConfig] = None,
    seed: int = 7,
) -> RunStats:
    """Simulate one benchmark variant on *config* (cached)."""
    config = config or MachineConfig()
    key = (TraceKey(abbrev, mode, seed), config)
    cached = _STATS_CACHE.get(key)
    if cached is not None:
        return cached
    stats = simulate(build_trace(abbrev, mode, seed=seed), config)
    _STATS_CACHE[key] = stats
    return stats


def variant_stats(
    abbrev: str,
    sp: bool = False,
    ssb_entries: int = 256,
    seed: int = 7,
) -> Dict[PersistMode, RunStats]:
    """All four Figure-8 variants for one benchmark.

    With ``sp=True`` the LOG_P_SF trace additionally runs on the
    speculative-persistence machine and is stored under the key
    ``"SP"`` in the returned mapping (alongside the enum keys).
    """
    results: Dict = {}
    base_cfg = MachineConfig()
    for mode in PersistMode:
        results[mode] = run_variant(abbrev, mode, base_cfg, seed)
    if sp:
        sp_cfg = base_cfg.with_sp(ssb_entries)
        results["SP"] = run_variant(abbrev, PersistMode.LOG_P_SF, sp_cfg, seed)
    return results


def geomean_overhead(ratios: Iterable[float]) -> float:
    """The paper's summary statistic: geometric mean of slowdown ratios,
    minus one."""
    values = list(ratios)
    if not values:
        raise ValueError("no ratios")
    return math.exp(sum(math.log(v) for v in values) / len(values)) - 1.0


def all_benchmarks() -> List[str]:
    return list(WORKLOADS)
