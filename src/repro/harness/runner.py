"""Trace generation and variant simulation, with two cache layers.

Every lookup goes through an in-process memo first and then the
persistent on-disk store (:mod:`repro.harness.cache`), so repeated runs
of figures, sweeps, and the test suites regenerate nothing that is
already known.  The parallel scheduler (:mod:`repro.harness.parallel`)
shares the same disk store across worker processes.

Traces flow through here in their **columnar form**
(:class:`~repro.isa.columns.TraceColumns`): disk hits deserialise the
RPTR2 column sections straight into a column-backed
:class:`~repro.isa.trace.Trace` without materialising a single
``Instr``, the timing model consumes the packed columns and the memoized
segment list directly, and freshly generated traces are columnarised
once and reuse that form for both serialisation and simulation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.harness import cache as disk_cache
from repro.obs import metrics as obs_metrics
from repro.isa.trace import Trace
from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.workloads.base import Workbench
from repro.workloads.registry import PAPER_SPECS, WORKLOADS


@dataclass(frozen=True)
class TraceKey:
    """Cache key for a generated trace.

    ``cores``/``contention`` identify multi-core cells
    (:func:`run_system`); the defaults keep every single-core key — and
    its digest inputs — distinct from any multi-core cell, so a 2-core
    run can never alias the single-core cache or journal entry.
    """

    abbrev: str
    mode: PersistMode
    seed: int
    init_ops: Optional[int] = None
    sim_ops: Optional[int] = None
    cores: int = 1
    contention: float = 0.0


_TRACE_CACHE: Dict[TraceKey, Trace] = {}
_STATS_CACHE: Dict[Tuple[TraceKey, MachineConfig], RunStats] = {}


def clear_trace_cache() -> None:
    """Drop the in-process traces and simulation results (tests use this).

    The persistent on-disk cache is left alone; see
    :func:`repro.harness.cache.clear_cache` for that.
    """
    _TRACE_CACHE.clear()
    _STATS_CACHE.clear()


def generate_trace(key: TraceKey) -> Trace:
    """Run the functional workload for *key* and return its trace (uncached)."""
    if key.cores != 1:
        raise ValueError("multi-core cells have one trace per core; use run_system")
    spec = PAPER_SPECS[key.abbrev]
    init_ops = spec.scaled_init_ops if key.init_ops is None else key.init_ops
    sim_ops = spec.scaled_sim_ops if key.sim_ops is None else key.sim_ops
    kwargs = {}
    if (init_ops, sim_ops) == (spec.paper_init_ops, spec.paper_sim_ops):
        # the paper tier outgrows the default heap (nodes are never
        # eagerly reclaimed); the size is fixed per workload in the
        # registry, so the trace stays a pure function of the key
        kwargs["heap_size"] = spec.paper_heap_bytes
    bench = Workbench(mode=key.mode, record=True, seed=key.seed, **kwargs)
    workload = spec.build(bench)
    workload.populate(init_ops)
    workload.run(sim_ops)
    return bench.trace


def trace_for_key(key: TraceKey) -> Trace:
    """The trace for *key*: in-process memo, then disk, then generation.

    Disk hits and fresh generations are recorded in
    :mod:`repro.obs.metrics` (memo hits are not — they are dict lookups)."""
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    label = f"{key.abbrev}/{key.mode.value}"
    started = time.perf_counter()
    trace = disk_cache.load_cached_trace(key)
    if trace is None:
        trace = generate_trace(key)
        disk_cache.store_trace(key, trace)
        obs_metrics.record_variant(
            "trace", label, "generated", time.perf_counter() - started
        )
    else:
        obs_metrics.record_variant(
            "trace", label, "disk", time.perf_counter() - started
        )
    _TRACE_CACHE[key] = trace
    return trace


def build_trace(
    abbrev: str,
    mode: PersistMode,
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
) -> Trace:
    """Generate (or fetch from cache) the trace for one benchmark variant.

    ``init_ops``/``sim_ops`` default to the registry's scaled counts.
    """
    return trace_for_key(TraceKey(abbrev, mode, seed, init_ops, sim_ops))


def peek_cached_stats(
    key: TraceKey, config: MachineConfig, root: Optional[str] = None
) -> Optional[RunStats]:
    """The cached :class:`RunStats` for *(key, config)*, without simulating.

    Checks the in-process memo, then the disk store (promoting hits into
    the memo).  With *root*, a store other than the default cache root —
    the supervisor's campaign or scratch store — is consulted instead of
    the default one.  Returns ``None`` on a miss.
    """
    cached = _STATS_CACHE.get((key, config))
    if cached is not None:
        return cached
    stats = disk_cache.load_cached_stats(key, config, root=root)
    if stats is not None:
        _STATS_CACHE[(key, config)] = stats
    return stats


def seed_stats_cache(key: TraceKey, config: MachineConfig, stats: RunStats) -> None:
    """Install an externally computed result (parallel workers) in the memo."""
    _STATS_CACHE[(key, config)] = stats


def run_variant(
    abbrev: str,
    mode: PersistMode,
    config: Optional[MachineConfig] = None,
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
) -> RunStats:
    """Simulate one benchmark variant on *config* (cached at both layers)."""
    config = config or MachineConfig()
    key = TraceKey(abbrev, mode, seed, init_ops, sim_ops)
    cached = _STATS_CACHE.get((key, config))
    if cached is not None:
        return cached
    label = f"{key.abbrev}/{key.mode.value}"
    started = time.perf_counter()
    stats = disk_cache.load_cached_stats(key, config)
    if stats is not None:
        _STATS_CACHE[(key, config)] = stats
        obs_metrics.record_variant(
            "sim", label, "disk", time.perf_counter() - started
        )
        return stats
    trace = trace_for_key(key)
    started = time.perf_counter()
    stats = simulate(trace, config)
    _STATS_CACHE[(key, config)] = stats
    disk_cache.store_stats(key, config, stats)
    obs_metrics.record_variant(
        "sim", label, "simulated", time.perf_counter() - started
    )
    return stats


def system_result(
    abbrev: str,
    mode: PersistMode,
    config: Optional[MachineConfig] = None,
    seed: int = 7,
    cores: int = 2,
    contention: float = 0.0,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
):
    """Generate a concurrent run and co-simulate it (uncached).

    Returns the full :class:`~repro.uarch.system.SystemResult` with
    per-core stats and conflict counters; :func:`run_system` is the
    cached aggregate view.
    """
    from repro.uarch.system import simulate_system
    from repro.workloads.concurrent import generate_concurrent

    config = config or MachineConfig()
    run = generate_concurrent(
        abbrev, mode, n_cores=cores, contention=contention, seed=seed,
        init_ops=init_ops, sim_ops=sim_ops,
    )
    return simulate_system(run.traces, config)


def run_system(
    abbrev: str,
    mode: PersistMode,
    config: Optional[MachineConfig] = None,
    seed: int = 7,
    cores: int = 2,
    contention: float = 0.0,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
) -> RunStats:
    """Aggregate stats of one multi-core cell (cached at both layers).

    The returned :class:`RunStats` sums the per-core counters, takes the
    system makespan as ``cycles``, and carries the conflict counters and
    per-core cycle breakdown in ``extra`` — everything round-trips
    through the persistent stats cache.  ``cores`` must be >= 2: a
    one-core system is just :func:`run_variant`, and keeping the tiers
    apart keeps their cache keys apart.
    """
    if cores < 2:
        raise ValueError("run_system needs >= 2 cores; use run_variant")
    config = config or MachineConfig()
    key = TraceKey(abbrev, mode, seed, init_ops, sim_ops, cores, contention)
    cached = _STATS_CACHE.get((key, config))
    if cached is not None:
        return cached
    label = f"{abbrev}/{mode.value}@{cores}c/p{contention:g}"
    started = time.perf_counter()
    stats = disk_cache.load_cached_stats(key, config)
    if stats is not None:
        _STATS_CACHE[(key, config)] = stats
        obs_metrics.record_variant(
            "sim", label, "disk", time.perf_counter() - started
        )
        obs_metrics.record_system_run(cores, contention, stats.extra)
        return stats
    stats = system_result(
        abbrev, mode, config, seed,
        cores=cores, contention=contention,
        init_ops=init_ops, sim_ops=sim_ops,
    ).aggregate()
    _STATS_CACHE[(key, config)] = stats
    disk_cache.store_stats(key, config, stats)
    obs_metrics.record_variant(
        "sim", label, "simulated", time.perf_counter() - started
    )
    obs_metrics.record_system_run(cores, contention, stats.extra)
    return stats


def variant_stats(
    abbrev: str,
    sp: bool = False,
    ssb_entries: int = 256,
    seed: int = 7,
) -> Dict[PersistMode, RunStats]:
    """All four Figure-8 variants for one benchmark.

    With ``sp=True`` the LOG_P_SF trace additionally runs on the
    speculative-persistence machine and is stored under the key
    ``"SP"`` in the returned mapping (alongside the enum keys).
    Variants are scheduled through the parallel executor when a
    multi-job default is configured.
    """
    from repro.harness.parallel import prefetch_variants

    base_cfg = MachineConfig()
    pairs = [(abbrev, mode, base_cfg) for mode in PersistMode]
    sp_cfg = base_cfg.with_sp(ssb_entries)
    if sp:
        pairs.append((abbrev, PersistMode.LOG_P_SF, sp_cfg))
    prefetch_variants(pairs, seed=seed)

    results: Dict = {}
    for mode in PersistMode:
        results[mode] = run_variant(abbrev, mode, base_cfg, seed)
    if sp:
        results["SP"] = run_variant(abbrev, PersistMode.LOG_P_SF, sp_cfg, seed)
    return results


def geomean_overhead(ratios: Iterable[float]) -> float:
    """The paper's summary statistic: geometric mean of slowdown ratios,
    minus one."""
    values = list(ratios)
    if not values:
        raise ValueError("no ratios")
    return math.exp(sum(math.log(v) for v in values) / len(values)) - 1.0


def all_benchmarks() -> List[str]:
    return list(WORKLOADS)
