"""Extension sweeps beyond the paper's figures.

The paper fixes the checkpoint buffer at 4 entries (motivated by Figure
11) and the NVMM at 50/150 ns.  These sweeps explore the neighbourhood of
those choices — the kind of sensitivity analysis a design-space study
would add:

* :func:`checkpoint_sweep` — how much speculation depth SP actually needs;
* :func:`nvmm_latency_sweep` — how the fence penalty and the SP win scale
  as NVMM writes get slower (slower NVM technologies make the paper's
  mechanism *more* valuable).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.harness.parallel import prefetch_variants
from repro.harness.runner import all_benchmarks, geomean_overhead, run_variant
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig

GEOMEAN = "GEO"


def checkpoint_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 7,
) -> Dict[int, Dict[str, float]]:
    """SP overhead over baseline per checkpoint-buffer size.

    Returns ``{checkpoint_count: {benchmark: overhead, "GEO": overhead}}``.
    """
    benchmarks = list(benchmarks or all_benchmarks())
    base_cfg = MachineConfig()
    prefetch_variants(
        [(ab, PersistMode.BASE, base_cfg) for ab in benchmarks]
        + [
            (ab, PersistMode.LOG_P_SF, base_cfg.with_sp(256, checkpoint_entries=count))
            for count in counts
            for ab in benchmarks
        ],
        seed=seed,
    )
    result: Dict[int, Dict[str, float]] = {}
    for count in counts:
        sp_cfg = base_cfg.with_sp(256, checkpoint_entries=count)
        row: Dict[str, float] = {}
        ratios = []
        for ab in benchmarks:
            base = run_variant(ab, PersistMode.BASE, base_cfg, seed)
            stats = run_variant(ab, PersistMode.LOG_P_SF, sp_cfg, seed)
            ratio = stats.cycles / base.cycles
            row[ab] = ratio - 1.0
            ratios.append(ratio)
        row[GEOMEAN] = geomean_overhead(ratios)
        result[count] = row
    return result


def nvmm_latency_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    write_latencies_ns: Sequence[int] = (150, 300, 600, 1200),
    seed: int = 7,
) -> Dict[int, Dict[str, float]]:
    """Fence penalty and SP residual vs NVMM write latency.

    Only the *write* path scales (reads stay at 50 ns), isolating the
    persist-barrier effect: slower writes lengthen WPQ drains and pcommit
    acknowledgements without touching the baseline's load behaviour.
    Returns ``{latency_ns: {"fence": geomean Log+P+Sf-vs-Log+P overhead,
    "sp": geomean SP-vs-Log+P overhead, "recovered": fraction of the
    penalty SP removes}}``.
    """
    benchmarks = list(benchmarks or all_benchmarks())
    pairs = []
    for write_ns in write_latencies_ns:
        cfg = replace(MachineConfig(), nvmm_write_cycles=int(315 * (write_ns / 150.0)))
        pairs += [(ab, PersistMode.LOG_P, cfg) for ab in benchmarks]
        pairs += [(ab, PersistMode.LOG_P_SF, cfg) for ab in benchmarks]
        pairs += [(ab, PersistMode.LOG_P_SF, cfg.with_sp(256)) for ab in benchmarks]
    prefetch_variants(pairs, seed=seed)
    result: Dict[int, Dict[str, float]] = {}
    for write_ns in write_latencies_ns:
        scale = write_ns / 150.0
        base_cfg = replace(
            MachineConfig(),
            nvmm_write_cycles=int(315 * scale),
        )
        sp_cfg = base_cfg.with_sp(256)
        fence_ratios, sp_ratios = [], []
        for ab in benchmarks:
            logp = run_variant(ab, PersistMode.LOG_P, base_cfg, seed)
            fenced = run_variant(ab, PersistMode.LOG_P_SF, base_cfg, seed)
            sp = run_variant(ab, PersistMode.LOG_P_SF, sp_cfg, seed)
            fence_ratios.append(fenced.cycles / logp.cycles)
            sp_ratios.append(sp.cycles / logp.cycles)
        fence = geomean_overhead(fence_ratios)
        sp_resid = geomean_overhead(sp_ratios)
        result[write_ns] = {
            "fence": fence,
            "sp": sp_resid,
            "recovered": 1 - sp_resid / fence if fence > 0 else 0.0,
        }
    return result
