"""Per-figure experiment runners (paper Figures 8-14) and text renderers.

Each ``figN_*`` function returns a mapping from benchmark abbreviation to
the figure's metric (plus a geometric-mean entry where the paper shows
one).  ``render_bar_table`` turns such mappings into the textual equivalent
of the paper's grouped bar charts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.stats.run import RunStats
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig, SSB_LATENCY_TABLE
from repro.harness.parallel import prefetch_variants
from repro.harness.runner import (
    all_benchmarks,
    geomean_overhead,
    run_system,
    run_variant,
)

GEOMEAN = "GEO"

#: Variant display order of Figure 8.
FIG8_SERIES = ("Log", "Log+P", "Log+P+Sf", "SP256")


def _mode_series(sp_ssb: int = 256):
    base_cfg = MachineConfig()
    return [
        ("Log", PersistMode.LOG, base_cfg),
        ("Log+P", PersistMode.LOG_P, base_cfg),
        ("Log+P+Sf", PersistMode.LOG_P_SF, base_cfg),
        ("SP256", PersistMode.LOG_P_SF, base_cfg.with_sp(sp_ssb)),
    ]


# ----------------------------------------------------------------------
# Figure 8: execution-time overhead over the non-persistent baseline
# ----------------------------------------------------------------------
def fig8_overheads(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, Dict[str, float]]:
    """Overhead (slowdown - 1) of each variant vs the BASE run.

    Returns ``{series: {benchmark: overhead, ..., "GEO": overhead}}``.
    """
    benchmarks = list(benchmarks or all_benchmarks())
    series = _mode_series()
    prefetch_variants(
        [(ab, PersistMode.BASE, MachineConfig()) for ab in benchmarks]
        + [(ab, mode, config) for _, mode, config in series for ab in benchmarks],
        seed=seed,
    )
    result: Dict[str, Dict[str, float]] = {}
    for label, mode, config in series:
        row: Dict[str, float] = {}
        ratios: List[float] = []
        for ab in benchmarks:
            base = run_variant(ab, PersistMode.BASE, MachineConfig(), seed)
            stats = run_variant(ab, mode, config, seed)
            ratio = stats.cycles / base.cycles
            row[ab] = ratio - 1.0
            ratios.append(ratio)
        row[GEOMEAN] = geomean_overhead(ratios)
        result[label] = row
    return result


# ----------------------------------------------------------------------
# Figure 9: committed-instruction-count ratio to baseline
# ----------------------------------------------------------------------
def fig9_instruction_counts(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, Dict[str, float]]:
    """Instruction-count ratio of Log / Log+P / Log+P+Sf to BASE."""
    benchmarks = list(benchmarks or all_benchmarks())
    result: Dict[str, Dict[str, float]] = {}
    base_cfg = MachineConfig()
    prefetch_variants(
        [(ab, mode, base_cfg) for mode in PersistMode for ab in benchmarks],
        seed=seed,
    )
    for label, mode in (
        ("Log", PersistMode.LOG),
        ("Log+P", PersistMode.LOG_P),
        ("Log+P+Sf", PersistMode.LOG_P_SF),
    ):
        row = {}
        for ab in benchmarks:
            base = run_variant(ab, PersistMode.BASE, base_cfg, seed)
            stats = run_variant(ab, mode, base_cfg, seed)
            row[ab] = stats.instructions / base.instructions
        result[label] = row
    return result


# ----------------------------------------------------------------------
# Figure 10: fetch-queue stall cycles / baseline cycles
# ----------------------------------------------------------------------
def fig10_fetch_stalls(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, Dict[str, float]]:
    """Fetch-queue stall cycles of Log+P / Log+P+Sf / SP256, normalised to
    the baseline's execution cycles."""
    benchmarks = list(benchmarks or all_benchmarks())
    base_cfg = MachineConfig()
    series = [
        ("Log+P", PersistMode.LOG_P, base_cfg),
        ("Log+P+Sf", PersistMode.LOG_P_SF, base_cfg),
        ("SP256", PersistMode.LOG_P_SF, base_cfg.with_sp(256)),
    ]
    prefetch_variants(
        [(ab, PersistMode.BASE, base_cfg) for ab in benchmarks]
        + [(ab, mode, config) for _, mode, config in series for ab in benchmarks],
        seed=seed,
    )
    result: Dict[str, Dict[str, float]] = {}
    for label, mode, config in series:
        row = {}
        for ab in benchmarks:
            base = run_variant(ab, PersistMode.BASE, base_cfg, seed)
            stats = run_variant(ab, mode, config, seed)
            row[ab] = stats.fetch_stall_cycles / base.cycles
        result[label] = row
    return result


# ----------------------------------------------------------------------
# Figure 11: maximum number of in-flight pcommits (Log+P)
# ----------------------------------------------------------------------
def fig11_inflight_pcommits(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, int]:
    benchmarks = list(benchmarks or all_benchmarks())
    prefetch_variants(
        [(ab, PersistMode.LOG_P, MachineConfig()) for ab in benchmarks], seed=seed
    )
    return {
        ab: run_variant(ab, PersistMode.LOG_P, MachineConfig(), seed).max_inflight_pcommits
        for ab in benchmarks
    }


# ----------------------------------------------------------------------
# Figure 12: average stores while a pcommit is outstanding (Log+P)
# ----------------------------------------------------------------------
def fig12_stores_per_pcommit(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, float]:
    benchmarks = list(benchmarks or all_benchmarks())
    prefetch_variants(
        [(ab, PersistMode.LOG_P, MachineConfig()) for ab in benchmarks], seed=seed
    )
    return {
        ab: run_variant(ab, PersistMode.LOG_P, MachineConfig(), seed).stores_per_pcommit
        for ab in benchmarks
    }


# ----------------------------------------------------------------------
# Figure 13: SP overhead vs SSB size
# ----------------------------------------------------------------------
def fig13_ssb_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 7,
) -> Dict[int, Dict[str, float]]:
    """Execution-time overhead of SP over BASE for each SSB size.

    Returns ``{ssb_entries: {benchmark: overhead, "GEO": overhead}}``.
    """
    benchmarks = list(benchmarks or all_benchmarks())
    sizes = list(sizes or sorted(SSB_LATENCY_TABLE))
    base_cfg = MachineConfig()
    prefetch_variants(
        [(ab, PersistMode.BASE, base_cfg) for ab in benchmarks]
        + [
            (ab, PersistMode.LOG_P_SF, base_cfg.with_sp(size))
            for size in sizes
            for ab in benchmarks
        ],
        seed=seed,
    )
    result: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        sp_cfg = base_cfg.with_sp(size)
        row: Dict[str, float] = {}
        ratios: List[float] = []
        for ab in benchmarks:
            base = run_variant(ab, PersistMode.BASE, base_cfg, seed)
            stats = run_variant(ab, PersistMode.LOG_P_SF, sp_cfg, seed)
            ratio = stats.cycles / base.cycles
            row[ab] = ratio - 1.0
            ratios.append(ratio)
        row[GEOMEAN] = geomean_overhead(ratios)
        result[size] = row
    return result


# ----------------------------------------------------------------------
# Figure 14: bloom-filter false-positive rate (SP256)
# ----------------------------------------------------------------------
def fig14_bloom_fp(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, float]:
    benchmarks = list(benchmarks or all_benchmarks())
    sp_cfg = MachineConfig().with_sp(256)
    prefetch_variants(
        [(ab, PersistMode.LOG_P_SF, sp_cfg) for ab in benchmarks], seed=seed
    )
    return {
        ab: run_variant(ab, PersistMode.LOG_P_SF, sp_cfg, seed).bloom_false_positive_rate
        for ab in benchmarks
    }


# ----------------------------------------------------------------------
# Figure 15 (beyond the paper): SP speedup on multi-core runs
# ----------------------------------------------------------------------
def fig15_concurrent_speedup(
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 7,
    core_counts: Sequence[int] = (2, 4),
    contentions: Sequence[float] = (0.0, 0.5, 0.9),
) -> Dict[str, Dict[str, float]]:
    """SP speedup vs. core count x conflict rate — a figure the paper
    never ran (its evaluation is single-threaded, §5).

    For each benchmark and core count, the same concurrent traces
    (:mod:`repro.workloads.concurrent`) run on the stalling Log+P+Sf
    machine and on SP256; the entry is the makespan ratio
    ``stall / sp`` (> 1 means SP hides the persist barriers even while
    paying conflict aborts).  Rows are ``"{benchmark}x{cores}"``,
    columns ``"p=<contention>"``.
    """
    benchmarks = list(benchmarks or ("HM", "BT"))
    base_cfg = MachineConfig()
    sp_cfg = base_cfg.with_sp(256)
    result: Dict[str, Dict[str, float]] = {}
    for ab in benchmarks:
        for cores in core_counts:
            row: Dict[str, float] = {}
            for contention in contentions:
                stall = run_system(
                    ab, PersistMode.LOG_P_SF, base_cfg, seed,
                    cores=cores, contention=contention,
                )
                sp = run_system(
                    ab, PersistMode.LOG_P_SF, sp_cfg, seed,
                    cores=cores, contention=contention,
                )
                row[f"p={contention:g}"] = stall.cycles / sp.cycles
            result[f"{ab}x{cores}"] = row
    return result


def fig15_contention_report(
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 7,
    core_counts: Sequence[int] = (2, 4),
    contentions: Sequence[float] = (0.0, 0.5, 0.9),
) -> Dict[str, Dict[str, float]]:
    """The cross-core interference behind Figure 15's SP legs.

    Reads the system counters that :func:`~repro.harness.runner.
    run_system` folds into each cached aggregate's ``extra`` — no
    re-simulation beyond what :func:`fig15_concurrent_speedup` already
    paid.  Rows are ``"{benchmark}x{cores} p=<contention>"``; columns:
    ``aborts`` (conflict rollbacks), ``replayed%`` (share of retired
    micro-ops that were abort replays — wasted speculative work), and
    ``skew%`` (fastest vs slowest core's cycles, load imbalance).
    """
    benchmarks = list(benchmarks or ("HM", "BT"))
    sp_cfg = MachineConfig().with_sp(256)
    result: Dict[str, Dict[str, float]] = {}
    for ab in benchmarks:
        for cores in core_counts:
            for contention in contentions:
                stats = run_system(
                    ab, PersistMode.LOG_P_SF, sp_cfg, seed,
                    cores=cores, contention=contention,
                )
                per_core = [
                    stats.extra[f"core{index}_cycles"] for index in range(cores)
                ]
                result[f"{ab}x{cores} p={contention:g}"] = {
                    "aborts": float(stats.extra["conflict_aborts"]),
                    "replayed%": 100.0
                    * stats.extra["replayed_instructions"]
                    / max(stats.instructions, 1),
                    "skew%": 100.0 * (1.0 - min(per_core) / max(per_core)),
                }
    return result


# ----------------------------------------------------------------------
# Headline claim: fence overhead over Log+P, without and with SP
# ----------------------------------------------------------------------
def headline_claim(
    benchmarks: Optional[Sequence[str]] = None, seed: int = 7
) -> Dict[str, float]:
    """The abstract's numbers: average overhead of ordering fences over
    Log+P (paper: 20.3%) and of SP over Log+P (paper: 3.6%)."""
    benchmarks = list(benchmarks or all_benchmarks())
    base_cfg = MachineConfig()
    sp_cfg = base_cfg.with_sp(256)
    prefetch_variants(
        [(ab, PersistMode.LOG_P, base_cfg) for ab in benchmarks]
        + [(ab, PersistMode.LOG_P_SF, base_cfg) for ab in benchmarks]
        + [(ab, PersistMode.LOG_P_SF, sp_cfg) for ab in benchmarks],
        seed=seed,
    )
    sf_ratios, sp_ratios = [], []
    for ab in benchmarks:
        logp = run_variant(ab, PersistMode.LOG_P, base_cfg, seed)
        logpsf = run_variant(ab, PersistMode.LOG_P_SF, base_cfg, seed)
        sp = run_variant(ab, PersistMode.LOG_P_SF, sp_cfg, seed)
        sf_ratios.append(logpsf.cycles / logp.cycles)
        sp_ratios.append(sp.cycles / logp.cycles)
    return {
        "fence_overhead_vs_logp": geomean_overhead(sf_ratios),
        "sp_overhead_vs_logp": geomean_overhead(sp_ratios),
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_bar_table(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    fmt: str = "{:+7.1%}",
    columns: Optional[Iterable[str]] = None,
) -> str:
    """Render ``{series: {benchmark: value}}`` as an aligned text table."""
    series = list(data)
    columns = list(columns or next(iter(data.values())).keys())
    width = max(10, max(len(s) for s in series) + 2)
    lines = [title, "-" * len(title)]
    header = " " * width + "".join(f"{c:>9}" for c in columns)
    lines.append(header)
    for name in series:
        row = data[name]
        cells = "".join(
            f"{fmt.format(row[c]):>9}" if c in row else f"{'-':>9}" for c in columns
        )
        lines.append(f"{name:<{width}}" + cells)
    return "\n".join(lines)


def render_scalar_series(title: str, data: Mapping[str, float], fmt: str = "{:8.3f}") -> str:
    """Render ``{benchmark: value}`` as a two-row text table."""
    lines = [title, "-" * len(title)]
    lines.append("".join(f"{k:>9}" for k in data))
    lines.append("".join(f"{fmt.format(v):>9}" for v in data.values()))
    return "\n".join(lines)
