"""Persistent on-disk cache for generated traces and simulation results.

Trace generation and simulation dominate every figure, sweep, and bench
run, yet both are pure functions of ``(TraceKey, MachineConfig)``.  This
module gives them a content-keyed store under ``.repro-cache/`` so warm
re-runs skip the work entirely:

* traces are stored in the columnar RPTR2 binary format
  (:mod:`repro.isa.serialize`) under ``traces/<digest>.rptr`` — warm
  loads reconstruct the packed column arrays directly and materialise
  zero ``Instr`` objects;
* :class:`~repro.stats.run.RunStats` results are stored as JSON under
  ``stats/<digest>.json``.

Digests are SHA-256 over a canonical JSON encoding of the key — the
:class:`~repro.harness.runner.TraceKey`, the full
:class:`~repro.uarch.config.MachineConfig` (for stats), and
:data:`CACHE_SCHEMA_VERSION`.  Any config change therefore lands on a new
file, and bumping the schema version (done whenever trace generation or
the timing model changes semantics) invalidates every prior entry at once.

Environment overrides:

* ``REPRO_CACHE_DIR`` — cache location (default ``.repro-cache`` in the
  current directory);
* ``REPRO_NO_CACHE`` — any non-empty value disables the cache entirely.

Writes are atomic (temp file + ``os.replace``), so concurrent workers of
the parallel scheduler may share one store without locking: the worst
case is the same key being written twice with identical content.

Robustness (see ``docs/RESILIENCE.md``): every entry carries an
integrity check — RPTR2 traces end in a CRC-32 footer, stats records are
wrapped in a ``{"crc": ..., "record": ...}`` envelope — and anything
that fails to parse *or verify* is deleted and treated as a miss, so a
torn or bit-flipped entry can never resurface as wrong data.  A failed
store (``ENOSPC``, read-only filesystem) degrades the whole cache to off
for the rest of the process with a one-line warning instead of aborting
the run, and ``cache info``/``cache clear`` sweep the ``mkstemp``
staging files a crashed writer may have leaked.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import tempfile
import time
import zlib
from pathlib import Path
from typing import Optional, Union

from repro.isa.serialize import (
    TraceFormatError,
    _MAGIC_V1,
    _MAGIC_V2,
    dump_trace,
    load_trace,
)
from repro.isa.trace import Trace
from repro.obs import telemetry
from repro.stats.run import RunStats
from repro.uarch.config import MachineConfig

#: Bump whenever trace generation, the timing model, or the on-disk
#: payload format changes observable behaviour — every previously cached
#: entry becomes unreachable.  3: columnar RPTR2 trace payloads.
#: 4: trace keys carry core count + contention (multi-core cells).
CACHE_SCHEMA_VERSION = 4

DEFAULT_CACHE_DIR = ".repro-cache"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# session counters (observability — see repro.obs.metrics)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheCounters:
    """Hit/miss/store accounting for one process's cache traffic.

    A *hit* is a successful disk load; a *miss* is a lookup that found
    nothing (disabled cache lookups count as misses too — the caller did
    the work either way); ``corrupt_dropped`` counts entries that existed
    but failed to parse and were deleted.
    """

    trace_hits: int = 0
    trace_misses: int = 0
    stats_hits: int = 0
    stats_misses: int = 0
    trace_stores: int = 0
    stats_stores: int = 0
    corrupt_dropped: int = 0

    def hits(self) -> int:
        return self.trace_hits + self.stats_hits

    def misses(self) -> int:
        return self.trace_misses + self.stats_misses

    def total(self) -> int:
        return self.hits() + self.misses()

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


_COUNTERS = CacheCounters()


def _bump(name: str) -> None:
    """Increment one session counter, mirrored into the telemetry
    registry (``cache.<name>``) when that is enabled."""
    setattr(_COUNTERS, name, getattr(_COUNTERS, name) + 1)
    telemetry.counter_inc(f"cache.{name}")


#: Session counter totals already folded into ``metrics.json`` — so
#: repeated :func:`persist_cache_counters` calls only add the delta.
_PERSISTED = CacheCounters()


def cache_counters() -> CacheCounters:
    """This process's cache traffic so far (a live object — copy to keep)."""
    return _COUNTERS


def reset_cache_counters() -> None:
    """Zero the session counters (tests and bench phases)."""
    global _COUNTERS, _PERSISTED
    _COUNTERS = CacheCounters()
    _PERSISTED = CacheCounters()


def _metrics_path(root: Optional[PathLike] = None) -> Optional[Path]:
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "metrics.json"


def lifetime_cache_counters(root: Optional[PathLike] = None) -> Optional[dict]:
    """Lifetime counter totals persisted in the cache directory, or
    ``None`` when the cache is disabled / never written.  ``clear_cache``
    only removes entries, so these survive cache clears."""
    path = _metrics_path(root)
    if path is None or not path.exists():
        return None
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
        lifetime = payload.get("lifetime")
        return lifetime if isinstance(lifetime, dict) else None
    except (json.JSONDecodeError, OSError):
        return None


def persist_cache_counters(root: Optional[PathLike] = None) -> None:
    """Fold this session's (not-yet-persisted) counters into the lifetime
    totals at ``<root>/metrics.json``.  Best effort and atomic; concurrent
    writers may lose each other's increments, which is acceptable for
    advisory metrics."""
    global _PERSISTED
    path = _metrics_path(root)
    if path is None:
        return
    session = _COUNTERS.as_dict()
    delta = {
        key: value - getattr(_PERSISTED, key) for key, value in session.items()
    }
    if not any(delta.values()):
        return
    lifetime = lifetime_cache_counters(root) or {}
    for key, value in delta.items():
        lifetime[key] = int(lifetime.get(key, 0)) + value
    blob = json.dumps({"schema": 1, "lifetime": lifetime}, sort_keys=True).encode()
    try:
        _atomic_write(path, lambda handle: handle.write(blob))
    except OSError:
        return
    _PERSISTED = CacheCounters(**session)


#: Reason the cache turned itself off mid-run (``None`` while healthy).
#: Set when a store hits an ``OSError`` — most commonly ``ENOSPC`` on a
#: full disk — so the run degrades to cache-off instead of aborting.
_RUNTIME_DISABLED: Optional[str] = None


def runtime_disabled() -> Optional[str]:
    """Why the cache degraded to off this session, or ``None``."""
    return _RUNTIME_DISABLED


def reset_runtime_disable() -> None:
    """Re-arm the cache after a runtime degrade (tests, new campaigns)."""
    global _RUNTIME_DISABLED
    _RUNTIME_DISABLED = None


def _degrade(exc: OSError) -> None:
    """Turn the cache off for the rest of the process after a failed write."""
    global _RUNTIME_DISABLED
    if _RUNTIME_DISABLED is None:
        _RUNTIME_DISABLED = f"{type(exc).__name__}: {exc}"
        print(
            f"repro: cache write failed ({_RUNTIME_DISABLED}); "
            "continuing with the cache disabled",
            file=sys.stderr,
        )


def _guarded_write(path: Path, writer) -> bool:
    """Atomic write that degrades to cache-off on ``OSError`` (ENOSPC,
    read-only filesystem, ...) instead of propagating; returns success."""
    try:
        _atomic_write(path, writer)
    except OSError as exc:
        _degrade(exc)
        return False
    return True


def cache_enabled() -> bool:
    """Whether the persistent cache is active (``REPRO_NO_CACHE`` unset
    and no runtime degrade has fired)."""
    return not os.environ.get(ENV_NO_CACHE) and _RUNTIME_DISABLED is None


def cache_root() -> Optional[Path]:
    """The resolved cache directory, or ``None`` when caching is disabled.

    Resolved on every call so tests (and long-lived processes) can flip the
    environment variables at any point.
    """
    if not cache_enabled():
        return None
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def _resolve_root(root: Optional[PathLike]) -> Optional[Path]:
    if root is not None:
        return Path(root)
    return cache_root()


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------
def _trace_key_payload(key) -> dict:
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "trace",
        "abbrev": key.abbrev,
        "mode": key.mode.value,
        "seed": key.seed,
        "init_ops": key.init_ops,
        "sim_ops": key.sim_ops,
        # multi-core cells (repro.uarch.system): single-core keys carry
        # the defaults, so a 2-core run can never alias the 1-core entry
        "cores": getattr(key, "cores", 1),
        "contention": getattr(key, "contention", 0.0),
    }


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def trace_digest(key) -> str:
    """Content digest of one :class:`~repro.harness.runner.TraceKey`."""
    return _digest(_trace_key_payload(key))


def stats_digest(key, config: MachineConfig) -> str:
    """Content digest of one (trace, machine configuration) pair."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "stats",
        "trace": _trace_key_payload(key),
        "config": dataclasses.asdict(config),
    }
    return _digest(payload)


def trace_path(key, root: Optional[PathLike] = None) -> Optional[Path]:
    """Where *key*'s trace lives on disk (``None`` when caching is off)."""
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "traces" / f"{trace_digest(key)}.rptr"


def stats_path(key, config: MachineConfig, root: Optional[PathLike] = None) -> Optional[Path]:
    """Where the stats for *key* on *config* live on disk."""
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "stats" / f"{stats_digest(key, config)}.json"


def journal_dir(root: Optional[PathLike] = None) -> Optional[Path]:
    """Where campaign journals live (``<cache>/journal/``), or ``None``
    when caching is disabled.  See :mod:`repro.harness.supervisor`."""
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "journal"


# ----------------------------------------------------------------------
# atomic file helpers
# ----------------------------------------------------------------------
def _atomic_write(path: Path, writer) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _drop_corrupt(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def load_cached_trace(key, root: Optional[PathLike] = None) -> Optional[Trace]:
    """The cached trace for *key*, or ``None`` on a miss / disabled cache."""
    path = trace_path(key, root)
    if path is None or not path.exists():
        _bump("trace_misses")
        return None
    try:
        trace = load_trace(path)
    except (TraceFormatError, OSError, ValueError):
        _drop_corrupt(path)
        _bump("corrupt_dropped")
        _bump("trace_misses")
        return None
    _bump("trace_hits")
    return trace


def store_trace(key, trace: Trace, root: Optional[PathLike] = None) -> Optional[Path]:
    """Persist *trace* under *key*; returns the path (``None`` if disabled)."""
    path = trace_path(key, root)
    if path is None:
        return None
    if not _guarded_write(path, lambda handle: dump_trace(trace, handle)):
        return None
    _bump("trace_stores")
    return path


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def _stats_record(stats: RunStats) -> dict:
    return {
        field_.name: getattr(stats, field_.name)
        for field_ in dataclasses.fields(stats)
    }


def _record_crc(record: dict) -> int:
    """CRC-32 of the canonical JSON encoding of a raw-counter record."""
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode())


def record_crc(record: dict) -> int:
    """Public alias of the integrity CRC — the transport layer seals its
    response envelopes with the same checksum as on-disk stats."""
    return _record_crc(record)


def stats_record(stats: RunStats) -> dict:
    """The raw-counter wire/storage record of *stats* (field name →
    value); inverse of :meth:`RunStats.from_dict`."""
    return _stats_record(stats)


def load_cached_stats(
    key, config: MachineConfig, root: Optional[PathLike] = None
) -> Optional[RunStats]:
    """The cached :class:`RunStats` for *(key, config)*, or ``None``.

    Checksummed records (``{"crc": ..., "record": {...}}``) are verified
    before deserialising — a flipped digit in a counter would otherwise
    load as *plausible but wrong* stats; legacy flat records (written
    before the integrity envelope existed) load unverified.  Anything
    that fails to parse or verify is dropped via :func:`_drop_corrupt`.
    """
    path = stats_path(key, config, root)
    if path is None or not path.exists():
        _bump("stats_misses")
        return None
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
        if isinstance(data, dict) and (
            "record" in data or "crc" in data or "schema" in data
        ):
            # anything resembling an envelope must verify as one — a
            # corrupted envelope (e.g. a flipped byte inside the "crc"
            # or "record" key name itself) must never fall through to
            # the unverified legacy branch below
            record = data.get("record")
            if (
                not isinstance(record, dict)
                or "crc" not in data
                or _record_crc(record) != data["crc"]
            ):
                raise ValueError("stats record checksum mismatch")
            stats = RunStats.from_dict(record)
        else:
            stats = RunStats.from_dict(data)
    except (json.JSONDecodeError, TypeError, ValueError, OSError):
        _drop_corrupt(path)
        _bump("corrupt_dropped")
        _bump("stats_misses")
        return None
    _bump("stats_hits")
    return stats


def store_stats(
    key, config: MachineConfig, stats: RunStats, root: Optional[PathLike] = None
) -> Optional[Path]:
    """Persist *stats* for *(key, config)* inside a CRC-32 integrity
    envelope; returns the path."""
    path = stats_path(key, config, root)
    if path is None:
        return None
    record = _stats_record(stats)
    envelope = {"schema": 1, "crc": _record_crc(record), "record": record}
    blob = json.dumps(envelope, sort_keys=True).encode()
    if not _guarded_write(path, lambda handle: handle.write(blob)):
        return None
    _bump("stats_stores")
    return path


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------
def _is_tmp_entry(path: Path) -> bool:
    """Whether *path* is an orphaned ``mkstemp`` leftover of
    :func:`_atomic_write` (``<name>.<random>`` — never a finished entry,
    which always ends in ``.rptr``, ``.json``, or ``.jsonl``)."""
    return path.is_file() and path.suffix not in (".rptr", ".json", ".jsonl")


def sweep_stale_tmp(
    root: Optional[PathLike] = None, min_age_s: float = 3600.0
) -> int:
    """Remove ``*.tmp`` droppings a crashed writer left next to cache
    entries; returns the number removed.

    ``_atomic_write`` stages every entry through ``mkstemp`` in the
    target directory; a worker killed between ``mkstemp`` and
    ``os.replace`` leaks the staging file forever.  Only files older than
    *min_age_s* are touched (0 sweeps everything) so a live writer's
    in-flight staging file survives a concurrent sweep.
    """
    resolved = _resolve_root(root)
    if resolved is None or not resolved.exists():
        return 0
    cutoff = time.time() - max(0.0, min_age_s)
    removed = 0
    for sub in ("traces", "stats", "journal"):
        directory = resolved / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if not _is_tmp_entry(path):
                continue
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
    return removed


def clear_cache(root: Optional[PathLike] = None) -> int:
    """Delete every cache entry (stale tmp files included); returns the
    number of files removed."""
    resolved = _resolve_root(root)
    if resolved is None or not resolved.exists():
        return 0
    removed = sweep_stale_tmp(root, min_age_s=0.0)
    for sub in ("traces", "stats", "journal"):
        directory = resolved / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def _sniff_trace_format(path: Path) -> Optional[str]:
    """Which RPTR container version a trace file uses (by magic)."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC_V2))
    except OSError:
        return None
    if magic == _MAGIC_V2:
        return "rptr2"
    if magic == _MAGIC_V1:
        return "rptr1"
    return None


def cache_info(root: Optional[PathLike] = None) -> dict:
    """Entry counts and sizes of the cache (for ``repro cache info``).

    Beyond the totals, breaks entries down by kind — trace containers by
    RPTR format version (a non-zero ``traces_rptr1`` after a schema bump
    means stale pre-columnar files are still on disk) — and reports the
    session's and, when persisted, the cache's lifetime hit/miss counters.
    Stale ``mkstemp`` staging files older than an hour (leaked by crashed
    writers) are swept as a side effect and the count reported as
    ``stale_tmp_removed``.
    """
    resolved = _resolve_root(root)
    info = {
        "root": str(resolved) if resolved is not None else None,
        "enabled": resolved is not None,
        "degraded": runtime_disabled(),
        "schema_version": CACHE_SCHEMA_VERSION,
        "traces": 0,
        "stats": 0,
        "journals": 0,
        "bytes": 0,
        "trace_bytes": 0,
        "stats_bytes": 0,
        "journal_bytes": 0,
        "traces_rptr1": 0,
        "traces_rptr2": 0,
        "stale_tmp_removed": 0,
        "counters_session": _COUNTERS.as_dict(),
        "counters_lifetime": lifetime_cache_counters(root),
    }
    if resolved is None or not resolved.exists():
        return info
    info["stale_tmp_removed"] = sweep_stale_tmp(root)
    for sub, bytes_key in (
        ("traces", "trace_bytes"),
        ("stats", "stats_bytes"),
        ("journal", "journal_bytes"),
    ):
        directory = resolved / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if not path.is_file():
                continue
            info["journals" if sub == "journal" else sub] += 1
            size = path.stat().st_size
            info[bytes_key] += size
            info["bytes"] += size
            if sub == "traces":
                fmt = _sniff_trace_format(path)
                if fmt is not None:
                    info[f"traces_{fmt}"] += 1
    return info
