"""Persistent on-disk cache for generated traces and simulation results.

Trace generation and simulation dominate every figure, sweep, and bench
run, yet both are pure functions of ``(TraceKey, MachineConfig)``.  This
module gives them a content-keyed store under ``.repro-cache/`` so warm
re-runs skip the work entirely:

* traces are stored in the columnar RPTR2 binary format
  (:mod:`repro.isa.serialize`) under ``traces/<digest>.rptr`` — warm
  loads reconstruct the packed column arrays directly and materialise
  zero ``Instr`` objects;
* :class:`~repro.stats.run.RunStats` results are stored as JSON under
  ``stats/<digest>.json``.

Digests are SHA-256 over a canonical JSON encoding of the key — the
:class:`~repro.harness.runner.TraceKey`, the full
:class:`~repro.uarch.config.MachineConfig` (for stats), and
:data:`CACHE_SCHEMA_VERSION`.  Any config change therefore lands on a new
file, and bumping the schema version (done whenever trace generation or
the timing model changes semantics) invalidates every prior entry at once.

Environment overrides:

* ``REPRO_CACHE_DIR`` — cache location (default ``.repro-cache`` in the
  current directory);
* ``REPRO_NO_CACHE`` — any non-empty value disables the cache entirely.

Writes are atomic (temp file + ``os.replace``), so concurrent workers of
the parallel scheduler may share one store without locking: the worst
case is the same key being written twice with identical content.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.isa.serialize import TraceFormatError, dump_trace, load_trace
from repro.isa.trace import Trace
from repro.stats.run import RunStats
from repro.uarch.config import MachineConfig

#: Bump whenever trace generation, the timing model, or the on-disk
#: payload format changes observable behaviour — every previously cached
#: entry becomes unreachable.  3: columnar RPTR2 trace payloads.
CACHE_SCHEMA_VERSION = 3

DEFAULT_CACHE_DIR = ".repro-cache"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

PathLike = Union[str, Path]


def cache_enabled() -> bool:
    """Whether the persistent cache is active (``REPRO_NO_CACHE`` unset)."""
    return not os.environ.get(ENV_NO_CACHE)


def cache_root() -> Optional[Path]:
    """The resolved cache directory, or ``None`` when caching is disabled.

    Resolved on every call so tests (and long-lived processes) can flip the
    environment variables at any point.
    """
    if not cache_enabled():
        return None
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def _resolve_root(root: Optional[PathLike]) -> Optional[Path]:
    if root is not None:
        return Path(root)
    return cache_root()


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------
def _trace_key_payload(key) -> dict:
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "trace",
        "abbrev": key.abbrev,
        "mode": key.mode.value,
        "seed": key.seed,
        "init_ops": key.init_ops,
        "sim_ops": key.sim_ops,
    }


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def trace_digest(key) -> str:
    """Content digest of one :class:`~repro.harness.runner.TraceKey`."""
    return _digest(_trace_key_payload(key))


def stats_digest(key, config: MachineConfig) -> str:
    """Content digest of one (trace, machine configuration) pair."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "stats",
        "trace": _trace_key_payload(key),
        "config": dataclasses.asdict(config),
    }
    return _digest(payload)


def trace_path(key, root: Optional[PathLike] = None) -> Optional[Path]:
    """Where *key*'s trace lives on disk (``None`` when caching is off)."""
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "traces" / f"{trace_digest(key)}.rptr"


def stats_path(key, config: MachineConfig, root: Optional[PathLike] = None) -> Optional[Path]:
    """Where the stats for *key* on *config* live on disk."""
    resolved = _resolve_root(root)
    if resolved is None:
        return None
    return resolved / "stats" / f"{stats_digest(key, config)}.json"


# ----------------------------------------------------------------------
# atomic file helpers
# ----------------------------------------------------------------------
def _atomic_write(path: Path, writer) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _drop_corrupt(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def load_cached_trace(key, root: Optional[PathLike] = None) -> Optional[Trace]:
    """The cached trace for *key*, or ``None`` on a miss / disabled cache."""
    path = trace_path(key, root)
    if path is None or not path.exists():
        return None
    try:
        return load_trace(path)
    except (TraceFormatError, OSError, ValueError):
        _drop_corrupt(path)
        return None


def store_trace(key, trace: Trace, root: Optional[PathLike] = None) -> Optional[Path]:
    """Persist *trace* under *key*; returns the path (``None`` if disabled)."""
    path = trace_path(key, root)
    if path is None:
        return None
    _atomic_write(path, lambda handle: dump_trace(trace, handle))
    return path


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def _stats_record(stats: RunStats) -> dict:
    return {
        field_.name: getattr(stats, field_.name)
        for field_ in dataclasses.fields(stats)
    }


def load_cached_stats(
    key, config: MachineConfig, root: Optional[PathLike] = None
) -> Optional[RunStats]:
    """The cached :class:`RunStats` for *(key, config)*, or ``None``."""
    path = stats_path(key, config, root)
    if path is None or not path.exists():
        return None
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
        return RunStats.from_dict(data)
    except (json.JSONDecodeError, TypeError, OSError):
        _drop_corrupt(path)
        return None


def store_stats(
    key, config: MachineConfig, stats: RunStats, root: Optional[PathLike] = None
) -> Optional[Path]:
    """Persist *stats* for *(key, config)*; returns the path."""
    path = stats_path(key, config, root)
    if path is None:
        return None
    blob = json.dumps(_stats_record(stats), sort_keys=True).encode()
    _atomic_write(path, lambda handle: handle.write(blob))
    return path


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------
def clear_cache(root: Optional[PathLike] = None) -> int:
    """Delete every cache entry; returns the number of files removed."""
    resolved = _resolve_root(root)
    if resolved is None or not resolved.exists():
        return 0
    removed = 0
    for sub in ("traces", "stats"):
        directory = resolved / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def cache_info(root: Optional[PathLike] = None) -> dict:
    """Entry counts and total size of the cache (for ``repro cache info``)."""
    resolved = _resolve_root(root)
    info = {
        "root": str(resolved) if resolved is not None else None,
        "enabled": resolved is not None,
        "schema_version": CACHE_SCHEMA_VERSION,
        "traces": 0,
        "stats": 0,
        "bytes": 0,
    }
    if resolved is None or not resolved.exists():
        return info
    for sub in ("traces", "stats"):
        directory = resolved / sub
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if path.is_file():
                info[sub] += 1
                info["bytes"] += path.stat().st_size
    return info
