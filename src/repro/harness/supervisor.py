"""Fault-tolerant campaign supervisor for the parallel scheduler.

A figure, report, bench, or validate campaign fans thousands of
(benchmark, mode, config, seed) simulations across a process pool.
Without supervision, one OOM-killed worker, one hung simulation, or one
``KeyboardInterrupt`` aborts the whole fleet and throws away every
completed cell — exactly the fragility long full-system-simulation
campaigns cannot tolerate.  This module wraps the scheduler in a
recovery layer, applying the retry/abort discipline of persistent-memory
transaction runtimes to the harness itself:

* **watchdog timeouts** — every pool job has a wall-clock deadline;
  stragglers are killed with the pool and requeued;
* **bounded retry with deterministic backoff** — failed jobs are
  re-submitted with exponential backoff and *seeded* jitter, so a rerun
  of the same campaign schedules identically;
* **quarantine** — after ``max_attempts`` failures a job is pulled from
  the fleet so one poison input cannot starve everything else; it is
  finished in-process by the chaos-free serial fallback;
* **pool-death recovery** — a ``BrokenProcessPool`` (worker SIGKILL,
  OOM) rebuilds the pool and re-enqueues the in-flight jobs; after
  ``max_pool_rebuilds`` deaths the campaign degrades gracefully to
  serial execution;
* **resumable journal** — completed jobs are appended (atomically, one
  JSON line each) to ``<cache>/journal/<campaign-id>.jsonl``; an
  interrupted campaign rerun with ``--resume`` re-simulates only the
  journal-missing cells;
* **chaos mode** — ``REPRO_CHAOS=kill:p,hang:p,corrupt:p`` randomly
  SIGKILLs workers, injects hangs, and corrupts just-written cache
  entries, so tests and CI can prove every recovery path actually fires.

None of this changes *what* is computed: results are merged by job
position exactly as in :mod:`repro.harness.parallel`, simulation is a
pure function of ``(trace, config)``, and chaos only perturbs scheduling
and cache files (which are integrity-checked and self-healing) — so a
campaign that survives any amount of injected failure is byte-identical
to a clean serial run.  ``--no-supervise`` bypasses this module
entirely and reproduces the unsupervised scheduler behaviour.

See ``docs/RESILIENCE.md`` for the failure taxonomy and policies.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.harness import cache as disk_cache
from repro.harness import runner
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry
from repro.stats.run import RunStats
from repro.uarch.pipeline import simulate

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_SEED = "REPRO_CHAOS_SEED"
ENV_JOB_TIMEOUT = "REPRO_JOB_TIMEOUT"
ENV_MAX_ATTEMPTS = "REPRO_MAX_ATTEMPTS"
ENV_MAX_POOL_REBUILDS = "REPRO_MAX_POOL_REBUILDS"

#: How long a chaos-injected hang sleeps — far beyond any sane job
#: timeout, so a hang always manifests as a watchdog timeout.
_HANG_SECONDS = 3600.0

#: Cap on recorded per-campaign events so a pathological campaign cannot
#: grow the failure report without bound.
_MAX_EVENTS = 1000


# ----------------------------------------------------------------------
# chaos specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSpec:
    """Per-event-type injection probabilities, seeded for reproducibility.

    Process faults — ``kill`` SIGKILLs the worker before it starts
    (exercises ``BrokenProcessPool`` recovery), ``hang`` sleeps long
    enough to trip the watchdog (exercises timeouts), ``corrupt``
    garbles the cache entry the worker just wrote (exercises
    integrity-check recovery).

    Network faults (http transport, injected coordinator-side by
    :mod:`repro.harness.transport`) — ``drop`` loses a response after
    the worker did the work, ``delay`` pushes latency past the request
    deadline, ``garble`` flips response bytes (the CRC envelope must
    reject them), ``partition`` makes the peer unreachable for the
    attempt.

    Draws are deterministic in ``(seed, job digest, attempt)``, so a
    chaotic campaign replays identically.
    """

    _PROCESS_EVENTS = ("kill", "hang", "corrupt")
    _NETWORK_EVENTS = ("drop", "delay", "garble", "partition")

    kill: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    drop: float = 0.0
    delay: float = 0.0
    garble: float = 0.0
    partition: float = 0.0
    seed: int = 0

    def process_active(self) -> bool:
        return any(getattr(self, name) > 0 for name in self._PROCESS_EVENTS)

    def network_active(self) -> bool:
        return any(getattr(self, name) > 0 for name in self._NETWORK_EVENTS)

    def active(self) -> bool:
        return self.process_active() or self.network_active()

    def render(self) -> str:
        return ",".join(
            f"{name}:{getattr(self, name):g}"
            for name in self._PROCESS_EVENTS + self._NETWORK_EVENTS
            if getattr(self, name) > 0
        )

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosSpec":
        """Parse ``"kill:0.1,drop:0.05,garble:0.2"`` (any subset)."""
        rates = {
            name: 0.0 for name in cls._PROCESS_EVENTS + cls._NETWORK_EVENTS
        }
        for clause in filter(None, (c.strip() for c in text.split(","))):
            name, _, value = clause.partition(":")
            name = name.strip()
            if name not in rates:
                raise ValueError(
                    f"unknown chaos event {name!r} in {text!r} "
                    f"(expected kill/hang/corrupt/drop/delay/garble/partition)"
                )
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(f"bad chaos rate in {clause!r}") from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate out of [0, 1] in {clause!r}")
            rates[name] = rate
        return cls(seed=seed, **rates)

    @classmethod
    def from_env(cls, environ=os.environ) -> "ChaosSpec":
        """The active chaos spec (inert when ``REPRO_CHAOS`` is unset)."""
        text = environ.get(ENV_CHAOS, "")
        if not text:
            return cls()
        try:
            seed = int(environ.get(ENV_CHAOS_SEED, "0"))
        except ValueError:
            seed = 0
        return cls.parse(text, seed=seed)


def _chaos_rng(spec: ChaosSpec, digest: str, attempt: int) -> random.Random:
    return random.Random(f"{spec.seed}|{digest}|{attempt}")


def _corrupt_file(path: Path, rng: random.Random) -> None:
    """Garble *path* in place: truncate it or flip a few bytes.

    Deliberately non-atomic — this simulates torn writes and bit rot.
    The integrity layer (RPTR2 CRC footer, stats CRC envelope) must
    detect the damage on the next load and drop the entry.
    """
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return
    if len(blob) < 2:
        return
    if rng.random() < 0.5:
        blob = blob[: rng.randrange(1, len(blob))]
    else:
        for _ in range(3):
            index = rng.randrange(len(blob))
            blob[index] ^= 1 + rng.randrange(255)
    try:
        path.write_bytes(bytes(blob))
    except OSError:
        pass


# ----------------------------------------------------------------------
# supervisor configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout/quarantine policy (env-overridable, see below)."""

    #: wall-clock seconds a single pool job may run before the watchdog
    #: kills the pool and requeues it (``REPRO_JOB_TIMEOUT``).
    job_timeout: float = 300.0
    #: failures (of any kind) before a job is quarantined
    #: (``REPRO_MAX_ATTEMPTS``).
    max_attempts: int = 3
    #: pool deaths tolerated before degrading to serial execution
    #: (``REPRO_MAX_POOL_REBUILDS``).
    max_pool_rebuilds: int = 3
    #: exponential-backoff base and cap, in seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: jitter fraction applied on top of the backoff (seeded — reruns of
    #: the same campaign back off identically).
    jitter: float = 0.5
    seed: int = 0

    @classmethod
    def from_env(cls, environ=os.environ) -> "SupervisorConfig":
        def _float(name: str, default: float, low: float) -> float:
            try:
                return max(low, float(environ[name]))
            except (KeyError, ValueError):
                return default

        def _int(name: str, default: int, low: int) -> int:
            try:
                return max(low, int(environ[name]))
            except (KeyError, ValueError):
                return default

        return cls(
            job_timeout=_float(ENV_JOB_TIMEOUT, cls.job_timeout, 0.1),
            max_attempts=_int(ENV_MAX_ATTEMPTS, cls.max_attempts, 1),
            max_pool_rebuilds=_int(
                ENV_MAX_POOL_REBUILDS, cls.max_pool_rebuilds, 0
            ),
        )


# ----------------------------------------------------------------------
# module state (mirrors parallel.set_default_jobs's CLI plumbing)
# ----------------------------------------------------------------------
_ENABLED = True
_RESUME = False
_JOB_TIMEOUT_OVERRIDE: Optional[float] = None
_CAMPAIGNS: List["CampaignReport"] = []


def set_enabled(flag: bool) -> None:
    """Route ``run_variants`` through the supervisor (the default) or
    straight to the unsupervised scheduler (``--no-supervise``)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


def set_resume(flag: bool) -> None:
    """Honour existing campaign journals instead of restarting them."""
    global _RESUME
    _RESUME = bool(flag)


def resume_requested() -> bool:
    return _RESUME


def set_job_timeout(seconds: Optional[float]) -> None:
    """CLI override for the per-job watchdog deadline."""
    global _JOB_TIMEOUT_OVERRIDE
    _JOB_TIMEOUT_OVERRIDE = seconds if seconds is None else max(0.1, seconds)


def current_config() -> SupervisorConfig:
    config = SupervisorConfig.from_env()
    if _JOB_TIMEOUT_OVERRIDE is not None:
        config = dataclasses.replace(config, job_timeout=_JOB_TIMEOUT_OVERRIDE)
    return config


def reset() -> None:
    """Restore default supervisor state (tests)."""
    global _ENABLED, _RESUME, _JOB_TIMEOUT_OVERRIDE
    _ENABLED = True
    _RESUME = False
    _JOB_TIMEOUT_OVERRIDE = None
    _CAMPAIGNS.clear()


def campaign_reports() -> List["CampaignReport"]:
    """Every supervised campaign this process ran, in order."""
    return list(_CAMPAIGNS)


# ----------------------------------------------------------------------
# campaign identity and journal
# ----------------------------------------------------------------------
def job_digest(job) -> str:
    """Stable identity of one (trace, config) cell — the stats digest."""
    return disk_cache.stats_digest(job.trace_key, job.config)


def campaign_id(jobs_list: Sequence) -> str:
    """Content identity of a campaign: order-independent over its cells."""
    blob = "|".join(sorted(job_digest(job) for job in jobs_list))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class CampaignJournal:
    """Append-only completion log for one campaign.

    One JSON object per line; each append is a single buffered write of
    one ``\\n``-terminated line followed by a flush, so a crash can tear
    at most the final line — which :meth:`load_done` skips.  Journals
    live beside the cache entries they refer to, so ``--resume`` can
    trust that a journaled job's result is (re-)loadable, and fall back
    to re-simulation when the entry has vanished or got corrupted.
    """

    def __init__(self, directory: Optional[Path], campaign: str) -> None:
        self.path = (
            directory / f"{campaign}.jsonl" if directory is not None else None
        )
        self.campaign = campaign
        self._handle = None
        self.appended = 0

    def _scan(self, source_filter) -> Set[str]:
        if self.path is None or not self.path.exists():
            return set()
        matched: Set[str] = set()
        try:
            with open(self.path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line
                    digest = record.get("job")
                    if isinstance(digest, str) and source_filter(
                        record.get("source")
                    ):
                        matched.add(digest)
        except OSError:
            return set()
        return matched

    def load_done(self) -> Set[str]:
        """Digests of jobs a previous (interrupted) run completed.

        Quarantine records are *not* completions — a quarantined job has
        no result and must not be treated as satisfied on resume.
        """
        return self._scan(lambda source: source != "quarantined")

    def load_quarantined(self) -> Set[str]:
        """Digests the interrupted run quarantined (exhausted retries).

        ``--resume`` routes these straight to the chaos-free serial
        fallback instead of burning the full retry ladder on a job the
        previous run already proved poisonous.
        """
        return self._scan(lambda source: source == "quarantined")

    def restart(self) -> None:
        """Truncate the journal (a fresh, non-resumed campaign)."""
        if self.path is None:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        except OSError:
            self.path = None  # journaling off for this campaign

    def append_quarantine(self, digest: str, label: str) -> None:
        """Record a quarantine decision so ``--resume`` inherits it.

        Written with the reserved source ``"quarantined"`` —
        :meth:`load_done` skips it; a later completion of the same job
        (the serial fallback succeeded) appends a normal record that
        wins on resume.
        """
        self.append(digest, label, "quarantined")

    def append(self, digest: str, label: str, source: str) -> None:
        if self.path is None:
            return
        line = json.dumps(
            {"job": digest, "label": label, "source": source},
            sort_keys=True,
            separators=(",", ":"),
        )
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.appended += 1
        except OSError:
            self.close()
            self.path = None

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


# ----------------------------------------------------------------------
# campaign report (--failures-out)
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """What one supervised campaign did to stay alive."""

    campaign: str
    jobs: int
    chaos: str = ""
    transport: str = "local"
    prescan: int = 0
    resumed: int = 0
    resumed_quarantined: int = 0
    journal_stale: int = 0
    scheduled: int = 0
    completed: int = 0
    remote: int = 0
    retries: int = 0
    net_retries: int = 0
    reassigned: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    chaos_corrupts: int = 0
    degraded_serial: bool = False
    degraded_local: bool = False
    quarantined: List[str] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)

    def event(self, kind: str, label: str, **detail: object) -> None:
        if len(self.events) < _MAX_EVENTS:
            self.events.append({"event": kind, "job": label, **detail})

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def failure_report() -> Dict[str, object]:
    """Aggregate failure/recovery report of every campaign this session."""
    totals = obs_metrics.supervisor_counters()
    transport_totals = obs_metrics.transport_counters()
    return {
        "schema": 2,
        "totals": totals.as_dict(),
        "transport": transport_totals.as_dict(),
        "recovered": totals.any_recovery() or transport_totals.any_activity(),
        "campaigns": [report.as_dict() for report in _CAMPAIGNS],
    }


def write_failure_report(path) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(failure_report(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# the worker (top-level so it pickles)
# ----------------------------------------------------------------------
def _do_work(kind: str, key, config, root: str):
    """Execute one unit of campaign work; returns ``(result, stored_path)``.

    ``kind == "trace"``: ensure the trace for *key* exists in the shared
    store; result is the generated length (0 when it already existed).
    ``kind == "sim"``: simulate *key* on *config*, persisting the stats.
    Runs identically in pool workers and in the serial fallback.
    """
    if kind == "trace":
        path = disk_cache.trace_path(key, root=root)
        if path is not None and path.exists():
            return 0, None
        trace = runner.generate_trace(key)
        stored = disk_cache.store_trace(key, trace, root=root)
        return len(trace), stored
    trace = disk_cache.load_cached_trace(key, root=root)
    if trace is None:
        # the trace phase should have produced it (or chaos ate it);
        # regenerate defensively
        trace = runner.generate_trace(key)
        disk_cache.store_trace(key, trace, root=root)
    stats = simulate(trace, config)
    stored = disk_cache.store_stats(key, config, stats, root=root)
    return stats, stored


def _supervised_worker(payload: Tuple) -> Tuple[object, float, int, bool]:
    """Pool entry point: chaos hooks around :func:`_do_work`.

    Returns ``(result, wall_seconds, worker_pid, chaos_corrupted)``.
    Chaos draws are deterministic in (seed, job digest, attempt): kill
    and hang fire *before* the work (they must not affect results),
    corruption fires *after* the result has been computed and returned
    bytes are already safe — it damages only the on-disk cache entry,
    which the integrity layer detects and drops on the next load.
    """
    kind, key, config, root, digest, attempt, spec = payload
    rng = None
    if spec is not None and spec.process_active():
        rng = _chaos_rng(spec, f"{kind}:{digest}", attempt)
        if rng.random() < spec.kill:
            os.kill(os.getpid(), signal.SIGKILL)
        if rng.random() < spec.hang:
            time.sleep(_HANG_SECONDS)
    started = time.perf_counter()
    result, stored = _do_work(kind, key, config, root)
    wall = time.perf_counter() - started
    corrupted = False
    if rng is not None and stored is not None and rng.random() < spec.corrupt:
        _corrupt_file(Path(stored), rng)
        corrupted = True
    return result, wall, os.getpid(), corrupted


# ----------------------------------------------------------------------
# phase runner
# ----------------------------------------------------------------------
class _Task:
    """One schedulable unit (a trace generation or a simulation)."""

    __slots__ = (
        "kind", "key", "config", "index", "label", "digest",
        "attempts", "quarantined", "done", "ready_at", "future",
        "started_at",
    )

    def __init__(self, kind, key, config, index, label, digest):
        self.kind = kind
        self.key = key
        self.config = config
        self.index = index
        self.label = label
        self.digest = digest
        self.attempts = 0
        self.quarantined = False
        self.done = False
        self.ready_at = 0.0
        self.future = None
        self.started_at = 0.0


class _DegradedToSerial(Exception):
    """Internal control flow: the pool died too often; go serial."""


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: SIGKILL live workers, then cancel queued work.

    Shared with :mod:`repro.harness.parallel`'s ``KeyboardInterrupt``
    path — never blocks waiting for a worker that may be hung.  The
    kill MUST come first: ``shutdown()`` drops the executor's process
    table (``_processes = None``), and a merely-shut-down executor
    still waits for hung workers at interpreter exit.  Killing the
    workers makes the executor observe a broken pool, which is the one
    state it knows how to wind down from without joining anything.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class _PhaseRunner:
    """Run one phase's tasks across a self-healing process pool."""

    def __init__(
        self,
        n_workers: int,
        root: str,
        config: SupervisorConfig,
        chaos: ChaosSpec,
        report: CampaignReport,
        on_done: Callable[[_Task, object, float, str], None],
        on_quarantine: Optional[Callable[[_Task], None]] = None,
    ) -> None:
        self.n_workers = n_workers
        self.root = root
        self.config = config
        # only process faults reach pool workers; network faults belong
        # to the http transport layer
        self.chaos = chaos if chaos.process_active() else None
        self.report = report
        self.on_done = on_done
        self.on_quarantine = on_quarantine
        self.counters = obs_metrics.supervisor_counters()
        self.pool: Optional[ProcessPoolExecutor] = None
        self.rebuilds_left = config.max_pool_rebuilds
        self.degraded = False

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self, remaining: int) -> None:
        if self.pool is not None:
            return
        self.pool = ProcessPoolExecutor(
            max_workers=min(self.n_workers, max(1, remaining))
        )

    def _pool_died(self, reason: str) -> None:
        if self.pool is not None:
            _terminate_pool(self.pool)
            self.pool = None
        if self.rebuilds_left <= 0:
            self.counters.serial_degradations += 1
            self.report.degraded_serial = True
            self.report.event("serial_degrade", "*", reason=reason)
            raise _DegradedToSerial(reason)
        self.rebuilds_left -= 1
        self.counters.pool_rebuilds += 1
        self.report.pool_rebuilds += 1
        self.report.event("pool_rebuild", "*", reason=reason)

    # -- task bookkeeping ----------------------------------------------
    def _charge(self, task: _Task, kind: str, detail: str = "") -> None:
        """Count one failed attempt; schedule the retry or quarantine."""
        task.attempts += 1
        task.future = None
        self.report.event(kind, task.label, attempt=task.attempts, detail=detail)
        if kind == "timeout":
            self.counters.timeouts += 1
            self.report.timeouts += 1
        if task.attempts >= self.config.max_attempts:
            task.quarantined = True
            self.counters.quarantined += 1
            self.report.quarantined.append(task.label)
            self.report.event("quarantine", task.label, attempts=task.attempts)
            if self.on_quarantine is not None:
                self.on_quarantine(task)
            return
        self.counters.retries += 1
        self.report.retries += 1
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (task.attempts - 1)),
        )
        rng = random.Random(f"{self.config.seed}|{task.digest}|{task.attempts}")
        task.ready_at = time.monotonic() + delay * (
            1.0 + self.config.jitter * rng.random()
        )

    def _complete(self, task: _Task, payload) -> None:
        result, wall, pid, corrupted = payload
        task.done = True
        task.future = None
        if corrupted:
            self.counters.chaos_corrupts += 1
            self.report.chaos_corrupts += 1
            self.report.event("chaos_corrupt", task.label)
        self.on_done(task, result, wall, f"pid:{pid}")

    def _run_serial(self, task: _Task) -> None:
        """Chaos-free in-process execution (quarantine / degraded mode)."""
        started = time.perf_counter()
        result, _stored = _do_work(task.kind, task.key, task.config, self.root)
        task.done = True
        self.on_done(task, result, time.perf_counter() - started, "main")

    # -- the loop ------------------------------------------------------
    def run(self, tasks: List[_Task]) -> None:
        """Drive *tasks* to completion; every task ends ``done``."""
        try:
            if not self.degraded:
                self._run_pooled(tasks)
        except _DegradedToSerial:
            self.degraded = True
        finally:
            if self.pool is not None:
                # _terminate_pool, not shutdown(): a worker may be mid-hang
                # and shutdown alone would leak it past process exit.
                _terminate_pool(self.pool)
                self.pool = None
        # quarantined stragglers (and everything left after a serial
        # degrade) complete in-process, chaos-free — a poison job gets
        # one last deterministic chance, and a real bug surfaces with
        # its original traceback
        for task in tasks:
            if not task.done:
                self._run_serial(task)

    def _submit(self, task: _Task, in_flight: Dict) -> bool:
        payload = (
            task.kind, task.key, task.config, self.root,
            task.digest, task.attempts, self.chaos,
        )
        try:
            future = self.pool.submit(_supervised_worker, payload)
        except (BrokenProcessPool, RuntimeError) as exc:
            self._pool_died(f"submit failed: {exc!r}")
            return False
        task.future = future
        task.started_at = time.monotonic()
        in_flight[future] = task
        return True

    def _run_pooled(self, tasks: List[_Task]) -> None:
        in_flight: Dict = {}
        tick = max(0.02, min(0.25, self.config.job_timeout / 10.0))
        while True:
            active = [t for t in tasks if not t.done and not t.quarantined]
            if not active:
                return
            now = time.monotonic()
            ready = [
                t for t in active if t.future is None and t.ready_at <= now
            ]
            self._ensure_pool(len(active))
            for task in ready:
                if len(in_flight) >= self.n_workers:
                    break
                if not self._submit(task, in_flight):
                    break
            if not in_flight:
                # everything is backing off — sleep to the soonest retry
                waiting = [t.ready_at for t in active if t.future is None]
                if waiting:
                    time.sleep(min(0.5, max(0.0, min(waiting) - now)))
                continue
            done, _pending = wait(
                set(in_flight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                task = in_flight.pop(future)
                try:
                    payload = future.result()
                except CancelledError:
                    task.future = None
                    continue
                except BrokenProcessPool as exc:
                    broken = True
                    self._charge(task, "worker_death", repr(exc))
                    continue
                except Exception as exc:
                    self._charge(task, "worker_error", repr(exc))
                    continue
                self._complete(task, payload)
            if broken:
                # the pool is gone: every other in-flight job died with
                # it; at most n_workers jobs get charged per death
                for future, task in list(in_flight.items()):
                    del in_flight[future]
                    self._charge(task, "worker_death", "pool died")
                self._pool_died("BrokenProcessPool")
                continue
            # watchdog: kill the pool when any running job is overdue
            now = time.monotonic()
            overdue = [
                task
                for task in in_flight.values()
                if now - task.started_at > self.config.job_timeout
            ]
            if overdue:
                for future, task in list(in_flight.items()):
                    del in_flight[future]
                    if future.done() and not future.cancelled():
                        # finished in the window between wait() and now
                        try:
                            self._complete(task, future.result())
                            continue
                        except Exception:
                            pass
                    if task in overdue:
                        self._charge(
                            task,
                            "timeout",
                            f"exceeded {self.config.job_timeout:g}s",
                        )
                    else:
                        task.future = None  # innocent bystander: requeue
                self._pool_died("watchdog timeout")


# ----------------------------------------------------------------------
# the supervised scheduler
# ----------------------------------------------------------------------
def run_supervised(
    jobs_list: Sequence, n_workers: int
) -> List[RunStats]:
    """Fault-tolerant equivalent of
    :func:`repro.harness.parallel.run_variants` for ``n_workers > 1``.

    Identical result semantics (deterministic job-position merge, both
    cache layers honoured, every trace generated once fleet-wide) plus
    the supervision described in the module docstring.
    """
    import tempfile

    jobs_list = list(jobs_list)
    config = current_config()
    chaos = ChaosSpec.from_env()
    counters = obs_metrics.supervisor_counters()
    counters.campaigns += 1
    counters.jobs += len(jobs_list)

    results: List[Optional[RunStats]] = [None] * len(jobs_list)
    report = CampaignReport(
        campaign=campaign_id(jobs_list),
        jobs=len(jobs_list),
        chaos=chaos.render(),
    )
    _CAMPAIGNS.append(report)

    root = disk_cache.cache_root()
    scratch: Optional[tempfile.TemporaryDirectory] = None
    if root is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-scratch-")
        root = Path(scratch.name)
    journal = CampaignJournal(
        disk_cache.journal_dir(root=root), report.campaign
    )
    # the journal is consulted *before* the prescan so a ``--resume``
    # disk hit is attributed to the journal (``resumed``), not to an
    # ordinary warm cache (``prescan``) — the counters are how a resume
    # proves it re-simulated only the journal-missing cells
    if resume_requested():
        done_digests = journal.load_done()
        # quarantined in the interrupted run and never completed since:
        # don't burn the retry ladder on a known-poison job again
        inherited_quarantine = journal.load_quarantined() - done_digests
    else:
        journal.restart()
        done_digests = set()
        inherited_quarantine = set()

    try:
        root_str = str(root)

        # ---- prescan: memo, then disk (journal-attributed) -----------
        missing: List[Tuple[int, object, object]] = []
        for index, job in enumerate(jobs_list):
            key = job.trace_key
            label = f"{key.abbrev}/{key.mode.value}"
            memo = runner._STATS_CACHE.get((key, job.config))
            if memo is not None:
                results[index] = memo
                report.prescan += 1
                continue
            started = time.perf_counter()
            cached = runner.peek_cached_stats(key, job.config)
            if cached is None and done_digests:
                # a journaled cell invisible to the default-root peek
                # (scratch store): try the campaign root directly
                if disk_cache.stats_digest(key, job.config) in done_digests:
                    cached = runner.peek_cached_stats(
                        key, job.config, root=root_str
                    )
            wall = time.perf_counter() - started
            if cached is None:
                missing.append((index, job, key))
                continue
            results[index] = cached
            if disk_cache.stats_digest(key, job.config) in done_digests:
                counters.resumed += 1
                report.resumed += 1
                obs_metrics.record_variant("sim", label, "resumed", wall)
            else:
                report.prescan += 1
                obs_metrics.record_variant("sim", label, "disk", wall)

        # journal-done cells whose cached result vanished (or got
        # corrupted): they must be re-simulated
        for _index, job, key in missing:
            if disk_cache.stats_digest(key, job.config) in done_digests:
                counters.journal_stale += 1
                report.journal_stale += 1
                report.event(
                    "journal_stale", f"{key.abbrev}/{key.mode.value}"
                )

        # journal every already-satisfied cell so an interruption right
        # now still leaves a complete record
        for index, job in enumerate(jobs_list):
            if results[index] is None:
                continue
            digest = disk_cache.stats_digest(job.trace_key, job.config)
            if digest not in done_digests:
                label = f"{job.trace_key.abbrev}/{job.trace_key.mode.value}"
                journal.append(digest, label, "cached")
                done_digests.add(digest)

        if not missing:
            report.completed = report.prescan + report.resumed
            return results  # type: ignore[return-value]

        report.scheduled = len(missing)

        # imported lazily: transport imports this module at load time
        from repro.harness import transport as transport_mod

        fleet = transport_mod.maybe_fleet(config, chaos, report)

        def journal_quarantine(task: _Task) -> None:
            journal.append_quarantine(task.digest, task.label)

        def inherit_quarantine(task: _Task) -> bool:
            if task.digest not in inherited_quarantine:
                return False
            task.quarantined = True
            counters.resumed_quarantined += 1
            report.resumed_quarantined += 1
            report.event("resume_quarantine", task.label)
            return True

        # ---- phase 1: unique traces ----------------------------------
        seen: Set = set()
        trace_tasks: List[_Task] = []
        for _, _, key in missing:
            if key in seen:
                continue
            seen.add(key)
            memo = runner._TRACE_CACHE.get(key)
            path = disk_cache.trace_path(key, root=root_str)
            if memo is not None:
                if path is not None and not path.exists():
                    disk_cache.store_trace(key, memo, root=root_str)
                continue
            if path is None or not path.exists():
                task = _Task(
                    "trace", key, None, None,
                    f"{key.abbrev}/{key.mode.value}",
                    disk_cache.trace_digest(key),
                )
                inherit_quarantine(task)
                trace_tasks.append(task)

        def trace_done(task: _Task, result, wall: float, worker: str) -> None:
            if result:
                obs_metrics.record_variant(
                    "trace", task.label, "generated", wall, worker=worker
                )

        runner_ = _PhaseRunner(
            n_workers, root_str, config, chaos, report, trace_done,
            on_quarantine=journal_quarantine,
        )
        if trace_tasks and fleet is None:
            # with an http fleet the trace phase is skipped: workers own
            # their stores and (re)generate traces inside sim jobs
            runner_.run(trace_tasks)

        # ---- phase 2: simulations ------------------------------------
        sim_tasks: List[_Task] = []
        job_by_index = {index: job for index, job, _ in missing}
        for index, job, key in missing:
            task = _Task(
                "sim", key, job.config, index,
                f"{key.abbrev}/{key.mode.value}",
                disk_cache.stats_digest(key, job.config),
            )
            inherit_quarantine(task)
            sim_tasks.append(task)

        def sim_done(task: _Task, result, wall: float, worker: str) -> None:
            results[task.index] = result
            job = job_by_index[task.index]
            runner.seed_stats_cache(task.key, job.config, result)
            if worker.startswith("http:"):
                source = "remote"
                # remote workers own their stores; persist the result in
                # the campaign root too, so the journal's promise (a
                # journaled cell is loadable here) holds for --resume
                disk_cache.store_stats(
                    task.key, job.config, result, root=root_str
                )
            else:
                source = "simulated"
            obs_metrics.record_variant(
                "sim", task.label, source, wall, worker=worker
            )
            journal.append(task.digest, task.label, source)
            report.completed += 1

        sim_runner = _PhaseRunner(
            n_workers, root_str, config, chaos, report, sim_done,
            on_quarantine=journal_quarantine,
        )
        sim_runner.degraded = runner_.degraded  # don't re-learn the lesson
        if fleet is not None:
            # degradation ladder rung 1: the fleet completes what it
            # can; whatever it leaves not-done falls through to the
            # local pool below, which itself degrades to serial
            fleet.run(sim_tasks, sim_done)
        sim_runner.run(sim_tasks)

        report.completed += report.prescan + report.resumed
        return results  # type: ignore[return-value]
    finally:
        journal.close()
        if scratch is not None:
            scratch.cleanup()
        if telemetry.enabled():
            for name, value in counters.as_dict().items():
                telemetry.gauge_set(f"supervisor.{name}", value)
