"""Text renderers for the paper's configuration tables (Tables 1-3)."""

from __future__ import annotations

from repro.uarch.config import MachineConfig, SSB_LATENCY_TABLE
from repro.workloads.registry import PAPER_SPECS, WORKLOADS


def table1_text() -> str:
    """Table 1: the benchmark inventory, paper counts + scaled counts."""
    lines = [
        "Table 1: Benchmarks (64-byte, block-aligned nodes; one clwb per node update)",
        f"{'Abbrev':<8}{'Benchmark':<14}{'#InitOps':>12}{'#SimOps':>10}"
        f"{'scaled init':>13}{'scaled sim':>12}",
    ]
    for ab in WORKLOADS:
        spec = PAPER_SPECS[ab]
        lines.append(
            f"{spec.abbrev:<8}{spec.name:<14}{spec.paper_init_ops:>12,}"
            f"{spec.paper_sim_ops:>10,}{spec.scaled_init_ops:>13,}"
            f"{spec.scaled_sim_ops:>12,}"
        )
    return "\n".join(lines)


def table2_text(config: MachineConfig = MachineConfig()) -> str:
    """Table 2: the baseline system configuration."""
    rows = [
        ("Processor", f"OOO, {config.clock_ghz}GHz, {config.width}-wide issue/retire"),
        (
            "",
            f"ROB: {config.rob_entries}, fetchQ/issueQ/LSQ: "
            f"{config.fetchq_entries}/{config.issueq_entries}/{config.lsq_entries}",
        ),
        ("L1I and L1D", _cache_row(config.l1)),
        ("L2", _cache_row(config.l2)),
        ("L3", _cache_row(config.l3)),
        ("SSB", "variable size and latency (Table 3)"),
        ("Checkpoint Buffer", f"{config.checkpoint_entries} entries"),
        (
            "NVMM",
            f"{config.nvmm_read_cycles / config.clock_ghz:.0f}ns read, "
            f"{config.nvmm_write_cycles / config.clock_ghz:.0f}ns write "
            f"({config.nvmm_banks}-way bank parallelism)",
        ),
    ]
    lines = ["Table 2: Baseline system configuration"]
    for key, value in rows:
        lines.append(f"{key:<20}{value}")
    return "\n".join(lines)


def _cache_row(cache) -> str:
    size = cache.size_bytes
    if size >= 1 << 20:
        size_txt = f"{size >> 20}MB"
    else:
        size_txt = f"{size >> 10}KB"
    return (
        f"{size_txt}, {cache.ways}-way, {cache.block_size}B block, "
        f"{cache.latency} cycles"
    )


def table3_text() -> str:
    """Table 3: SSB configurations and access latencies."""
    sizes = sorted(SSB_LATENCY_TABLE)
    lines = ["Table 3: SSB configurations and parameters"]
    lines.append("Num entries     " + "".join(f"{s:>6}" for s in sizes))
    lines.append(
        "Latency (cycles)" + "".join(f"{SSB_LATENCY_TABLE[s]:>6}" for s in sizes)
    )
    return "\n".join(lines)
