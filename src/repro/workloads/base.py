"""Shared workload infrastructure: the :class:`Workbench` and base class."""

from __future__ import annotations

import abc
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Set

from repro.isa.recorder import TraceRecorder
from repro.isa.trace import Trace
from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.pmem.domain import PersistenceDomain
from repro.txn.manager import TxManager
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps


#: Marker emitted between operations; tests use it to slice traces.
OP_MARKER = "op-boundary"


@dataclass
class OpResult:
    """Outcome of a single workload operation."""

    key: int
    inserted: bool = False
    deleted: bool = False
    swapped: bool = False


class Workbench:
    """Bundles the heap, allocator, recorder, persistence domain and
    transaction manager a workload runs on.

    Parameters
    ----------
    mode:
        Persistence variant (Figure 8 bars).
    record:
        Attach a :class:`~repro.isa.recorder.TraceRecorder` so the run emits
        a timing trace.
    track_persistence:
        Attach a :class:`~repro.pmem.domain.PersistenceDomain` so crash
        semantics can be tested.
    """

    def __init__(
        self,
        mode: PersistMode = PersistMode.LOG_P_SF,
        heap_size: int = 1 << 26,
        record: bool = False,
        track_persistence: bool = False,
        log_capacity: int = 1 << 16,
        alu_per_load: int = 1,
        alu_per_store: int = 1,
        seed: int = 0,
        flush_with: str = "clwb",
    ):
        self.mode = mode
        self.heap = NVMHeap(heap_size)
        self.alloc = Allocator(self.heap)
        self.recorder: Optional[TraceRecorder] = None
        if record:
            self.recorder = TraceRecorder(alu_per_load, alu_per_store)
            self.heap.attach(self.recorder)
        self.domain: Optional[PersistenceDomain] = None
        if track_persistence:
            self.domain = PersistenceDomain(self.heap)
            self.heap.attach(self.domain)
        self.persist = PersistOps(mode, self.recorder, self.domain, flush_with)
        self.tx = TxManager(self.heap, self.alloc, self.persist, log_capacity)
        self.rng = random.Random(seed)

    @property
    def trace(self) -> Optional[Trace]:
        return self.recorder.trace if self.recorder else None

    @contextmanager
    def untimed(self) -> Iterator[None]:
        """Suppress trace recording (the paper's fast-forward mode)."""
        if self.recorder is None:
            yield
        else:
            with self.recorder.fast_forward():
                yield

    def finish_init(self) -> None:
        """Declare initialisation complete: everything becomes durable and
        the timed trace starts empty.

        Mirrors the paper's methodology where #InitOps run in fast-forward
        and simulation starts from a clean, fully-persisted structure —
        constructor-time stores (table zeroing etc.) are dropped from the
        trace so they are not billed to the measured ops.
        """
        if self.domain is not None:
            self.domain.sync_base()
        if self.recorder is not None:
            self.recorder.trace = Trace()
        self.persist.n_clwb = 0
        self.persist.n_clflushopt = 0
        self.persist.n_pcommit = 0
        self.persist.n_sfence = 0


class PersistentWorkload(abc.ABC):
    """Base class for the seven benchmarks.

    Subclasses implement a key-indexed *insert-or-delete* operation (except
    String Swap, which overrides :meth:`random_operation`) plus structure
    walking for invariant checks.  A Python-side reference model (a plain
    ``dict``) tracks the expected contents; crash tests compare the
    recovered NVMM structure against it.
    """

    #: Full benchmark name and the paper's two-letter abbreviation.
    name: str = ""
    abbrev: str = ""

    def __init__(self, bench: Workbench):
        self.bench = bench
        self.heap = bench.heap
        self.alloc = bench.alloc
        self.tx = bench.tx
        self.persist = bench.persist
        self.rng = bench.rng
        #: Reference model: key -> value (or workload-specific contents).
        self.model: dict = {}
        self._key_space = 1 << 20

    # ------------------------------------------------------------------
    # population / operations
    # ------------------------------------------------------------------
    def populate(self, n_ops: int) -> None:
        """Run *n_ops* untimed operations to warm the structure up."""
        with self.bench.untimed():
            for _ in range(n_ops):
                self.random_operation()
        self.bench.finish_init()

    def random_operation(self) -> OpResult:
        """One paper-style operation on a random key."""
        return self.operation(self.rng.randrange(self._key_space))

    @abc.abstractmethod
    def operation(self, key: int) -> OpResult:
        """Search *key*; delete it if present, insert it otherwise."""

    def run(self, n_ops: int, mark: bool = False) -> None:
        """Run *n_ops* timed operations (the paper's #SimOps)."""
        for _ in range(n_ops):
            if mark and self.bench.recorder is not None:
                self.bench.recorder.marker(OP_MARKER)
            self.random_operation()

    # ------------------------------------------------------------------
    # recovery / checking
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Post-crash recovery; returns number of undo entries applied."""
        return self.tx.recover()

    @abc.abstractmethod
    def check_invariants(self) -> Optional[str]:
        """Check structural invariants *and* contents against the model.

        Returns an error message, or ``None`` when consistent.  Always runs
        untimed.
        """

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _alloc_node(self) -> int:
        """Allocate one 64-byte, block-aligned node."""
        return self.alloc.alloc(CACHE_BLOCK)

    def _compute(self, n: int) -> None:
        """Emit ALU padding (key comparisons etc.) when recording."""
        if self.bench.recorder is not None:
            self.bench.recorder.compute(n)

    def _dry_run_writes(self, mutate: Callable[[], None]) -> Set[int]:
        """Dry-run *mutate* against a shadow heap; returns the cache blocks
        it would write to *existing* storage (fresh allocations excluded —
        newly allocated nodes are unreachable on crash and need no undo
        logging).  All side effects of the dry run are discarded.
        """
        from repro.mem.shadow import ShadowHeap

        shadow = ShadowHeap(self.heap)
        alloc_state = self.alloc.checkpoint()
        high_water = self.alloc.high_water_mark
        saved_heap = self.heap
        self.heap = shadow  # type: ignore[assignment]
        try:
            mutate()
        finally:
            self.heap = saved_heap
            self.alloc.restore(alloc_state)
        return {block for block in shadow.written_blocks if block < high_water}
