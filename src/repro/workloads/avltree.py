"""AVL-tree (AT) benchmark — paper §3.2, full-logging discipline.

Node layout (one cache block)::

    +0   key
    +8   value
    +16  left child pointer
    +24  right child pointer
    +32  height

Full logging (paper §3.2 / Figure 5): before mutating anything, the
transaction logs every node the operation may modify — the root-to-leaf
search path (the static set the paper describes) unioned with the exact
write set obtained by dry-running the mutation against a shadow heap (see
:mod:`repro.workloads.fulllog`).  The operation then needs exactly one set
of four pcommits whether or not rebalancing triggers, and the tree is
always balanced in the durable image.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.workloads.base import OpResult, PersistentWorkload, Workbench
from repro.workloads.fulllog import FullLoggingMixin, FullLoggingViolation

__all__ = ["AVLTreeWorkload", "FullLoggingViolation"]

_KEY = 0
_VAL = 8
_LEFT = 16
_RIGHT = 24
_HEIGHT = 32


class AVLTreeWorkload(FullLoggingMixin, PersistentWorkload):
    """Insert-or-delete on a persistent AVL tree with full logging."""

    name = "AVL-tree"
    abbrev = "AT"

    def __init__(self, bench: Workbench, key_space: int = 4096):
        super().__init__(bench)
        self._key_space = key_space
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)  # root pointer
        self.heap.store_u64(self.meta + 8, 0)  # node count
        self._init_full_logging()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def _root(self) -> int:
        return self.heap.load_u64(self.meta + 0)

    def _set_root(self, addr: int) -> None:
        self._store(self.meta, 0, addr)

    def _key(self, node: int) -> int:
        return self.heap.load_u64(node + _KEY)

    def _left(self, node: int) -> int:
        return self.heap.load_u64(node + _LEFT)

    def _right(self, node: int) -> int:
        return self.heap.load_u64(node + _RIGHT)

    def _height(self, node: int) -> int:
        return self.heap.load_u64(node + _HEIGHT) if node else 0

    def _update_height(self, node: int) -> None:
        self._store(
            node,
            _HEIGHT,
            1 + max(self._height(self._left(node)), self._height(self._right(node))),
        )

    def _balance(self, node: int) -> int:
        return self._height(self._left(node)) - self._height(self._right(node))

    # ------------------------------------------------------------------
    # full logging: the static (paper-described) part is the search path
    # plus, for two-child deletes, the in-order successor spine.
    # ------------------------------------------------------------------
    def _search_path(self, key: int, for_delete: bool) -> List[int]:
        nodes: List[int] = []
        node = self._root()
        while node:
            self._compute(8)
            nodes.append(node)
            node_key = self._key(node)
            if key == node_key:
                if for_delete:
                    walk = self._right(node)
                    while walk:
                        nodes.append(walk)
                        walk = self._left(walk)
                break
            node = self._left(node) if key < node_key else self._right(node)
        return nodes

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        key %= self._key_space
        if self._search(key):
            self._delete(key)
            self.model.pop(key, None)
            return OpResult(key, deleted=True)
        self._insert(key, key ^ 0x7777)
        self.model[key] = key ^ 0x7777
        return OpResult(key, inserted=True)

    def _search(self, key: int) -> bool:
        node = self._root()
        while node:
            self._compute(8)
            node_key = self._key(node)
            if key == node_key:
                return True
            node = self._left(node) if key < node_key else self._right(node)
        return False

    # ------------------------------------------------------------------
    def _insert(self, key: int, value: int) -> None:
        static = self._search_path(key, for_delete=False)
        log_set = self._mutation_log_set(
            static, lambda: self._insert_body(key, value, set())
        )
        self._begin_guarded(log_set)
        fresh: Set[int] = set()
        self._insert_body(key, value, fresh)
        self._commit_guarded(fresh)

    def _insert_body(self, key: int, value: int, fresh: Set[int]) -> None:
        new_root = self._insert_rec(self._root(), key, value, fresh)
        self._set_root(new_root)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) + 1)
        self._dirty.add(self.meta)

    def _insert_rec(self, node: int, key: int, value: int, fresh: Set[int]) -> int:
        if not node:
            new = self._alloc_node()
            fresh.add(new)
            self._guard_fresh(new)
            self._store(new, _KEY, key)
            self._store(new, _VAL, value)
            self._store(new, _LEFT, 0)
            self._store(new, _RIGHT, 0)
            self._store(new, _HEIGHT, 1)
            return new
        node_key = self._key(node)
        if key < node_key:
            self._store(node, _LEFT, self._insert_rec(self._left(node), key, value, fresh))
        elif key > node_key:
            self._store(node, _RIGHT, self._insert_rec(self._right(node), key, value, fresh))
        else:
            self._store(node, _VAL, value)
            return node
        self._update_height(node)
        return self._rebalance(node)

    # ------------------------------------------------------------------
    def _delete(self, key: int) -> None:
        static = self._search_path(key, for_delete=True)
        log_set = self._mutation_log_set(static, lambda: self._delete_body(key))
        self._begin_guarded(log_set)
        self._delete_body(key)
        self._commit_guarded(set())

    def _delete_body(self, key: int) -> None:
        new_root = self._delete_rec(self._root(), key)
        self._set_root(new_root)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) - 1)
        self._dirty.add(self.meta)

    def _delete_rec(self, node: int, key: int) -> int:
        if not node:
            return 0
        node_key = self._key(node)
        if key < node_key:
            self._store(node, _LEFT, self._delete_rec(self._left(node), key))
        elif key > node_key:
            self._store(node, _RIGHT, self._delete_rec(self._right(node), key))
        else:
            left, right = self._left(node), self._right(node)
            if not left or not right:
                return left or right  # node dropped; not reclaimed (§5.2)
            # Two children: splice in the in-order successor's key/value.
            succ = right
            while self._left(succ):
                succ = self._left(succ)
            self._store(node, _KEY, self._key(succ))
            self._store(node, _VAL, self.heap.load_u64(succ + _VAL))
            self._store(node, _RIGHT, self._delete_min(right))
        self._update_height(node)
        return self._rebalance(node)

    def _delete_min(self, node: int) -> int:
        if not self._left(node):
            return self._right(node)
        self._store(node, _LEFT, self._delete_min(self._left(node)))
        self._update_height(node)
        return self._rebalance(node)

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------
    def _rebalance(self, node: int) -> int:
        balance = self._balance(node)
        if balance > 1:
            if self._balance(self._left(node)) < 0:
                self._store(node, _LEFT, self._rotate_left(self._left(node)))
            return self._rotate_right(node)
        if balance < -1:
            if self._balance(self._right(node)) > 0:
                self._store(node, _RIGHT, self._rotate_right(self._right(node)))
            return self._rotate_left(node)
        return node

    def _rotate_left(self, node: int) -> int:
        pivot = self._right(node)
        self._store(node, _RIGHT, self._left(pivot))
        self._store(pivot, _LEFT, node)
        self._update_height(node)
        self._update_height(pivot)
        return pivot

    def _rotate_right(self, node: int) -> int:
        pivot = self._left(node)
        self._store(node, _LEFT, self._right(pivot))
        self._store(pivot, _RIGHT, node)
        self._update_height(node)
        self._update_height(pivot)
        return pivot

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[int, int]]:
        """In-order (key, value) pairs, untimed."""
        result: List[Tuple[int, int]] = []
        with self.bench.untimed():
            self._walk(self._root(), result, set())
        return result

    def _walk(self, node: int, out: List[Tuple[int, int]], seen: Set[int]) -> None:
        if not node:
            return
        if node in seen:
            raise RuntimeError("cycle in AVL tree")
        seen.add(node)
        self._walk(self._left(node), out, seen)
        out.append((self._key(node), self.heap.load_u64(node + _VAL)))
        self._walk(self._right(node), out, seen)

    def _check_node(self, node: int) -> int:
        """Validate AVL invariants below *node*; returns its height."""
        if not node:
            return 0
        left_h = self._check_node(self._left(node))
        right_h = self._check_node(self._right(node))
        if abs(left_h - right_h) > 1:
            raise RuntimeError(f"imbalance at key {self._key(node)}")
        stored = self.heap.load_u64(node + _HEIGHT)
        actual = 1 + max(left_h, right_h)
        if stored != actual:
            raise RuntimeError(
                f"stale height at key {self._key(node)}: {stored} != {actual}"
            )
        return actual

    def check_invariants(self) -> Optional[str]:
        try:
            pairs = self.items()
            with self.bench.untimed():
                self._check_node(self._root())
        except RuntimeError as exc:
            return str(exc)
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            return "in-order keys not sorted"
        if dict(pairs) != self.model:
            missing = set(self.model) - set(dict(pairs))
            extra = set(dict(pairs)) - set(self.model)
            return f"tree/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        return None
