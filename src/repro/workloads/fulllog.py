"""Full-logging support shared by the self-balancing tree workloads.

Paper §3.2: with *full logging*, every node that an operation (including
any rebalancing it may trigger) might modify is undo-logged up front, so
each operation costs exactly one four-pcommit transaction and the tree is
always balanced in the durable image.

The log set is computed in two parts:

* the **static part** — the root-to-leaf search path (plus the in-order
  successor spine for two-child deletes), the set the paper describes, and
* the **exact part** — the cache blocks a *dry run* of the mutation against
  a :class:`~repro.mem.shadow.ShadowHeap` would write.  Rotations can reach
  nodes off the search path (siblings, grandchildren, and post-rotation
  shapes); the dry run catches every such case without over-logging whole
  neighbourhoods.

Every store during the real mutation is checked against the logged set
(:class:`FullLoggingViolation` on a miss), turning any gap in the write-set
analysis into an immediate, loud failure instead of silent
unrecoverability.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set


class FullLoggingViolation(RuntimeError):
    """A store targeted a node the transaction did not log."""


class FullLoggingMixin:
    """Guarded-store machinery for tree workloads.

    Expects the host class to provide ``tx``, ``heap``, ``meta`` and the
    :class:`~repro.workloads.base.PersistentWorkload` helpers
    (``_dry_run_writes``).
    """

    _guarded: Optional[Set[int]] = None
    _dirty: Set[int]

    def _init_full_logging(self) -> None:
        self._guarded = None
        self._dirty = set()

    # ------------------------------------------------------------------
    def _store(self, node: int, offset: int, value: int) -> None:
        """Guarded 8-byte store into a (logged) node."""
        if self._guarded is not None and node not in self._guarded:
            raise FullLoggingViolation(f"store to unlogged node {node:#x}")
        self.heap.store_u64(node + offset, value)
        self._dirty.add(node)

    # ------------------------------------------------------------------
    def _mutation_log_set(
        self, static_nodes: Iterable[int], mutate: Callable[[], None]
    ) -> List[int]:
        """Static path ∪ dry-run write set, in stable order."""
        saved_guard, saved_dirty = self._guarded, self._dirty
        self._guarded, self._dirty = None, set()
        try:
            touched = self._dry_run_writes(mutate)
        finally:
            self._guarded, self._dirty = saved_guard, saved_dirty
        ordered: List[int] = []
        seen: Set[int] = set()
        for node in list(static_nodes) + sorted(touched):
            if node and node != self.meta and node not in seen:
                seen.add(node)
                ordered.append(node)
        return ordered

    # ------------------------------------------------------------------
    def _begin_guarded(self, log_nodes: Iterable[int]) -> None:
        """Open the transaction and undo-log every node in *log_nodes*
        plus the structure's metadata block (steps 1-2 of the protocol)."""
        self.tx.begin()
        guarded: Set[int] = set()
        for node in log_nodes:
            if node not in guarded:
                guarded.add(node)
                self.tx.log_block(node)
        self.tx.log_block(self.meta)
        guarded.add(self.meta)
        self.tx.seal()
        self._guarded = guarded
        self._dirty = set()

    def _commit_guarded(self, fresh: Set[int]) -> None:
        """Flush every dirtied and freshly-allocated node, then commit
        (steps 3-4 of the protocol)."""
        for node in sorted(self._dirty | fresh):
            self.tx.flush(node)
        self.tx.flush(self.meta)
        self.tx.commit()
        self._guarded = None
        self._dirty = set()

    def _guard_fresh(self, node: int) -> None:
        """Freshly allocated nodes are unreachable on crash and need no
        undo logging; admit them to the guard set."""
        if self._guarded is not None:
            self._guarded.add(node)
