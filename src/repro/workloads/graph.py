"""Graph (GH) benchmark — paper §3.2: "Insert or delete edges in a graph".

A directed graph over a fixed vertex set, stored as per-vertex adjacency
lists of 64-byte edge nodes.  An operation picks a random (src, dst) pair,
searches src's adjacency list for dst, deletes the edge if present and
inserts it at the head otherwise — the same few-nodes-logged shape as the
linked list, which is why the paper groups GH with the low-logging-overhead
benchmarks.

Vertex table entry (one block per vertex)::

    +0   head pointer of the adjacency list
    +8   out-degree

Edge node (one block)::

    +0   destination vertex id
    +8   weight
    +16  next edge pointer
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.mem.heap import CACHE_BLOCK
from repro.workloads.base import OpResult, PersistentWorkload, Workbench

_HEAD = 0
_DEGREE = 8

_DST = 0
_WEIGHT = 8
_NEXT = 16


class GraphWorkload(PersistentWorkload):
    """Insert-or-delete edges on a persistent adjacency-list graph."""

    name = "Graph"
    abbrev = "GH"

    def __init__(self, bench: Workbench, n_vertices: int = 256):
        super().__init__(bench)
        self.n_vertices = n_vertices
        self._key_space = n_vertices * n_vertices
        self.table = self.alloc.alloc(n_vertices * CACHE_BLOCK)
        for v in range(n_vertices):
            self.heap.store_u64(self._vertex(v) + _HEAD, 0)
            self.heap.store_u64(self._vertex(v) + _DEGREE, 0)
        #: model: set of (src, dst) pairs.
        self.model: Set[Tuple[int, int]] = set()

    def _vertex(self, v: int) -> int:
        return self.table + v * CACHE_BLOCK

    def _decode(self, key: int) -> Tuple[int, int]:
        return key // self.n_vertices, key % self.n_vertices

    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        src, dst = self._decode(key % self._key_space)
        return self.edge_operation(src, dst)

    def edge_operation(self, src: int, dst: int) -> OpResult:
        tx, heap = self.tx, self.heap
        vertex = self._vertex(src)
        key = src * self.n_vertices + dst

        # --- search the adjacency list --------------------------------
        prev = 0
        edge = heap.load_u64(vertex + _HEAD)
        while edge:
            self._compute(8)  # compare dst, advance, loop control
            if heap.load_u64(edge + _DST) == dst:
                break
            prev = edge
            edge = heap.load_u64(edge + _NEXT)

        if edge:
            # --- delete edge ------------------------------------------
            tx.begin()
            tx.log_block(vertex)
            if prev:
                tx.log_block(prev)
            tx.seal()
            nxt = heap.load_u64(edge + _NEXT)
            if prev:
                heap.store_u64(prev + _NEXT, nxt)
                tx.flush(prev)
            else:
                heap.store_u64(vertex + _HEAD, nxt)
            heap.store_u64(vertex + _DEGREE, heap.load_u64(vertex + _DEGREE) - 1)
            tx.flush(vertex)
            tx.commit()
            self.model.discard((src, dst))
            return OpResult(key, deleted=True)

        # --- insert edge at the head -----------------------------------
        new = self._alloc_node()
        heap.store_u64(new + _DST, dst)
        heap.store_u64(new + _WEIGHT, (src ^ dst) & 0xFFFF)
        heap.store_u64(new + _NEXT, heap.load_u64(vertex + _HEAD))
        tx.begin()
        tx.log_block(vertex)
        tx.seal()
        heap.store_u64(vertex + _HEAD, new)
        heap.store_u64(vertex + _DEGREE, heap.load_u64(vertex + _DEGREE) + 1)
        tx.flush(new)
        tx.flush(vertex)
        tx.commit()
        self.model.add((src, dst))
        return OpResult(key, inserted=True)

    # ------------------------------------------------------------------
    def edges(self) -> Set[Tuple[int, int]]:
        result: Set[Tuple[int, int]] = set()
        with self.bench.untimed():
            for src in range(self.n_vertices):
                edge = self.heap.load_u64(self._vertex(src) + _HEAD)
                seen = set()
                while edge:
                    if edge in seen:
                        raise RuntimeError(f"cycle in adjacency list of {src}")
                    seen.add(edge)
                    dst = self.heap.load_u64(edge + _DST)
                    if (src, dst) in result:
                        raise RuntimeError(f"duplicate edge ({src}, {dst})")
                    result.add((src, dst))
                    edge = self.heap.load_u64(edge + _NEXT)
        return result

    def degree(self, src: int) -> int:
        with self.bench.untimed():
            return self.heap.load_u64(self._vertex(src) + _DEGREE)

    def check_invariants(self) -> Optional[str]:
        try:
            found = self.edges()
        except RuntimeError as exc:
            return str(exc)
        if found != self.model:
            missing = self.model - found
            extra = found - self.model
            return f"graph/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        degrees: Dict[int, int] = {}
        for src, _ in found:
            degrees[src] = degrees.get(src, 0) + 1
        for src in range(self.n_vertices):
            if self.degree(src) != degrees.get(src, 0):
                return f"vertex {src} degree {self.degree(src)} != {degrees.get(src, 0)}"
        return None
