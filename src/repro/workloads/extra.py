"""Extra failure-safe structures built on the library's public API.

Not part of the paper's benchmark suite — these exist to show (and test)
that the substrate generalises: a persistent FIFO queue and a persistent
stack, each transactionalised with the same four-step WAL protocol and
crash-testable with :class:`~repro.pmem.crash.CrashTester`.  The
``examples/custom_workload.py`` walkthrough builds the queue from scratch;
this module is the supported version.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workloads.base import OpResult, PersistentWorkload, Workbench

_VAL = 0
_NEXT = 8


class PersistentQueue(PersistentWorkload):
    """A singly-linked FIFO queue with head/tail in a metadata block.

    Enqueue links a fresh node after the tail (logging the old tail and
    the metadata block); dequeue unlinks the head (logging the metadata
    block).  Alternating operations give the same 4-pcommit-per-op pattern
    as the paper's workloads.
    """

    name = "Persistent-Queue"
    abbrev = "PQ"

    def __init__(self, bench: Workbench, payload_work: int = 0):
        super().__init__(bench)
        self.payload_work = payload_work
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)   # head
        self.heap.store_u64(self.meta + 8, 0)   # tail
        self.heap.store_u64(self.meta + 16, 0)  # length
        self.model: List[int] = []

    # ------------------------------------------------------------------
    def enqueue(self, value: int) -> None:
        heap, tx = self.heap, self.tx
        self._compute(self.payload_work)
        node = self._alloc_node()
        heap.store_u64(node + _VAL, value)
        heap.store_u64(node + _NEXT, 0)
        tail = heap.load_u64(self.meta + 8)
        tx.begin()
        if tail:
            tx.log_block(tail)
        tx.log_block(self.meta)
        tx.seal()
        if tail:
            heap.store_u64(tail + _NEXT, node)
            tx.flush(tail)
        else:
            heap.store_u64(self.meta + 0, node)
        heap.store_u64(self.meta + 8, node)
        heap.store_u64(self.meta + 16, heap.load_u64(self.meta + 16) + 1)
        tx.flush(node)
        tx.flush(self.meta)
        tx.commit()
        self.model.append(value)

    def dequeue(self) -> Optional[int]:
        heap, tx = self.heap, self.tx
        head = heap.load_u64(self.meta + 0)
        if not head:
            return None
        self._compute(self.payload_work)
        value = heap.load_u64(head + _VAL)
        nxt = heap.load_u64(head + _NEXT)
        tx.begin()
        tx.log_block(self.meta)
        tx.seal()
        heap.store_u64(self.meta + 0, nxt)
        if not nxt:
            heap.store_u64(self.meta + 8, 0)
        heap.store_u64(self.meta + 16, heap.load_u64(self.meta + 16) - 1)
        tx.flush(self.meta)
        tx.commit()
        self.model.pop(0)
        return value

    def operation(self, key: int) -> OpResult:
        if key % 2 == 0 or not self.model:
            self.enqueue(key)
            return OpResult(key, inserted=True)
        self.dequeue()
        return OpResult(key, deleted=True)

    # ------------------------------------------------------------------
    def contents(self) -> List[int]:
        values = []
        with self.bench.untimed():
            node = self.heap.load_u64(self.meta + 0)
            seen = set()
            while node:
                if node in seen:
                    raise RuntimeError("cycle in queue")
                seen.add(node)
                values.append(self.heap.load_u64(node + _VAL))
                node = self.heap.load_u64(node + _NEXT)
        return values

    def __len__(self) -> int:
        with self.bench.untimed():
            return self.heap.load_u64(self.meta + 16)

    def check_invariants(self) -> Optional[str]:
        try:
            found = self.contents()
        except RuntimeError as exc:
            return str(exc)
        if found != self.model:
            return f"queue {found[:5]} != model {self.model[:5]}"
        if len(self) != len(self.model):
            return f"length {len(self)} != {len(self.model)}"
        with self.bench.untimed():
            head = self.heap.load_u64(self.meta + 0)
            tail = self.heap.load_u64(self.meta + 8)
        if bool(head) != bool(tail):
            return "head/tail null-ness disagree"
        return None


class PersistentStack(PersistentWorkload):
    """A singly-linked LIFO stack; push and pop both touch only the
    metadata block's top pointer (plus the fresh node on push)."""

    name = "Persistent-Stack"
    abbrev = "PS"

    def __init__(self, bench: Workbench):
        super().__init__(bench)
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)   # top
        self.heap.store_u64(self.meta + 8, 0)   # depth
        self.model: List[int] = []

    # ------------------------------------------------------------------
    def push(self, value: int) -> None:
        heap, tx = self.heap, self.tx
        node = self._alloc_node()
        heap.store_u64(node + _VAL, value)
        heap.store_u64(node + _NEXT, heap.load_u64(self.meta + 0))
        tx.begin()
        tx.log_block(self.meta)
        tx.seal()
        heap.store_u64(self.meta + 0, node)
        heap.store_u64(self.meta + 8, heap.load_u64(self.meta + 8) + 1)
        tx.flush(node)
        tx.flush(self.meta)
        tx.commit()
        self.model.append(value)

    def pop(self) -> Optional[int]:
        heap, tx = self.heap, self.tx
        top = heap.load_u64(self.meta + 0)
        if not top:
            return None
        value = heap.load_u64(top + _VAL)
        tx.begin()
        tx.log_block(self.meta)
        tx.seal()
        heap.store_u64(self.meta + 0, heap.load_u64(top + _NEXT))
        heap.store_u64(self.meta + 8, heap.load_u64(self.meta + 8) - 1)
        tx.flush(self.meta)
        tx.commit()
        self.model.pop()
        return value

    def operation(self, key: int) -> OpResult:
        if key % 2 == 0 or not self.model:
            self.push(key)
            return OpResult(key, inserted=True)
        self.pop()
        return OpResult(key, deleted=True)

    # ------------------------------------------------------------------
    def contents(self) -> List[int]:
        """Top-first snapshot."""
        values = []
        with self.bench.untimed():
            node = self.heap.load_u64(self.meta + 0)
            seen = set()
            while node:
                if node in seen:
                    raise RuntimeError("cycle in stack")
                seen.add(node)
                values.append(self.heap.load_u64(node + _VAL))
                node = self.heap.load_u64(node + _NEXT)
        return values

    def check_invariants(self) -> Optional[str]:
        try:
            found = self.contents()
        except RuntimeError as exc:
            return str(exc)
        if found != list(reversed(self.model)):
            return f"stack {found[:5]} != model {self.model[-5:]}"
        with self.bench.untimed():
            depth = self.heap.load_u64(self.meta + 8)
        if depth != len(self.model):
            return f"depth {depth} != {len(self.model)}"
        return None
