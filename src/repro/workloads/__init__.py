"""Persistent data-structure workloads (paper §3.2, Table 1).

Seven single-threaded benchmarks, each a pointer-based data structure over
the simulated NVMM heap, transactionalised with write-ahead logging:

======================  ======  ====================================
Benchmark               Abbrev  Operation
======================  ======  ====================================
Graph                   GH      insert or delete edges
Hash-Map                HM      insert or delete entries
Linked-List             LL      insert or delete nodes (max 1024)
String Swap             SS      swap two 256-byte strings
AVL-tree                AT      insert or delete nodes
B-tree (2-3)            BT      insert or delete nodes
RB-tree                 RT      insert or delete nodes
======================  ======  ====================================

Every node is 64 bytes and cache-block aligned, so persisting one node
update takes one ``clwb``.  The self-balancing trees use *full logging*
(paper §3.2): the whole set of nodes that rebalancing might touch is logged
up front, so each operation needs exactly one 4-pcommit transaction.
"""

from repro.workloads.base import Workbench, PersistentWorkload, OpResult
from repro.workloads.linkedlist import LinkedListWorkload
from repro.workloads.hashmap import HashMapWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.stringswap import StringSwapWorkload
from repro.workloads.avltree import AVLTreeWorkload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.registry import (
    WORKLOADS,
    BenchmarkSpec,
    PAPER_SPECS,
    build_workload,
)

__all__ = [
    "Workbench",
    "PersistentWorkload",
    "OpResult",
    "LinkedListWorkload",
    "HashMapWorkload",
    "GraphWorkload",
    "StringSwapWorkload",
    "AVLTreeWorkload",
    "BTreeWorkload",
    "RBTreeWorkload",
    "WORKLOADS",
    "BenchmarkSpec",
    "PAPER_SPECS",
    "build_workload",
]
