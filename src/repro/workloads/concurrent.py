"""Concurrent transactions over one shared NVMM heap.

This module feeds the multi-core system model
(:mod:`repro.uarch.system`): *N* client threads issue key-indexed
transactions against persistent structures living in a single shared
heap, and the generator deterministically interleaves them into one
**per-core timing trace per client** plus a **global ordering tape**
recording the serialised transaction order (the order the functional
heap actually observed).  Runs are a pure function of
``(abbrev, mode, n_cores, contention, seed, init_ops, sim_ops)``.

Sharing model
-------------
The key space is partitioned *N+1* ways: each core owns a private
structure instance, and one extra **shared partition** is visited by
every core with probability ``contention`` per transaction.  At
``contention == 0.0`` the timed phase of any two cores touches disjoint
cache blocks (private structures, per-core undo logs, and fresh
allocations only), which is what makes the zero-contention conformance
cell — multi-core run equals N independent single-core runs
cycle-for-cycle — meaningful.  At ``contention > 0`` the shared
partition's node *and* metadata blocks collide across cores, exercising
the BLT conflict protocol.

All partitions draw from one allocator and write one heap; each core
has its own :class:`~repro.txn.manager.TxManager` (hence its own undo
log region) so multi-log crash recovery is representative.

The tape also records each transaction's read/write **block sets**
(observed at the heap), which the conflict tests and the crash fuzzer
use to pick genuinely conflicting cut points.

The serial oracle
-----------------
:func:`serial_oracle_check` replays the tape — same populate keys, same
per-transaction keys, in tape order — against fresh single-threaded
partitions on a private heap, and demands (a) every transaction takes
the same insert/delete/swap branch it took in the concurrent run and
(b) the final per-partition contents match.  Because the timing layer
replays aborted epochs with identical functional effects, equality
against this oracle is exactly linearizability of the committed
transaction order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.columns import ColumnBuilder
from repro.isa.recorder import TraceRecorder
from repro.isa.trace import Trace
from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.pmem.domain import PersistenceDomain
from repro.txn.manager import TxManager
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps
from repro.workloads.base import PersistentWorkload, Workbench
from repro.workloads.registry import PAPER_SPECS

_BLOCK_MASK = ~(CACHE_BLOCK - 1)

#: Per-partition structure sizes.  Small on purpose: a concurrent run
#: instantiates ``n_cores + 1`` of these in one heap, and the directed
#: conflict tests want the shared partition hot enough that two cores
#: actually collide.
CONCURRENT_PARAMS: Dict[str, dict] = {
    "GH": dict(n_vertices=16),
    "HM": dict(initial_capacity=64),
    "LL": dict(max_nodes=64),
    "SS": dict(n_strings=8),
    "AT": dict(key_space=128),
    "BT": dict(key_space=128),
    "RT": dict(key_space=128),
}

#: Untimed populate transactions per partition (private and shared).
CONCURRENT_INIT_OPS: Dict[str, int] = {
    "GH": 40, "HM": 48, "LL": 32, "SS": 8, "AT": 48, "BT": 48, "RT": 48,
}

#: Default timed transactions *per core*.
CONCURRENT_SIM_OPS = 24

#: Per-core undo-log capacity (bytes).
CONCURRENT_LOG_CAPACITY = 1 << 15


class MuxRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that demultiplexes onto per-core columns.

    The workload layer sees one ordinary recorder (the heap observer and
    :class:`~repro.txn.persist_ops.PersistOps` emission surface);
    :meth:`set_active` routes everything recorded next to the active
    core's :class:`~repro.isa.columns.ColumnBuilder`.  ``fast_forward``
    is global, so untimed phases vanish from every core's trace.
    """

    def __init__(self, n_cores: int, alu_per_load: int = 1, alu_per_store: int = 1):
        super().__init__(alu_per_load, alu_per_store)
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self._builders = [ColumnBuilder() for _ in range(n_cores)]
        self._active = 0
        self._builder = self._builders[0]

    @property
    def active(self) -> int:
        return self._active

    def set_active(self, core: int) -> None:
        """Route subsequent recording to *core*'s trace."""
        self._active = core
        self._builder = self._builders[core]
        self._view = None
        self._view_len = -1

    def core_len(self, core: int) -> int:
        """Micro-ops recorded so far on *core*'s trace."""
        return len(self._builders[core])

    def core_trace(self, core: int) -> Trace:
        """Column-backed snapshot of *core*'s trace."""
        return Trace.from_columns(self._builders[core].snapshot())

    def reset_all(self) -> None:
        """Drop every core's recording (end of the populate phase)."""
        self._builders = [ColumnBuilder() for _ in range(self.n_cores)]
        self._builder = self._builders[self._active]
        self._view = None
        self._view_len = -1


class _BlockCollector:
    """Heap observer collecting one transaction's read/write block sets."""

    def __init__(self) -> None:
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()

    def load(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        self.reads.add(addr & _BLOCK_MASK)

    def store(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        self.writes.add(addr & _BLOCK_MASK)


@dataclass(frozen=True)
class TapeEntry:
    """One committed transaction on the global ordering tape."""

    seq: int          #: global serialisation index
    core: int         #: issuing core
    partition: int    #: 0..n_cores-1 private, n_cores = shared
    key: int          #: workload key
    inserted: bool
    deleted: bool
    swapped: bool
    start: int        #: first micro-op index in the core's trace
    end: int          #: one past the last micro-op index
    reads: Tuple[int, ...]   #: cache blocks loaded (sorted)
    writes: Tuple[int, ...]  #: cache blocks stored (sorted)


class ConcurrentBench:
    """The shared-heap equivalent of :class:`~repro.workloads.base.Workbench`.

    One heap, one allocator, one (optional) persistence domain and one
    :class:`MuxRecorder` serve every partition; each core gets a private
    :class:`~repro.txn.manager.TxManager` whose undo log occupies its own
    heap region.  ``self.tx`` always aliases the active core's manager so
    workload code written against the single-core bench runs unchanged.
    """

    def __init__(
        self,
        mode: PersistMode,
        n_cores: int,
        heap_size: int = 1 << 23,
        track_persistence: bool = False,
        log_capacity: int = CONCURRENT_LOG_CAPACITY,
        seed: int = 0,
        alu_per_load: int = 1,
        alu_per_store: int = 1,
    ):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.mode = mode
        self.n_cores = n_cores
        self.heap = NVMHeap(heap_size)
        self.alloc = Allocator(self.heap)
        self.recorder = MuxRecorder(n_cores, alu_per_load, alu_per_store)
        self.heap.attach(self.recorder)
        self.domain: Optional[PersistenceDomain] = None
        if track_persistence:
            self.domain = PersistenceDomain(self.heap)
            self.heap.attach(self.domain)
        self.persist = PersistOps(mode, self.recorder, self.domain, "clwb")
        self.managers = [
            TxManager(self.heap, self.alloc, self.persist, log_capacity)
            for _ in range(n_cores)
        ]
        self.tx = self.managers[0]
        self.rng = random.Random(seed)

    def set_active(self, core: int) -> None:
        """Make *core* the issuing client: its trace, its undo log."""
        self.recorder.set_active(core)
        self.tx = self.managers[core]

    def untimed(self):
        return self.recorder.fast_forward()

    def finish_init(self) -> None:
        """End the populate phase: persist everything, drop recordings."""
        if self.domain is not None:
            self.domain.sync_base()
        self.recorder.reset_all()
        self.persist.n_clwb = 0
        self.persist.n_clflushopt = 0
        self.persist.n_pcommit = 0
        self.persist.n_sfence = 0


@dataclass
class ConcurrentRun:
    """Everything a concurrent generation produced."""

    abbrev: str
    mode: PersistMode
    n_cores: int
    contention: float
    seed: int
    bench: ConcurrentBench
    #: ``n_cores`` private partitions followed by the shared one.
    partitions: List[PersistentWorkload]
    traces: List[Trace]
    tape: List[TapeEntry]
    #: Populate key sequence per partition (replayed by the oracle).
    populate_keys: List[List[int]] = field(default_factory=list)

    @property
    def shared_partition(self) -> PersistentWorkload:
        return self.partitions[self.n_cores]

    def check_invariants(self) -> Optional[str]:
        """Structural + contents checks on every partition."""
        for pid, part in enumerate(self.partitions):
            part.tx = self.bench.managers[min(pid, self.n_cores - 1)]
            error = part.check_invariants()
            if error is not None:
                return f"partition {pid}: {error}"
        return None

    def recover_all(self) -> int:
        """Run undo-log recovery on every core's log (post-crash)."""
        return sum(manager.recover() for manager in self.bench.managers)


def _partition(bench: ConcurrentBench, abbrev: str) -> PersistentWorkload:
    return PAPER_SPECS[abbrev].factory(bench, **CONCURRENT_PARAMS[abbrev])


def generate_concurrent(
    abbrev: str,
    mode: PersistMode = PersistMode.LOG_P_SF,
    n_cores: int = 2,
    contention: float = 0.0,
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
    track_persistence: bool = False,
    heap_size: Optional[int] = None,
) -> ConcurrentRun:
    """Generate per-core traces + ordering tape for a concurrent run.

    ``sim_ops`` is the timed transaction count *per core*; transactions
    are serialised round-robin (core ``seq % n_cores`` issues global
    transaction ``seq``), with each core drawing its keys — and its
    shared-vs-private coin with P(shared) = ``contention`` — from a
    private seeded stream, so the tape is reproducible and independent
    of any wall-clock scheduling.
    """
    if not 0.0 <= contention <= 1.0:
        raise ValueError("contention must be within [0, 1]")
    if init_ops is None:
        init_ops = CONCURRENT_INIT_OPS[abbrev]
    if sim_ops is None:
        sim_ops = CONCURRENT_SIM_OPS
    if heap_size is None:
        heap_size = max(1 << 23, (n_cores + 1) << 21)

    bench = ConcurrentBench(
        mode, n_cores,
        heap_size=heap_size,
        track_persistence=track_persistence,
        seed=seed,
    )
    partitions = [_partition(bench, abbrev) for _ in range(n_cores + 1)]

    # ---- untimed populate (identical key streams feed the oracle) ----
    populate_keys: List[List[int]] = []
    with bench.untimed():
        for pid, part in enumerate(partitions):
            rng = random.Random(seed * 7919 + pid)
            keys = [rng.randrange(part._key_space) for _ in range(init_ops)]
            populate_keys.append(keys)
            for op_index, key in enumerate(keys):
                core = pid if pid < n_cores else op_index % n_cores
                bench.set_active(core)
                part.tx = bench.tx
                part.operation(key)
    bench.finish_init()

    # ---- timed phase -------------------------------------------------
    collector = _BlockCollector()
    bench.heap.attach(collector)
    tape: List[TapeEntry] = []
    core_rngs = [random.Random((seed << 8) ^ (core * 0x9E37)) for core in range(n_cores)]
    try:
        for seq in range(n_cores * sim_ops):
            core = seq % n_cores
            rng = core_rngs[core]
            shared = rng.random() < contention
            pid = n_cores if shared else core
            part = partitions[pid]
            key = rng.randrange(part._key_space)
            bench.set_active(core)
            part.tx = bench.tx
            collector.reset()
            start = bench.recorder.core_len(core)
            result = part.operation(key)
            tape.append(TapeEntry(
                seq=seq, core=core, partition=pid, key=key,
                inserted=result.inserted, deleted=result.deleted,
                swapped=result.swapped,
                start=start, end=bench.recorder.core_len(core),
                reads=tuple(sorted(collector.reads)),
                writes=tuple(sorted(collector.writes)),
            ))
    finally:
        bench.heap.detach(collector)

    traces = [bench.recorder.core_trace(core) for core in range(n_cores)]
    return ConcurrentRun(
        abbrev=abbrev, mode=mode, n_cores=n_cores, contention=contention,
        seed=seed, bench=bench, partitions=partitions, traces=traces,
        tape=tape, populate_keys=populate_keys,
    )


def serial_oracle_check(run: ConcurrentRun) -> Optional[str]:
    """Replay *run*'s tape serially on fresh structures; compare contents.

    Returns an error string on the first divergence, ``None`` when the
    concurrent heap is equivalent to the serial execution of the
    committed transaction order (see the module docstring).
    """
    spec = PAPER_SPECS[run.abbrev]
    params = CONCURRENT_PARAMS[run.abbrev]
    oracle: List[PersistentWorkload] = []
    for pid in range(run.n_cores + 1):
        bench = Workbench(mode=run.mode, record=False, seed=run.seed)
        workload = spec.factory(bench, **params)
        for key in run.populate_keys[pid]:
            workload.operation(key)
        oracle.append(workload)
    for entry in run.tape:
        result = oracle[entry.partition].operation(entry.key)
        took = (result.inserted, result.deleted, result.swapped)
        expected = (entry.inserted, entry.deleted, entry.swapped)
        if took != expected:
            return (
                f"tape op {entry.seq} (partition {entry.partition}, key "
                f"{entry.key}) took branch {took}, concurrent run took {expected}"
            )
    for pid, workload in enumerate(oracle):
        error = workload.check_invariants()
        if error is not None:
            return f"serial oracle partition {pid} inconsistent: {error}"
        if workload.model != run.partitions[pid].model:
            return f"partition {pid} contents differ from the serial oracle"
    return None
