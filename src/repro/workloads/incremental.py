"""Incremental logging — the alternative the paper rejects (§3.2, Figure 4).

Full logging undo-logs everything an operation *might* touch up front and
pays exactly one four-pcommit transaction.  *Incremental* logging instead
"breaks rebalancing into multiple steps, where in each step we log as few
nodes as needed" — cheaper logging, but "pcommits and sfences are required
for each step", and a crash can leave the tree temporarily imbalanced.

:class:`AVLTreeIncremental` implements that policy for inserts on the AVL
tree:

* phase 1 — one small transaction attaches the new leaf (logs only the
  attach parent);
* phase 2 — walking back up the insertion path, each level whose height or
  balance changes gets its *own* transaction logging just that level's
  rebalance neighbourhood.

A crash mid-sequence leaves a valid binary search tree whose upper levels
may be imbalanced / carry stale heights — recovery must call
:meth:`AVLTreeIncremental.repair` to "continue to rebalance the tree"
(paper's recovery description).  Deletes fall back to full logging; the
paper's comparison (and our ablation bench) concerns the insert-side
rebalancing cost.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.workloads.avltree import AVLTreeWorkload, _HEIGHT, _KEY, _LEFT, _RIGHT, _VAL


class AVLTreeIncremental(AVLTreeWorkload):
    """AVL tree with per-step (incremental) logging for inserts."""

    name = "AVL-tree (incremental logging)"
    abbrev = "AT-inc"

    # ------------------------------------------------------------------
    def _insert(self, key: int, value: int) -> None:
        path = self._attach_path(key)
        if path and self._key(path[-1]) == key:
            self._overwrite_value(path[-1], value)
            return
        self._attach_leaf(path, key, value)
        self._rebalance_upward(path)

    # ------------------------------------------------------------------
    def _attach_path(self, key: int) -> List[int]:
        """Search path from the root to the attach parent (or the node
        already holding *key*)."""
        path: List[int] = []
        node = self._root()
        while node:
            self._compute(8)
            path.append(node)
            node_key = self._key(node)
            if key == node_key:
                break
            node = self._left(node) if key < node_key else self._right(node)
        return path

    def _overwrite_value(self, node: int, value: int) -> None:
        self.tx.begin()
        self.tx.log_block(node)
        self.tx.seal()
        self._guarded = {node}
        self._dirty = set()
        self._store(node, _VAL, value)
        self._commit_guarded(set())

    def _attach_leaf(self, path: List[int], key: int, value: int) -> None:
        """Phase 1: create the leaf and link it, logging only the parent."""
        new = self._alloc_node()
        self.tx.begin()
        parent = path[-1] if path else 0
        if parent:
            self.tx.log_block(parent)
        self.tx.log_block(self.meta)
        self.tx.seal()
        self._guarded = {parent, self.meta, new} if parent else {self.meta, new}
        self._dirty = set()
        self._store(new, _KEY, key)
        self._store(new, _VAL, value)
        self._store(new, _LEFT, 0)
        self._store(new, _RIGHT, 0)
        self._store(new, _HEIGHT, 1)
        if parent:
            offset = _LEFT if key < self._key(parent) else _RIGHT
            self._store(parent, offset, new)
        else:
            self._store(self.meta, 0, new)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) + 1)
        self._dirty.add(self.meta)
        self._commit_guarded({new})

    def _rebalance_upward(self, path: List[int]) -> None:
        """Phase 2: one transaction per level whose height/balance changed."""
        for index in range(len(path) - 1, -1, -1):
            node = path[index]
            parent = path[index - 1] if index else 0
            old_height = self._height(node)
            needs_rotation = abs(self._balance(node)) > 1
            new_height = 1 + max(
                self._height(self._left(node)), self._height(self._right(node))
            )
            if not needs_rotation and new_height == old_height:
                break  # heights converged: nothing above changes either
            self._rebalance_step(node, parent)

    def _rebalance_step(self, node: int, parent: int) -> None:
        """One incremental step: log exactly what this level's height
        update / rotation will touch ("we log as few nodes as needed to
        perform balancing for a particular affected node"), apply it, and
        persist it with its own barrier set."""
        touched = self._mutation_log_set(
            [node], lambda: self._rebalance_step_body(node, parent)
        )
        self._begin_guarded(touched)
        self._rebalance_step_body(node, parent)
        self._commit_guarded(set())

    def _rebalance_step_body(self, node: int, parent: int) -> None:
        self._update_height(node)
        new_subtree = self._rebalance(node)
        if new_subtree == node:
            return  # height-only step: the parent's pointer is untouched
        if parent:
            offset = _LEFT if self._left(parent) == node else _RIGHT
            if self.heap.load_u64(parent + offset) == node:
                self._store(parent, offset, new_subtree)
        else:
            self._store(self.meta, 0, new_subtree)

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def repair(self) -> None:
        """Complete any interrupted rebalancing: rebuild heights and
        rebalance bottom-up over the whole tree (the paper's "recovery ...
        continues to rebalance the tree", done eagerly)."""
        self._guarded = None
        root = self._repair_rec(self._root())
        self.heap.store_u64(self.meta + 0, root)

    def _repair_rec(self, node: int) -> int:
        if not node:
            return 0
        self._store(node, _LEFT, self._repair_rec(self._left(node)))
        self._store(node, _RIGHT, self._repair_rec(self._right(node)))
        self._update_height(node)
        return self._rebalance(node)

    def check_bst_only(self) -> Optional[str]:
        """Crash-time invariant: the tree is a valid BST matching the model
        (balance may be temporarily violated — that is incremental
        logging's documented weakness)."""
        try:
            pairs = self.items()
        except RuntimeError as exc:
            return str(exc)
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            return "in-order keys not sorted"
        if set(keys) - set(self.model) or set(self.model) - set(keys):
            # mid-sequence crashes happen after phase 1; tolerate the one
            # key whose insert was in flight
            diff = set(keys) ^ set(self.model)
            if len(diff) > 1:
                return f"key set diverged: {sorted(diff)[:5]}"
        return None


def persist_cost_summary(workload: AVLTreeWorkload) -> dict:
    """Logging/barrier cost counters used by the ablation bench."""
    return {
        "pcommits": workload.persist.n_pcommit,
        "sfences": workload.persist.n_sfence,
        "clwbs": workload.persist.n_clwb,
        "entries_logged": workload.tx.stats.entries_logged,
        "bytes_logged": workload.tx.stats.bytes_logged,
        "transactions": workload.tx.stats.transactions,
    }
