"""B-tree (BT) benchmark — a 2-3 B-tree as in paper Figures 4 and 5.

"A 2-3 B-tree is a sorted balanced tree where each non-leaf node can have
anywhere between two and three children nodes.  Data is stored in the leaf
nodes, while non-leaf nodes store keys to accelerate searching."

Layout (each node one cache block):

Internal node::

    +0   meta: is_leaf(bit 0) | n_children << 1
    +8   router keys[0..2]   (keys[i] = minimum key in subtree i)
    +32  children[0..2]

Leaf node::

    +0   meta: is_leaf = 1
    +8   key
    +16  value

A node momentarily acquiring a fourth child during insertion is handled in
volatile registers (Python locals) and materialised as a split — the NVMM
image never holds an overflowed node, so every durable state is a valid
2-3 tree (the guarantee the paper's *full logging* buys: "the tree is
always balanced regardless of when a failure occurs").

Full logging: inserts log the root-to-near-leaf search path (splits touch
only path nodes plus freshly-allocated nodes); deletes additionally log the
children of every path node, because borrow/merge reaches into siblings.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.workloads.base import OpResult, PersistentWorkload, Workbench
from repro.workloads.fulllog import FullLoggingMixin, FullLoggingViolation

__all__ = ["BTreeWorkload", "FullLoggingViolation"]

_META = 0
_KEYS = 8
_CHILDREN = 32

_LEAF_KEY = 8
_LEAF_VAL = 16


class BTreeWorkload(FullLoggingMixin, PersistentWorkload):
    """Insert-or-delete on a persistent 2-3 B-tree with full logging."""

    name = "B-tree"
    abbrev = "BT"

    def __init__(self, bench: Workbench, key_space: int = 4096):
        super().__init__(bench)
        self._key_space = key_space
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)  # root pointer
        self.heap.store_u64(self.meta + 8, 0)  # record count
        self._init_full_logging()

    # ------------------------------------------------------------------
    # node accessors
    # ------------------------------------------------------------------
    def _root(self) -> int:
        return self.heap.load_u64(self.meta + 0)

    def _is_leaf(self, node: int) -> bool:
        return bool(self.heap.load_u64(node + _META) & 1)

    def _n_children(self, node: int) -> int:
        return self.heap.load_u64(node + _META) >> 1

    def _router(self, node: int, i: int) -> int:
        return self.heap.load_u64(node + _KEYS + 8 * i)

    def _child(self, node: int, i: int) -> int:
        return self.heap.load_u64(node + _CHILDREN + 8 * i)

    def _leaf_key(self, node: int) -> int:
        return self.heap.load_u64(node + _LEAF_KEY)

    def _write_internal(self, node: int, pairs: List[Tuple[int, int]]) -> None:
        """Write an internal node's (router, child) list (2 or 3 entries)."""
        if not 2 <= len(pairs) <= 3:
            raise ValueError(f"internal node must have 2-3 children, got {len(pairs)}")
        self._store(node, _META, len(pairs) << 1)
        for i, (router, child) in enumerate(pairs):
            self._store(node, _KEYS + 8 * i, router)
            self._store(node, _CHILDREN + 8 * i, child)

    def _read_internal(self, node: int) -> List[Tuple[int, int]]:
        return [
            (self._router(node, i), self._child(node, i))
            for i in range(self._n_children(node))
        ]

    def _min_key(self, node: int) -> int:
        """Smallest key in the subtree (router of entry 0 / leaf key)."""
        if self._is_leaf(node):
            return self._leaf_key(node)
        return self._router(node, 0)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _new_leaf(self, key: int, value: int, fresh: Set[int]) -> int:
        node = self._alloc_node()
        fresh.add(node)
        self._guard_fresh(node)
        self._store(node, _META, 1)
        self._store(node, _LEAF_KEY, key)
        self._store(node, _LEAF_VAL, value)
        return node

    def _new_internal(self, pairs: List[Tuple[int, int]], fresh: Set[int]) -> int:
        node = self._alloc_node()
        fresh.add(node)
        self._guard_fresh(node)
        self._write_internal(node, pairs)
        return node

    # ------------------------------------------------------------------
    # full logging
    # ------------------------------------------------------------------
    def _search_path(self, key: int) -> List[int]:
        """Root-to-near-leaf path, the static part of the full-logging set
        (paper Figure 5); the dry run adds borrow/merge siblings exactly."""
        nodes: List[int] = []
        node = self._root()
        while node:
            self._compute(8)
            nodes.append(node)
            if self._is_leaf(node):
                break
            node = self._descend_child(node, key)
        return nodes

    def _descend_child(self, node: int, key: int) -> int:
        """Pick the child whose subtree may contain *key*."""
        index = 0
        for i in range(1, self._n_children(node)):
            if key >= self._router(node, i):
                index = i
        return self._child(node, index)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        key %= self._key_space
        if self.search(key) is not None:
            self._delete(key)
            self.model.pop(key, None)
            return OpResult(key, deleted=True)
        self._insert(key, key ^ 0x1111)
        self.model[key] = key ^ 0x1111
        return OpResult(key, inserted=True)

    def search(self, key: int) -> Optional[int]:
        """Return the value stored under *key*, or ``None``."""
        node = self._root()
        if not node:
            return None
        while not self._is_leaf(node):
            self._compute(8)
            node = self._descend_child(node, key)
        if self._leaf_key(node) == key:
            return self.heap.load_u64(node + _LEAF_VAL)
        return None

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def _insert(self, key: int, value: int) -> None:
        static = self._search_path(key)
        log_set = self._mutation_log_set(
            static, lambda: self._insert_body(key, value, set())
        )
        self._begin_guarded(log_set)
        fresh: Set[int] = set()
        self._insert_body(key, value, fresh)
        self._commit_guarded(fresh)

    def _insert_body(self, key: int, value: int, fresh: Set[int]) -> None:
        root = self._root()
        if not root:
            new_root = self._new_leaf(key, value, fresh)
        elif self._is_leaf(root):
            leaf = self._new_leaf(key, value, fresh)
            pair = sorted(
                [(self._leaf_key(root), root), (key, leaf)], key=lambda kv: kv[0]
            )
            new_root = self._new_internal(pair, fresh)
        else:
            split = self._insert_rec(root, key, value, fresh)
            if split is None:
                new_root = root
            else:
                new_root = self._new_internal(
                    [(self._min_key(root), root), split], fresh
                )
        self.heap.store_u64(self.meta + 0, new_root)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) + 1)
        self._dirty.add(self.meta)

    def _insert_rec(
        self, node: int, key: int, value: int, fresh: Set[int]
    ) -> Optional[Tuple[int, int]]:
        """Insert below internal *node*; returns a (router, node) pair when
        *node* split, else ``None``."""
        pairs = self._read_internal(node)
        index = 0
        for i in range(1, len(pairs)):
            if key >= pairs[i][0]:
                index = i
        child = pairs[index][1]
        if self._is_leaf(child):
            leaf = self._new_leaf(key, value, fresh)
            pairs.insert(index + 1 if key > pairs[index][0] else index, (key, leaf))
        else:
            split = self._insert_rec(child, key, value, fresh)
            pairs[index] = (self._min_key(child), child)
            if split is None:
                self._write_internal(node, pairs)
                return None
            pairs.insert(index + 1, split)
        if len(pairs) <= 3:
            self._write_internal(node, pairs)
            return None
        # Overflow (4 children): split 2 + 2, never materialised in NVMM.
        self._write_internal(node, pairs[:2])
        sibling = self._new_internal(pairs[2:], fresh)
        return pairs[2][0], sibling

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def _delete(self, key: int) -> None:
        static = self._search_path(key)
        log_set = self._mutation_log_set(static, lambda: self._delete_body(key))
        self._begin_guarded(log_set)
        self._delete_body(key)
        self._commit_guarded(set())

    def _delete_body(self, key: int) -> None:
        root = self._root()
        if self._is_leaf(root):
            new_root = 0  # deleting the only record
        else:
            underflow = self._delete_rec(root, key)
            new_root = root
            if underflow and self._n_children(root) == 1:
                new_root = self._child(root, 0)  # collapse the root
        self.heap.store_u64(self.meta + 0, new_root)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) - 1)
        self._dirty.add(self.meta)

    def _delete_rec(self, node: int, key: int) -> bool:
        """Delete *key* below internal *node*; returns True on underflow
        (node left with a single child) that the caller must repair."""
        pairs = self._read_internal(node)
        index = 0
        for i in range(1, len(pairs)):
            if key >= pairs[i][0]:
                index = i
        child = pairs[index][1]
        if self._is_leaf(child):
            if self._leaf_key(child) != key:
                return False  # key absent; nothing to do
            del pairs[index]  # leaf dropped; not reclaimed (§5.2)
        else:
            underflow = self._delete_rec(child, key)
            pairs[index] = (self._min_key(child), child)
            if underflow:
                pairs = self._repair(pairs, index)
        if len(pairs) >= 2:
            self._write_internal(node, pairs)
            return False
        # Underflow: write the single survivor and report it upward.
        self._store(node, _META, (1 << 1))
        self._store(node, _KEYS, pairs[0][0])
        self._store(node, _CHILDREN, pairs[0][1])
        return True

    def _repair(
        self, pairs: List[Tuple[int, int]], index: int
    ) -> List[Tuple[int, int]]:
        """Fix an underflowed child (1 grandchild) by borrow or merge."""
        child = pairs[index][1]
        orphan_router, orphan = self._router(child, 0), self._child(child, 0)
        sibling_index = index - 1 if index > 0 else index + 1
        sibling = pairs[sibling_index][1]
        sib_pairs = self._read_internal(sibling)
        if len(sib_pairs) == 3:
            # Borrow the adjacent grandchild from the sibling.
            if sibling_index < index:
                moved = sib_pairs.pop()
                new_child_pairs = [moved, (orphan_router, orphan)]
            else:
                moved = sib_pairs.pop(0)
                new_child_pairs = [(orphan_router, orphan), moved]
            self._write_internal(sibling, sib_pairs)
            self._write_internal(child, new_child_pairs)
            pairs[index] = (new_child_pairs[0][0], child)
            pairs[sibling_index] = (sib_pairs[0][0], sibling)
            return pairs
        # Merge the orphan into the sibling (child node dropped).
        if sibling_index < index:
            merged = sib_pairs + [(orphan_router, orphan)]
        else:
            merged = [(orphan_router, orphan)] + sib_pairs
        self._write_internal(sibling, merged)
        pairs[sibling_index] = (merged[0][0], sibling)
        del pairs[index]
        return pairs

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[int, int]]:
        result: List[Tuple[int, int]] = []
        with self.bench.untimed():
            root = self._root()
            if root:
                self._walk(root, result, set())
        return result

    def _walk(self, node: int, out: List[Tuple[int, int]], seen: Set[int]) -> None:
        if node in seen:
            raise RuntimeError("cycle in B-tree")
        seen.add(node)
        if self._is_leaf(node):
            out.append((self._leaf_key(node), self.heap.load_u64(node + _LEAF_VAL)))
            return
        for i in range(self._n_children(node)):
            self._walk(self._child(node, i), out, seen)

    def _check_node(self, node: int) -> Tuple[int, int]:
        """Validate 2-3 invariants below *node*; returns (height, min_key)."""
        if self._is_leaf(node):
            return 1, self._leaf_key(node)
        n = self._n_children(node)
        if not 2 <= n <= 3:
            raise RuntimeError(f"internal node with {n} children")
        heights, mins = [], []
        for i in range(n):
            height, min_key = self._check_node(self._child(node, i))
            if self._router(node, i) != min_key:
                raise RuntimeError(
                    f"stale router: {self._router(node, i)} != subtree min {min_key}"
                )
            heights.append(height)
            mins.append(min_key)
        if len(set(heights)) != 1:
            raise RuntimeError("leaves at unequal depths")
        if mins != sorted(mins):
            raise RuntimeError("router keys out of order")
        return heights[0] + 1, mins[0]

    def check_invariants(self) -> Optional[str]:
        try:
            pairs = self.items()
            with self.bench.untimed():
                root = self._root()
                if root and not self._is_leaf(root):
                    self._check_node(root)
        except RuntimeError as exc:
            return str(exc)
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            return "leaf keys not sorted"
        if len(keys) != len(set(keys)):
            return "duplicate keys"
        if dict(pairs) != self.model:
            missing = set(self.model) - set(dict(pairs))
            extra = set(dict(pairs)) - set(self.model)
            return f"tree/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        return None
