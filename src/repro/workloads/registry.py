"""Benchmark registry: Table 1 of the paper, plus scaled defaults.

The paper's #InitOps populate each structure in fast-forward mode and
#SimOps are simulated in detail.  A pure-Python timing model cannot run
millions of operations, so each spec also carries *scaled* counts that keep
every structure in the same qualitative regime (trees deep enough that full
logging dominates, the linked list capped at 1024 nodes, etc.).  Benches use
the scaled counts; the paper counts are reported alongside in Table 1 output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.txn.modes import PersistMode
from repro.workloads.base import PersistentWorkload, Workbench
from repro.workloads.avltree import AVLTreeWorkload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.hashmap import HashMapWorkload
from repro.workloads.linkedlist import LinkedListWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.stringswap import StringSwapWorkload


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the paper's Table 1, with scaled counterparts."""

    abbrev: str
    name: str
    description: str
    paper_init_ops: int
    paper_sim_ops: int
    scaled_init_ops: int
    scaled_sim_ops: int
    factory: Callable[[Workbench], PersistentWorkload]
    kwargs: dict = field(default_factory=dict)
    #: Simulated heap for a paper-scale run.  The default 64 MiB heap
    #: fits every scaled workload, but the allocator never eagerly
    #: reclaims deleted nodes (paper §5.2), so paper op counts need a
    #: heap sized for one block per mutating op.  Must stay fixed per
    #: workload: heap size changes allocation addresses and therefore
    #: the generated trace.
    paper_heap_bytes: int = 1 << 26

    def build(self, bench: Workbench) -> PersistentWorkload:
        return self.factory(bench, **self.kwargs)


def _make(factory, **kwargs):
    return lambda bench, **extra: factory(bench, **{**kwargs, **extra})


#: Table 1 of the paper (paper_* columns) with scaled simulation defaults.
PAPER_SPECS: Dict[str, BenchmarkSpec] = {
    "GH": BenchmarkSpec(
        "GH", "Graph", "Insert or delete edges in a graph",
        paper_init_ops=2_600_000, paper_sim_ops=100_000,
        scaled_init_ops=1600, scaled_sim_ops=60,
        factory=_make(GraphWorkload, n_vertices=64),
        paper_heap_bytes=1 << 29,
    ),
    "HM": BenchmarkSpec(
        "HM", "Hash-Map", "Insert or delete entries in a hash map",
        paper_init_ops=1_500_000, paper_sim_ops=100_000,
        scaled_init_ops=12000, scaled_sim_ops=60,
        factory=_make(HashMapWorkload, initial_capacity=16384),
        paper_heap_bytes=1 << 28,
    ),
    "LL": BenchmarkSpec(
        "LL", "Linked-List", "Insert or delete nodes in a linked list (Max:1024)",
        paper_init_ops=500, paper_sim_ops=50_000,
        scaled_init_ops=500, scaled_sim_ops=40,
        factory=_make(LinkedListWorkload, max_nodes=1024),
    ),
    "SS": BenchmarkSpec(
        "SS", "String Swap", "Swap strings in a string array",
        paper_init_ops=120_000, paper_sim_ops=500_000,
        scaled_init_ops=0, scaled_sim_ops=80,
        factory=_make(StringSwapWorkload, n_strings=8192),
        paper_heap_bytes=1 << 27,
    ),
    "AT": BenchmarkSpec(
        "AT", "AVL-tree", "Insert or delete nodes in an AVL tree",
        paper_init_ops=1_000_000, paper_sim_ops=50_000,
        scaled_init_ops=1000, scaled_sim_ops=30,
        factory=_make(AVLTreeWorkload, key_space=16384),
        paper_heap_bytes=1 << 28,
    ),
    "BT": BenchmarkSpec(
        "BT", "B-tree", "Insert or delete nodes in a B tree",
        paper_init_ops=1_000_000, paper_sim_ops=50_000,
        scaled_init_ops=1000, scaled_sim_ops=30,
        factory=_make(BTreeWorkload, key_space=16384),
        paper_heap_bytes=1 << 28,
    ),
    "RT": BenchmarkSpec(
        "RT", "RB-tree", "Insert or delete nodes in an RB tree",
        paper_init_ops=1_500_000, paper_sim_ops=50_000,
        scaled_init_ops=1500, scaled_sim_ops=30,
        factory=_make(RBTreeWorkload, key_space=16384),
        paper_heap_bytes=1 << 28,
    ),
}

#: Paper ordering of the benchmarks (matches the figures' x axes).
WORKLOADS = ("GH", "HM", "LL", "SS", "AT", "BT", "RT")


def build_workload(
    abbrev: str,
    mode: PersistMode = PersistMode.LOG_P_SF,
    record: bool = False,
    track_persistence: bool = False,
    seed: int = 0,
    heap_size: int = 1 << 26,
    log_capacity: int = 1 << 16,
) -> PersistentWorkload:
    """Construct a workload on a fresh :class:`~repro.workloads.base.Workbench`."""
    spec = PAPER_SPECS[abbrev]
    bench = Workbench(
        mode=mode,
        heap_size=heap_size,
        record=record,
        track_persistence=track_persistence,
        log_capacity=log_capacity,
        seed=seed,
    )
    return spec.build(bench)
