"""RB-tree (RT) benchmark — paper §3.2, full-logging discipline.

The red-black tree is implemented as a left-leaning red-black (LLRB) tree:
a recursive formulation with no parent pointers, in one-to-one
correspondence with 2-3 trees.  Avoiding parent pointers keeps the write
set of insert/delete fixups local to the recursion path, which the
full-logging machinery (:mod:`repro.workloads.fulllog`) captures as the
root-to-leaf search path unioned with a dry-run's exact write set.

Node layout (one cache block)::

    +0   key
    +8   value
    +16  left child pointer
    +24  right child pointer
    +32  color (1 = red, 0 = black)
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.workloads.base import OpResult, PersistentWorkload, Workbench
from repro.workloads.fulllog import FullLoggingMixin, FullLoggingViolation

__all__ = ["RBTreeWorkload", "FullLoggingViolation", "RED", "BLACK"]

_KEY = 0
_VAL = 8
_LEFT = 16
_RIGHT = 24
_COLOR = 32

RED, BLACK = 1, 0


class RBTreeWorkload(FullLoggingMixin, PersistentWorkload):
    """Insert-or-delete on a persistent left-leaning red-black tree."""

    name = "RB-tree"
    abbrev = "RT"

    def __init__(self, bench: Workbench, key_space: int = 4096):
        super().__init__(bench)
        self._key_space = key_space
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)  # root pointer
        self.heap.store_u64(self.meta + 8, 0)  # node count
        self._init_full_logging()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def _root(self) -> int:
        return self.heap.load_u64(self.meta + 0)

    def _store_root(self, root: int) -> None:
        self._store(self.meta, 0, root)

    def _key(self, node: int) -> int:
        return self.heap.load_u64(node + _KEY)

    def _left(self, node: int) -> int:
        return self.heap.load_u64(node + _LEFT)

    def _right(self, node: int) -> int:
        return self.heap.load_u64(node + _RIGHT)

    def _is_red(self, node: int) -> bool:
        return bool(node) and self.heap.load_u64(node + _COLOR) == RED

    # ------------------------------------------------------------------
    # full logging: static part = search path (+ successor spine)
    # ------------------------------------------------------------------
    def _search_path(self, key: int, for_delete: bool) -> List[int]:
        nodes: List[int] = []
        node = self._root()
        while node:
            self._compute(8)
            nodes.append(node)
            node_key = self._key(node)
            if node_key == key:
                if for_delete:
                    walk = self._right(node)
                    while walk:
                        nodes.append(walk)
                        walk = self._left(walk)
                break
            node = self._left(node) if key < node_key else self._right(node)
        return nodes

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        key %= self._key_space
        if self._search(key):
            self._delete(key)
            self.model.pop(key, None)
            return OpResult(key, deleted=True)
        self._insert(key, key ^ 0x3333)
        self.model[key] = key ^ 0x3333
        return OpResult(key, inserted=True)

    def _search(self, key: int) -> bool:
        node = self._root()
        while node:
            self._compute(8)
            node_key = self._key(node)
            if key == node_key:
                return True
            node = self._left(node) if key < node_key else self._right(node)
        return False

    # ------------------------------------------------------------------
    # LLRB primitives (all mutations go through the guarded _store)
    # ------------------------------------------------------------------
    def _rotate_left(self, node: int) -> int:
        pivot = self._right(node)
        self._store(node, _RIGHT, self._left(pivot))
        self._store(pivot, _LEFT, node)
        self._store(pivot, _COLOR, self.heap.load_u64(node + _COLOR))
        self._store(node, _COLOR, RED)
        return pivot

    def _rotate_right(self, node: int) -> int:
        pivot = self._left(node)
        self._store(node, _LEFT, self._right(pivot))
        self._store(pivot, _RIGHT, node)
        self._store(pivot, _COLOR, self.heap.load_u64(node + _COLOR))
        self._store(node, _COLOR, RED)
        return pivot

    def _flip_colors(self, node: int) -> None:
        for addr in (node, self._left(node), self._right(node)):
            self._store(addr, _COLOR, 1 - self.heap.load_u64(addr + _COLOR))

    def _fix_up(self, node: int) -> int:
        if self._is_red(self._right(node)) and not self._is_red(self._left(node)):
            node = self._rotate_left(node)
        if self._is_red(self._left(node)) and self._is_red(self._left(self._left(node))):
            node = self._rotate_right(node)
        if self._is_red(self._left(node)) and self._is_red(self._right(node)):
            self._flip_colors(node)
        return node

    # ------------------------------------------------------------------
    def _insert(self, key: int, value: int) -> None:
        static = self._search_path(key, for_delete=False)
        log_set = self._mutation_log_set(
            static, lambda: self._insert_body(key, value, set())
        )
        self._begin_guarded(log_set)
        fresh: Set[int] = set()
        self._insert_body(key, value, fresh)
        self._commit_guarded(fresh)

    def _insert_body(self, key: int, value: int, fresh: Set[int]) -> None:
        root = self._insert_rec(self._root(), key, value, fresh)
        self._store_root(root)
        if self._is_red(root):
            self._store(root, _COLOR, BLACK)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) + 1)
        self._dirty.add(self.meta)

    def _insert_rec(self, node: int, key: int, value: int, fresh: Set[int]) -> int:
        if not node:
            new = self._alloc_node()
            fresh.add(new)
            self._guard_fresh(new)
            self._store(new, _KEY, key)
            self._store(new, _VAL, value)
            self._store(new, _LEFT, 0)
            self._store(new, _RIGHT, 0)
            self._store(new, _COLOR, RED)
            return new
        node_key = self._key(node)
        if key < node_key:
            self._store(node, _LEFT, self._insert_rec(self._left(node), key, value, fresh))
        elif key > node_key:
            self._store(node, _RIGHT, self._insert_rec(self._right(node), key, value, fresh))
        else:
            self._store(node, _VAL, value)
        return self._fix_up(node)

    # ------------------------------------------------------------------
    def _delete(self, key: int) -> None:
        static = self._search_path(key, for_delete=True)
        log_set = self._mutation_log_set(static, lambda: self._delete_body(key))
        self._begin_guarded(log_set)
        self._delete_body(key)
        self._commit_guarded(set())

    def _delete_body(self, key: int) -> None:
        root = self._root()
        if not self._is_red(self._left(root)) and not self._is_red(self._right(root)):
            self._store(root, _COLOR, RED)
        root = self._delete_rec(root, key)
        self._store_root(root)
        if root and self._is_red(root):
            self._store(root, _COLOR, BLACK)
        self.heap.store_u64(self.meta + 8, self.heap.load_u64(self.meta + 8) - 1)
        self._dirty.add(self.meta)

    def _move_red_left(self, node: int) -> int:
        self._flip_colors(node)
        if self._is_red(self._left(self._right(node))):
            self._store(node, _RIGHT, self._rotate_right(self._right(node)))
            node = self._rotate_left(node)
            self._flip_colors(node)
        return node

    def _move_red_right(self, node: int) -> int:
        self._flip_colors(node)
        if self._is_red(self._left(self._left(node))):
            node = self._rotate_right(node)
            self._flip_colors(node)
        return node

    def _delete_rec(self, node: int, key: int) -> int:
        if key < self._key(node):
            if not self._is_red(self._left(node)) and not self._is_red(
                self._left(self._left(node))
            ):
                node = self._move_red_left(node)
            self._store(node, _LEFT, self._delete_rec(self._left(node), key))
        else:
            if self._is_red(self._left(node)):
                node = self._rotate_right(node)
            if key == self._key(node) and not self._right(node):
                return 0
            if not self._is_red(self._right(node)) and not self._is_red(
                self._left(self._right(node))
            ):
                node = self._move_red_right(node)
            if key == self._key(node):
                succ = self._min_node(self._right(node))
                self._store(node, _KEY, self._key(succ))
                self._store(node, _VAL, self.heap.load_u64(succ + _VAL))
                self._store(node, _RIGHT, self._delete_min(self._right(node)))
            else:
                self._store(node, _RIGHT, self._delete_rec(self._right(node), key))
        return self._fix_up(node)

    def _min_node(self, node: int) -> int:
        while self._left(node):
            node = self._left(node)
        return node

    def _delete_min(self, node: int) -> int:
        if not self._left(node):
            return 0
        if not self._is_red(self._left(node)) and not self._is_red(
            self._left(self._left(node))
        ):
            node = self._move_red_left(node)
        self._store(node, _LEFT, self._delete_min(self._left(node)))
        return self._fix_up(node)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[int, int]]:
        result: List[Tuple[int, int]] = []
        with self.bench.untimed():
            self._walk(self._root(), result, set())
        return result

    def _walk(self, node: int, out: List[Tuple[int, int]], seen: Set[int]) -> None:
        if not node:
            return
        if node in seen:
            raise RuntimeError("cycle in RB tree")
        seen.add(node)
        self._walk(self._left(node), out, seen)
        out.append((self._key(node), self.heap.load_u64(node + _VAL)))
        self._walk(self._right(node), out, seen)

    def _check_node(self, node: int) -> int:
        """Validate LLRB invariants below *node*; returns black height."""
        if not node:
            return 1
        left, right = self._left(node), self._right(node)
        if self._is_red(right):
            raise RuntimeError(f"right-leaning red link at key {self._key(node)}")
        if self._is_red(node) and self._is_red(left):
            raise RuntimeError(f"two reds in a row at key {self._key(node)}")
        left_bh = self._check_node(left)
        right_bh = self._check_node(right)
        if left_bh != right_bh:
            raise RuntimeError(f"black-height mismatch at key {self._key(node)}")
        return left_bh + (0 if self._is_red(node) else 1)

    def check_invariants(self) -> Optional[str]:
        try:
            pairs = self.items()
            with self.bench.untimed():
                root = self._root()
                if self._is_red(root):
                    return "red root"
                self._check_node(root)
        except RuntimeError as exc:
            return str(exc)
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            return "in-order keys not sorted"
        if dict(pairs) != self.model:
            missing = set(self.model) - set(dict(pairs))
            extra = set(dict(pairs)) - set(self.model)
            return f"tree/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        return None
