"""Hash-Map (HM) benchmark — paper §3.2.

An open-addressed hash table: a key hashes to an index, and "if the entry is
already populated, the next consecutive entry is checked, and so on" (the
paper's chained-collision policy, i.e. linear probing).  Deletion uses
tombstones so probe chains stay intact.  If no free entry is found for an
insertion, the table is resized to twice its size and every record is copied
across, with a ``clwb`` per copied record and one transaction covering the
table switch (paper: "pcommit persists the completion of the resizing").

Entry layout (one cache block per entry)::

    +0   state   (0 = empty, 1 = occupied, 2 = tombstone)
    +8   key
    +16  value

Table metadata block::

    +0   table base address
    +8   table capacity (entries)
    +16  live-record count
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.heap import CACHE_BLOCK
from repro.workloads.base import OpResult, PersistentWorkload, Workbench

_EMPTY, _OCCUPIED, _TOMBSTONE = 0, 1, 2

_STATE = 0
_KEY = 8
_VAL = 16


class HashMapWorkload(PersistentWorkload):
    """Insert-or-delete on a persistent linear-probing hash map."""

    name = "Hash-Map"
    abbrev = "HM"

    def __init__(self, bench: Workbench, initial_capacity: int = 1024):
        super().__init__(bench)
        if initial_capacity & (initial_capacity - 1):
            raise ValueError("capacity must be a power of two")
        # Key space sized so the steady-state load factor sits near 60%,
        # giving the multi-slot probe chains of a mature table.
        self._key_space = int(initial_capacity * 1.2)
        self.meta = self._alloc_node()
        table = self.alloc.alloc(initial_capacity * CACHE_BLOCK)
        self._zero_table(table, initial_capacity)
        self.heap.store_u64(self.meta + 0, table)
        self.heap.store_u64(self.meta + 8, initial_capacity)
        self.heap.store_u64(self.meta + 16, 0)
        self.resizes = 0

    # ------------------------------------------------------------------
    def _zero_table(self, base: int, capacity: int) -> None:
        for i in range(capacity):
            self.heap.store_u64(base + i * CACHE_BLOCK + _STATE, _EMPTY)

    def _table(self) -> int:
        return self.heap.load_u64(self.meta + 0)

    def _capacity(self) -> int:
        return self.heap.load_u64(self.meta + 8)

    def _count(self) -> int:
        return self.heap.load_u64(self.meta + 16)

    @staticmethod
    def _hash(key: int) -> int:
        # Fibonacci hashing; cheap and well-spread for integer keys.
        return (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF

    def _slot(self, table: int, index: int) -> int:
        return table + index * CACHE_BLOCK

    # ------------------------------------------------------------------
    def _probe(self, key: int) -> tuple:
        """Find *key*; returns ``(found_slot, insert_slot)``.

        ``found_slot`` is the occupied slot holding *key* (or 0).
        ``insert_slot`` is the first reusable slot along the probe chain
        (tombstone or empty), or 0 if the chain is full.
        """
        heap = self.heap
        table, capacity = self._table(), self._capacity()
        mask = capacity - 1
        # hashing cost (the paper's keys are records, not raw integers)
        self._compute(16)
        index = self._hash(key) & mask
        insert_slot = 0
        for _ in range(capacity):
            slot = self._slot(table, index)
            state = heap.load_u64(slot + _STATE)
            self._compute(6)  # state decode, key compare, index advance
            if state == _EMPTY:
                return 0, insert_slot or slot
            if state == _TOMBSTONE:
                if not insert_slot:
                    insert_slot = slot
            elif heap.load_u64(slot + _KEY) == key:
                return slot, 0
            index = (index + 1) & mask
        return 0, insert_slot

    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        tx, heap = self.tx, self.heap
        found, free = self._probe(key)

        if found:
            # --- delete: log the entry, then tombstone it --------------
            tx.begin()
            tx.log_block(found)
            tx.log_block(self.meta)
            tx.seal()
            heap.store_u64(found + _STATE, _TOMBSTONE)
            heap.store_u64(self.meta + 16, self._count() - 1)
            tx.flush(found)
            tx.flush(self.meta)
            tx.commit()
            self.model.pop(key, None)
            return OpResult(key, deleted=True)

        if not free or (self._count() + 1) * 4 > self._capacity() * 3:
            self._resize()
            _, free = self._probe(key)

        # --- insert: log the target slot and table metadata ------------
        tx.begin()
        tx.log_block(free)
        tx.log_block(self.meta)
        tx.seal()
        heap.store_u64(free + _KEY, key)
        heap.store_u64(free + _VAL, key ^ 0x5555)
        heap.store_u64(free + _STATE, _OCCUPIED)
        heap.store_u64(self.meta + 16, self._count() + 1)
        tx.flush(free)
        tx.flush(self.meta)
        tx.commit()
        self.model[key] = key ^ 0x5555
        return OpResult(key, inserted=True)

    # ------------------------------------------------------------------
    def _resize(self) -> None:
        """Grow the table 2x; one transaction covers the pointer switch.

        The new table is fresh storage, so only the metadata block needs
        undo logging; each copied record is followed by a ``clwb`` and the
        final persist barrier makes the whole resize durable (paper §3.2).
        """
        tx, heap = self.tx, self.heap
        old_table, old_capacity = self._table(), self._capacity()
        new_capacity = old_capacity * 2
        new_table = self.alloc.alloc(new_capacity * CACHE_BLOCK)
        tx.begin()
        tx.log_block(self.meta)
        tx.seal()
        self._zero_table(new_table, new_capacity)
        mask = new_capacity - 1
        live = 0
        for i in range(old_capacity):
            slot = self._slot(old_table, i)
            if heap.load_u64(slot + _STATE) != _OCCUPIED:
                continue
            key = heap.load_u64(slot + _KEY)
            value = heap.load_u64(slot + _VAL)
            index = self._hash(key) & mask
            while heap.load_u64(self._slot(new_table, index) + _STATE) == _OCCUPIED:
                index = (index + 1) & mask
            dest = self._slot(new_table, index)
            heap.store_u64(dest + _KEY, key)
            heap.store_u64(dest + _VAL, value)
            heap.store_u64(dest + _STATE, _OCCUPIED)
            tx.flush(dest)
            live += 1
        heap.store_u64(self.meta + 0, new_table)
        heap.store_u64(self.meta + 8, new_capacity)
        heap.store_u64(self.meta + 16, live)
        tx.flush(self.meta)
        tx.commit()
        self.resizes += 1

    # ------------------------------------------------------------------
    def items(self) -> Dict[int, int]:
        result: Dict[int, int] = {}
        with self.bench.untimed():
            table, capacity = self._table(), self._capacity()
            for i in range(capacity):
                slot = self._slot(table, i)
                if self.heap.load_u64(slot + _STATE) == _OCCUPIED:
                    key = self.heap.load_u64(slot + _KEY)
                    if key in result:
                        raise RuntimeError(f"duplicate key {key}")
                    result[key] = self.heap.load_u64(slot + _VAL)
        return result

    def check_invariants(self) -> Optional[str]:
        try:
            found = self.items()
        except RuntimeError as exc:
            return str(exc)
        if found != self.model:
            missing = set(self.model) - set(found)
            extra = set(found) - set(self.model)
            return f"map/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        with self.bench.untimed():
            stored = self._count()
        if stored != len(self.model):
            return f"count {stored} != model {len(self.model)}"
        return None
