"""String Swap (SS) benchmark — paper §3.2.

An array of 256-byte strings.  An operation picks two random indices and
swaps the strings.  The transaction undo-logs both strings (8 cache blocks
of log payload) plus the index bookkeeping block; after the swap, eight
``clwb`` instructions persist the swapped strings (paper: "eight clwbs are
issued for logging entries and one clwb is for indexes. After the swap is
completed, another eight clwbs are issued along with pcommit").

String entry: 256 bytes = 4 cache blocks.  A separate metadata block holds
the array base and length (logged so the workload's bookkeeping is durable).
"""

from __future__ import annotations

import string
from typing import List, Optional

from repro.mem.heap import CACHE_BLOCK
from repro.workloads.base import OpResult, PersistentWorkload, Workbench

STRING_SIZE = 256


class StringSwapWorkload(PersistentWorkload):
    """Swap random pairs in a persistent string array."""

    name = "String Swap"
    abbrev = "SS"

    def __init__(self, bench: Workbench, n_strings: int = 512):
        super().__init__(bench)
        if n_strings < 2:
            raise ValueError("need at least two strings to swap")
        self.n_strings = n_strings
        self._key_space = n_strings * n_strings
        self.meta = self._alloc_node()
        self.array = self.alloc.alloc(n_strings * STRING_SIZE)
        alphabet = (string.ascii_letters + string.digits).encode()
        for i in range(n_strings):
            payload = bytes(alphabet[(i + j) % len(alphabet)] for j in range(STRING_SIZE))
            self.heap.store_bytes(self._entry(i), payload)
        self.heap.store_u64(self.meta + 0, self.array)
        self.heap.store_u64(self.meta + 8, n_strings)
        self.heap.store_u64(self.meta + 16, 0)  # swap counter
        #: model: index -> string bytes.
        self.model = {i: self._read(i) for i in range(n_strings)}

    def _entry(self, index: int) -> int:
        return self.array + index * STRING_SIZE

    def _read(self, index: int) -> bytes:
        with self.bench.untimed():
            return self.heap.load_bytes(self._entry(index), STRING_SIZE)

    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        key %= self._key_space
        i, j = key // self.n_strings, key % self.n_strings
        if i == j:
            j = (j + 1) % self.n_strings
        return self.swap(i, j)

    def swap(self, i: int, j: int) -> OpResult:
        tx, heap = self.tx, self.heap
        a, b = self._entry(i), self._entry(j)
        tx.begin()
        # Undo-log both strings (2 x 256B payload -> 8 blocks of clwb when
        # sealing) and the index/bookkeeping block.
        tx.log_range(a, STRING_SIZE)
        tx.log_range(b, STRING_SIZE)
        tx.log_block(self.meta)
        tx.seal()
        # The swap itself, via a stack buffer (untracked temporary).  Each
        # copy carries strcpy-style loop overhead (compare/advance per word).
        tmp = heap.load_bytes(a, STRING_SIZE, meta="str")
        self._compute(96)
        heap.store_bytes(a, heap.load_bytes(b, STRING_SIZE, meta="str"), meta="str")
        self._compute(96)
        heap.store_bytes(b, tmp, meta="str")
        self._compute(96)
        heap.store_u64(self.meta + 16, heap.load_u64(self.meta + 16) + 1)
        tx.flush(a, STRING_SIZE)  # 4 clwb
        tx.flush(b, STRING_SIZE)  # 4 clwb
        tx.flush(self.meta)
        tx.commit()
        self.model[i], self.model[j] = self.model[j], self.model[i]
        return OpResult(i * self.n_strings + j, swapped=True)

    # ------------------------------------------------------------------
    def strings(self) -> List[bytes]:
        return [self._read(i) for i in range(self.n_strings)]

    def check_invariants(self) -> Optional[str]:
        current = self.strings()
        for index, payload in enumerate(current):
            if payload != self.model[index]:
                return f"string {index} differs from model"
        if sorted(current) != sorted(self.model.values()):
            return "string multiset changed (corruption)"
        return None
