"""Linked-List (LL) benchmark — paper §3.1.1 and Figure 2.

A singly-linked, sorted-by-nothing list of 64-byte nodes.  An operation
searches a random key: if found, the node is unlinked; if not, a new node is
inserted after the node the search stopped at (paper inserts after ``nn``,
the last visited node — we insert at the head's successor position found by
the search, which gives the same logging shape: one existing node logged).

The paper caps the list at 1024 nodes so search time does not dominate.

Node layout (one cache block)::

    +0   key
    +8   value
    +16  next (0 = NULL)
"""

from __future__ import annotations

from typing import List, Optional

from repro.mem.heap import CACHE_BLOCK
from repro.workloads.base import OpResult, PersistentWorkload, Workbench

_KEY = 0
_VAL = 8
_NEXT = 16


class LinkedListWorkload(PersistentWorkload):
    """Insert-or-delete on a persistent singly-linked list."""

    name = "Linked-List"
    abbrev = "LL"

    def __init__(self, bench: Workbench, max_nodes: int = 1024):
        super().__init__(bench)
        self.max_nodes = max_nodes
        self._key_space = max_nodes * 2
        # The list head pointer lives in a dedicated NVMM metadata block so
        # recovery can find the structure.
        self.meta = self._alloc_node()
        self.heap.store_u64(self.meta + 0, 0)  # head
        self.heap.store_u64(self.meta + 8, 0)  # count
        self.count = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def _head(self) -> int:
        return self.heap.load_u64(self.meta + 0)

    def _set_head(self, addr: int) -> None:
        self.heap.store_u64(self.meta + 0, addr)

    # ------------------------------------------------------------------
    def operation(self, key: int) -> OpResult:
        """Search; delete if found, insert otherwise (paper's op)."""
        tx, heap = self.tx, self.heap
        # --- search (reads are not transactional) ---------------------
        prev = 0
        node = self._head()
        while node:
            self._compute(4)  # key compare, advance, loop control
            if heap.load_u64(node + _KEY) == key:
                break
            prev = node
            node = heap.load_u64(node + _NEXT)

        if node:
            # --- delete: log the predecessor (or head block) ----------
            tx.begin()
            if prev:
                tx.log_block(prev)
            else:
                tx.log_block(self.meta)
            tx.seal()
            nxt = heap.load_u64(node + _NEXT)
            if prev:
                heap.store_u64(prev + _NEXT, nxt)
                tx.flush(prev)
            else:
                self._set_head(nxt)
                tx.flush(self.meta)
            tx.commit()
            self.count -= 1
            self.model.pop(key, None)
            # Deleted nodes are not immediately reclaimed (paper §5.2).
            return OpResult(key, deleted=True)

        if self.count >= self.max_nodes:
            return OpResult(key)
        # --- insert at head: new node needs no logging (unreachable on
        # crash until the durable head pointer update commits) ---------
        new = self._alloc_node()
        heap.store_u64(new + _KEY, key)
        heap.store_u64(new + _VAL, key ^ 0xABCD)
        heap.store_u64(new + _NEXT, self._head())
        tx.begin()
        tx.log_block(self.meta)
        tx.seal()
        self._set_head(new)
        tx.flush(new)
        tx.flush(self.meta)
        tx.commit()
        self.count += 1
        self.model[key] = key ^ 0xABCD
        return OpResult(key, inserted=True)

    # ------------------------------------------------------------------
    def items(self) -> List[tuple]:
        """Walk the list untimed; returns ``[(key, value), ...]``."""
        result = []
        with self.bench.untimed():
            node = self._head()
            seen = set()
            while node:
                if node in seen:
                    raise RuntimeError("cycle in linked list")
                seen.add(node)
                result.append(
                    (self.heap.load_u64(node + _KEY), self.heap.load_u64(node + _VAL))
                )
                node = self.heap.load_u64(node + _NEXT)
        return result

    def check_invariants(self) -> Optional[str]:
        try:
            found = dict(self.items())
        except RuntimeError as exc:
            return str(exc)
        if found != self.model:
            missing = set(self.model) - set(found)
            extra = set(found) - set(self.model)
            return f"list/model mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        return None
