"""Cache-block-aligned allocator over an :class:`~repro.mem.heap.NVMHeap`.

Allocation metadata is kept *outside* the simulated memory — the paper's
benchmarks assume allocation itself is not part of the transactional update
path ("we assume that a deleted node is not immediately garbage collected",
paper §5.2), so the allocator is deliberately simple: a bump pointer with a
per-size free list that nodes are returned to only when the workload decides
a node is safely reclaimable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.heap import NVMHeap, CACHE_BLOCK


class OutOfMemoryError(MemoryError):
    """Raised when the heap region is exhausted."""


def _round_up(size: int, align: int) -> int:
    return (size + align - 1) & ~(align - 1)


class Allocator:
    """Bump allocator with size-class free lists.

    All allocations are aligned to (and rounded up to a multiple of)
    :data:`~repro.mem.heap.CACHE_BLOCK`, so a 64-byte node occupies exactly
    one cache block and persists with a single ``clwb``.
    """

    def __init__(self, heap: NVMHeap, base: int = CACHE_BLOCK):
        if base % CACHE_BLOCK:
            raise ValueError("allocator base must be block aligned")
        if base <= 0:
            raise ValueError("allocator base must leave address 0 as NULL")
        self.heap = heap
        self._next = base
        self._free: Dict[int, List[int]] = {}
        self.allocated_bytes = 0
        self.freed_bytes = 0

    def alloc(self, size: int) -> int:
        """Allocate *size* bytes; returns the (block-aligned) base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        rounded = _round_up(size, CACHE_BLOCK)
        free_list = self._free.get(rounded)
        if free_list:
            addr = free_list.pop()
        else:
            addr = self._next
            if addr + rounded > self.heap.size:
                raise OutOfMemoryError(
                    f"heap exhausted: need {rounded} bytes at {addr:#x}, "
                    f"heap size {self.heap.size:#x}"
                )
            self._next += rounded
        self.allocated_bytes += rounded
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return a region to the free list (deferred reclamation)."""
        if addr <= 0 or addr % CACHE_BLOCK:
            raise ValueError(f"bad free address {addr:#x}")
        rounded = _round_up(size, CACHE_BLOCK)
        self._free.setdefault(rounded, []).append(addr)
        self.freed_bytes += rounded

    @property
    def high_water_mark(self) -> int:
        """One past the highest address ever handed out."""
        return self._next

    def checkpoint(self) -> tuple:
        """Snapshot allocator state (used around dry runs so a re-executed
        mutation allocates the same addresses)."""
        return self._next, {size: list(lst) for size, lst in self._free.items()}

    def restore(self, state: tuple) -> None:
        """Rewind to a previous :meth:`checkpoint`."""
        self._next, free = state
        self._free = {size: list(lst) for size, lst in free.items()}
