"""Simulated byte-addressable non-volatile main memory (NVMM) heap.

The workloads in :mod:`repro.workloads` are written the way the paper's C
benchmarks are: as pointer-based data structures living at explicit byte
addresses.  :class:`NVMHeap` supplies the flat address space plus typed
accessors, and :class:`Allocator` hands out cache-block-aligned storage so
that "one node = one cache block = one clwb" holds (paper Table 1 caption).
"""

from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.mem.alloc import Allocator, OutOfMemoryError

__all__ = ["NVMHeap", "Allocator", "OutOfMemoryError", "CACHE_BLOCK"]
