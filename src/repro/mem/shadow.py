"""Shadow heap: buffered-write overlay used for dry-running mutations.

Full logging (paper §3.2) must know, *before* mutating, every node an
operation may touch.  For the self-balancing trees the statically
predictable set (the search path) does not cover every rotation pattern, so
the workloads determine the exact write set by **dry-running** the mutation
against a :class:`ShadowHeap`: reads see real memory through the overlay,
writes are buffered and discarded, and the set of written cache blocks is
what the transaction then undo-logs (unioned with the static search path,
keeping the log conservative the way the paper describes).

The shadow heap implements the same typed-accessor interface as
:class:`~repro.mem.heap.NVMHeap` but notifies no observers — a dry run is
invisible to both the trace recorder and the persistence domain, exactly
like the address-set computation a real programmer would hoist out of the
transaction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.mem.heap import NVMHeap, CACHE_BLOCK


class ShadowHeap:
    """Read-through, write-buffering view of an :class:`NVMHeap`.

    The overlay is kept at byte granularity so mixed word/byte writes
    compose correctly.
    """

    def __init__(self, heap: NVMHeap):
        self._heap = heap
        self.size = heap.size
        #: buffered writes, byte address -> byte value
        self._overlay: Dict[int, int] = {}
        #: cache blocks written during the dry run
        self.written_blocks: Set[int] = set()

    # ------------------------------------------------------------------
    def load_bytes(self, addr: int, size: int, meta: Optional[str] = None) -> bytes:
        base = bytearray(self._heap.raw_read(addr, size))
        overlay = self._overlay
        for offset in range(size):
            value = overlay.get(addr + offset)
            if value is not None:
                base[offset] = value
        return bytes(base)

    def store_bytes(self, addr: int, payload: bytes, meta: Optional[str] = None) -> None:
        overlay = self._overlay
        for offset, byte in enumerate(payload):
            overlay[addr + offset] = byte
        first = addr & ~(CACHE_BLOCK - 1)
        last = (addr + len(payload) - 1) & ~(CACHE_BLOCK - 1)
        self.written_blocks.update(range(first, last + CACHE_BLOCK, CACHE_BLOCK))

    # ------------------------------------------------------------------
    def load_u64(self, addr: int, meta: Optional[str] = None) -> int:
        return int.from_bytes(self.load_bytes(addr, 8), "little")

    def store_u64(self, addr: int, value: int, meta: Optional[str] = None) -> None:
        self.store_bytes(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def load_i64(self, addr: int, meta: Optional[str] = None) -> int:
        value = self.load_u64(addr, meta)
        return value - (1 << 64) if value >= (1 << 63) else value

    def store_i64(self, addr: int, value: int, meta: Optional[str] = None) -> None:
        self.store_u64(addr, value & 0xFFFFFFFFFFFFFFFF, meta)

    def raw_read(self, addr: int, size: int) -> bytes:
        return self.load_bytes(addr, size)
