"""Flat byte-addressable memory with typed accessors.

The heap is the *functional* state of the simulated NVMM: an array of bytes
that workloads read and write through typed helpers.  Every access is
reported to an optional observer (the :class:`~repro.isa.recorder.TraceRecorder`
for timing traces and/or the :class:`~repro.pmem.domain.PersistenceDomain`
for crash semantics).

Addresses are plain Python ints.  Address 0 is reserved as the NULL pointer
and never handed out by the allocator.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

#: Cache-block size used throughout the reproduction (paper Table 2).
CACHE_BLOCK = 64


class MemoryObserver(Protocol):
    """Anything that wants to see loads/stores as they happen."""

    def load(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None: ...

    def store(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None: ...


class NVMHeap:
    """A fixed-size byte-addressable memory region.

    Parameters
    ----------
    size:
        Region size in bytes.  Must be a multiple of :data:`CACHE_BLOCK`.
    """

    def __init__(self, size: int = 1 << 24):
        if size <= 0 or size % CACHE_BLOCK:
            raise ValueError("heap size must be a positive multiple of the block size")
        self.size = size
        self._data = bytearray(size)
        self._observers: List[MemoryObserver] = []

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def attach(self, observer: MemoryObserver) -> None:
        """Register an observer to be notified of every load/store."""
        self._observers.append(observer)

    def detach(self, observer: MemoryObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    # raw access (no observation) — used by persistence-domain snapshots
    # ------------------------------------------------------------------
    def raw_read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self._data[addr : addr + size])

    def raw_write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self._data[addr : addr + len(payload)] = payload

    # ------------------------------------------------------------------
    # typed accessors (observed)
    # ------------------------------------------------------------------
    def load_u64(self, addr: int, meta: Optional[str] = None) -> int:
        self._check(addr, 8)
        for obs in self._observers:
            obs.load(addr, 8, meta)
        return int.from_bytes(self._data[addr : addr + 8], "little")

    def store_u64(self, addr: int, value: int, meta: Optional[str] = None) -> None:
        # Data is written *before* observers run: an observer reacting to
        # the store (e.g. a crash tester forcing an eviction) must see the
        # post-store cache contents, like real write-back hardware would.
        self._check(addr, 8)
        self._data[addr : addr + 8] = (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        for obs in self._observers:
            obs.store(addr, 8, meta)

    def load_i64(self, addr: int, meta: Optional[str] = None) -> int:
        value = self.load_u64(addr, meta)
        return value - (1 << 64) if value >= (1 << 63) else value

    def store_i64(self, addr: int, value: int, meta: Optional[str] = None) -> None:
        self.store_u64(addr, value & 0xFFFFFFFFFFFFFFFF, meta)

    def load_bytes(self, addr: int, size: int, meta: Optional[str] = None) -> bytes:
        """Load *size* bytes, observed one machine word per 8 bytes."""
        self._check(addr, size)
        for offset in range(0, size, 8):
            chunk = min(8, size - offset)
            for obs in self._observers:
                obs.load(addr + offset, chunk, meta)
        return bytes(self._data[addr : addr + size])

    def store_bytes(self, addr: int, payload: bytes, meta: Optional[str] = None) -> None:
        """Store bytes, observed one machine word per 8 bytes.

        As with :meth:`store_u64`, the data lands before observers run.
        """
        size = len(payload)
        self._check(addr, size)
        self._data[addr : addr + size] = payload
        for offset in range(0, size, 8):
            chunk = min(8, size - offset)
            for obs in self._observers:
                obs.store(addr + offset, chunk, meta)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        """Cache-block base address containing *addr*."""
        return addr & ~(CACHE_BLOCK - 1)

    def snapshot(self) -> bytes:
        """Full functional image (used by crash testing as ground truth)."""
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        """Overwrite the full functional image (crash rollback)."""
        if len(image) != self.size:
            raise ValueError("snapshot size mismatch")
        self._data[:] = image

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > self.size:
            raise IndexError(f"access [{addr:#x}, {addr + size:#x}) outside heap")
