"""Process-wide telemetry registry: counters, gauges, histograms.

The simulation and harness layers publish named measurements here —
batch counts and per-phase wall clock from the NumPy kernel, routing
decisions from the classification engine, run totals from the pipeline,
cache traffic, supervisor recoveries — and ``--metrics-out`` folds the
whole registry into its snapshot (see :mod:`repro.obs.metrics`).

**Disabled by default, and free when disabled.**  Every publish call
starts with one module-level ``bool`` test and returns immediately, so
instrumented hot paths (the kernel publishes per *batch*, never per op)
cost one branch when telemetry is off.  Enable with
``REPRO_TELEMETRY=1`` in the environment or :func:`set_enabled`; the
``bench``/``--metrics-out`` paths enable it around the work they
measure.  Note the simulated-cycle contract is untouched either way:
telemetry records *host-side* facts (wall clock, call counts, routing),
so enabling it never changes results, only what gets observed.

Three instrument kinds, all process-local and append-cheap:

* **counters** — monotone totals (``cache.stats_hits``); float-valued
  increments are allowed (``kernel.classify_seconds``);
* **gauges** — last-write-wins values (``supervisor.jobs``);
* **histograms** — running ``count/sum/min/max`` summaries
  (``pipeline.run_cycles``), no buckets: the consumers are regression
  tracking and the metrics snapshot, not percentile dashboards.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "enabled", "set_enabled", "counter_inc", "gauge_set", "observe",
    "snapshot", "reset",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )


_enabled: bool = _env_enabled()
_counters: Dict[str, float] = {}
_gauges: Dict[str, float] = {}
_histograms: Dict[str, Dict[str, float]] = {}


def enabled() -> bool:
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn the registry on or off (overrides ``REPRO_TELEMETRY``)."""
    global _enabled
    _enabled = bool(flag)


def counter_inc(name: str, amount: float = 1) -> None:
    if not _enabled:
        return
    _counters[name] = _counters.get(name, 0) + amount


def gauge_set(name: str, value: float) -> None:
    if not _enabled:
        return
    _gauges[name] = value


def observe(name: str, value: float) -> None:
    if not _enabled:
        return
    summary = _histograms.get(name)
    if summary is None:
        _histograms[name] = {
            "count": 1, "sum": value, "min": value, "max": value,
        }
        return
    summary["count"] += 1
    summary["sum"] += value
    if value < summary["min"]:
        summary["min"] = value
    if value > summary["max"]:
        summary["max"] = value


def snapshot() -> Dict[str, object]:
    """The registry's current contents (values rounded for JSON).

    Histograms gain a derived ``mean``.  The snapshot is taken even when
    the registry is disabled — it just reports what was collected while
    it was on (typically nothing).
    """

    def _round(value: float) -> float:
        return round(value, 9)

    return {
        "enabled": _enabled,
        "counters": {
            name: _round(value) for name, value in sorted(_counters.items())
        },
        "gauges": {
            name: _round(value) for name, value in sorted(_gauges.items())
        },
        "histograms": {
            name: {
                "count": summary["count"],
                "sum": _round(summary["sum"]),
                "min": _round(summary["min"]),
                "max": _round(summary["max"]),
                "mean": _round(summary["sum"] / summary["count"]),
            }
            for name, summary in sorted(_histograms.items())
        },
    }


def reset(enabled_after: Optional[bool] = None) -> None:
    """Drop everything collected; optionally force the on/off state
    (``None`` re-reads ``REPRO_TELEMETRY``)."""
    global _enabled
    _counters.clear()
    _gauges.clear()
    _histograms.clear()
    _enabled = _env_enabled() if enabled_after is None else bool(enabled_after)
