"""Traced-run capture: glue between the tracer and the harness.

Kept out of ``repro.obs.__init__`` because it imports the harness
(which itself imports :mod:`repro.obs.metrics`); import it directly::

    from repro.obs.capture import traced_run

``TRACE_MODES`` names every machine setup the ``python -m repro trace``
CLI can capture — the four persistency modes on the baseline machine
plus the SP configurations, including ``sp_unlim``, a resource-limit
study point (the largest Table-3 SSB with a deep checkpoint buffer, so
speculation is effectively never resource-stalled).
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.obs.tracer import SpanTracer
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel
from repro.workloads.registry import PAPER_SPECS

_BASE = MachineConfig()

#: CLI mode label -> (persistency mode of the trace, machine config).
TRACE_MODES: Dict[str, Tuple[PersistMode, MachineConfig]] = {
    "base": (PersistMode.BASE, _BASE),
    "log": (PersistMode.LOG, _BASE),
    "log_p": (PersistMode.LOG_P, _BASE),
    "log_p_sf": (PersistMode.LOG_P_SF, _BASE),
    "sp32": (PersistMode.LOG_P_SF, _BASE.with_sp(32)),
    "sp256": (PersistMode.LOG_P_SF, _BASE.with_sp(256)),
    "sp1024": (PersistMode.LOG_P_SF, _BASE.with_sp(1024)),
    # effectively-unlimited speculation resources: the largest SSB the
    # paper's Table 3 gives a CAM latency for, plus 64 checkpoints, so
    # neither structure's exhaustion ever forces a stall in practice
    "sp_unlim": (
        PersistMode.LOG_P_SF,
        _BASE.with_sp(1024, checkpoint_entries=64),
    ),
}


def _normalize(token: str) -> str:
    return re.sub(r"[^a-z0-9]", "", token.lower())


def resolve_workload(name: str) -> str:
    """Map a benchmark abbrev or human name to its registry abbrev.

    Accepts ``BT``, ``bt``, ``btree``, ``B-tree``, ``hash-map``, ... —
    anything whose alphanumeric form matches an abbrev or spec name.
    """
    token = _normalize(name)
    for abbrev, spec in PAPER_SPECS.items():
        if token == abbrev.lower() or token == _normalize(spec.name):
            return abbrev
    known = ", ".join(
        f"{abbrev} ({spec.name})" for abbrev, spec in PAPER_SPECS.items()
    )
    raise ValueError(f"unknown workload {name!r}; known: {known}")


def resolve_mode(label: str) -> Tuple[str, PersistMode, MachineConfig]:
    """Map a mode label (``log+p+sf`` and ``log_p_sf`` both work) to its
    canonical label, persistency mode, and machine config."""
    token = re.sub(r"[+\-\s]", "_", label.lower())
    if token not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {label!r}; known: {', '.join(TRACE_MODES)}"
        )
    mode, config = TRACE_MODES[token]
    return token, mode, config


def traced_run(
    workload: str,
    mode: str = "sp256",
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
    tracer: Optional[SpanTracer] = None,
):
    """Simulate one workload variant with tracing on.

    Returns ``(stats, tracer, info)`` where *info* carries the resolved
    identifiers (abbrev, mode label, trace length) for report headers.
    The trace comes through the normal harness cache; only the
    simulation itself runs traced (through the exact per-op loop — see
    docs/OBSERVABILITY.md).
    """
    from repro.harness.runner import build_trace

    abbrev = resolve_workload(workload)
    mode_label, persist_mode, config = resolve_mode(mode)
    trace = build_trace(abbrev, persist_mode, seed=seed, init_ops=init_ops,
                        sim_ops=sim_ops)
    tracer = tracer if tracer is not None else SpanTracer()
    stats = PipelineModel(config, tracer=tracer).run(trace)
    info = {
        "workload": abbrev,
        "workload_name": PAPER_SPECS[abbrev].name,
        "mode": mode_label,
        "persist_mode": persist_mode.value,
        "seed": seed,
        "trace_len": len(trace),
        "sp_enabled": config.sp_enabled,
    }
    return stats, tracer, info


def traced_system_run(
    workload: str,
    mode: str = "sp256",
    cores: int = 2,
    contention: float = 0.0,
    seed: int = 7,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
):
    """Co-simulate one multi-core cell with system tracing on.

    Returns ``(result, system_tracer, info)``: the
    :class:`~repro.uarch.system.SystemResult` with per-core stats and
    conflict counters, the :class:`~repro.obs.tracer.SystemTracer`
    holding each core's spans plus the aggressor→victim conflict
    records, and the capture metadata.  The concurrent traces are
    regenerated (they are cheap and seed-deterministic); only the
    co-simulation itself runs traced, every core on its exact per-op
    loop.
    """
    from repro.obs.tracer import SystemTracer
    from repro.uarch.system import SystemModel
    from repro.workloads.concurrent import generate_concurrent

    if cores < 2:
        raise ValueError("traced_system_run needs >= 2 cores; use traced_run")
    abbrev = resolve_workload(workload)
    mode_label, persist_mode, config = resolve_mode(mode)
    run = generate_concurrent(
        abbrev, persist_mode, n_cores=cores, contention=contention,
        seed=seed, init_ops=init_ops, sim_ops=sim_ops,
    )
    system_tracer = SystemTracer(cores)
    system = SystemModel(config, n_cores=cores, system_tracer=system_tracer)
    result = system.run(run.traces)
    info = {
        "workload": abbrev,
        "workload_name": PAPER_SPECS[abbrev].name,
        "mode": mode_label,
        "persist_mode": persist_mode.value,
        "seed": seed,
        "cores": cores,
        "contention": contention,
        "trace_lens": [len(trace) for trace in run.traces],
        "sp_enabled": config.sp_enabled,
    }
    return result, system_tracer, info
