"""Cycle-resolved observability layer (``repro.obs``).

Opt-in instrumentation threaded through the pipeline, memory controller,
and harness.  Three pieces:

* :mod:`repro.obs.tracer` — the :class:`~repro.obs.tracer.Tracer`
  protocol plus the collecting :class:`~repro.obs.tracer.SpanTracer`
  and the inert :class:`~repro.obs.tracer.NullTracer`.  A pipeline is
  traced by constructing it with ``PipelineModel(config, tracer=...)``;
  with ``tracer=None`` (the default) the model stays byte-for-byte on
  the segment-walker fast path — zero overhead when disabled.
* :mod:`repro.obs.attribution` — decomposes ``stats.cycles`` into
  compute / fetch-stall / sfence-drain / checkpoint / ssb-full buckets
  from the traced stall spans, and cross-checks span counts against the
  run's :class:`~repro.stats.run.RunStats` counters.
* :mod:`repro.obs.perfetto` — Chrome trace-event JSON export (loadable
  in Perfetto / ``chrome://tracing``) plus a dependency-free schema
  validator used by CI.
* :mod:`repro.obs.metrics` — harness self-observability: cache
  hit/miss counters and per-variant wall-time/worker records, surfaced
  by ``run``/``report``/``bench`` and ``--metrics-out``.
* :mod:`repro.obs.telemetry` — the process-wide counter/gauge/histogram
  registry the kernel, classification engine, cache, and supervisor
  publish into (no-op unless enabled; folded into ``--metrics-out``).

Multi-core: :class:`~repro.obs.tracer.SystemTracer` spans every core of
a :class:`~repro.uarch.system.SystemModel` run plus the aggressor→victim
:class:`~repro.obs.tracer.ConflictRecord` trail; ``attribute_system`` /
``system_attribution_errors`` extend the attribution contract per core,
and :mod:`repro.obs.perfetto` exports the whole system as one timeline
(per-core track groups, shared persistence-domain tracks, conflict flow
arrows).

:mod:`repro.obs.capture` (imported directly, not from this package
root, because it pulls in the harness) glues the pieces together for
the ``python -m repro trace`` CLI and the validation subsystem.

See docs/OBSERVABILITY.md for the event taxonomy and a walkthrough.
"""

from repro.obs.attribution import (
    ATTRIBUTION_BUCKETS,
    AttributionReport,
    SystemAttributionReport,
    attribute,
    attribute_system,
    attribution_errors,
    consistency_errors,
    system_attribution_errors,
)
from repro.obs.tracer import (
    ConflictRecord,
    NullTracer,
    SpanTracer,
    SystemTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "AttributionReport",
    "ConflictRecord",
    "NullTracer",
    "SpanTracer",
    "SystemAttributionReport",
    "SystemTracer",
    "TraceEvent",
    "Tracer",
    "attribute",
    "attribute_system",
    "attribution_errors",
    "consistency_errors",
    "system_attribution_errors",
]
