"""Harness self-observability: cache effectiveness and variant timing.

The harness runs parallel, cached, fast-pathed simulation jobs; this
module records what actually happened — which cache layer served each
variant, how long the real work took, and which worker did it — so
``run``/``report``/``bench`` can print a one-line accounting and
``--metrics-out`` can dump the machine-readable version.

Recording is in-process and append-only.  The serial path
(:func:`repro.harness.runner.run_variant` / ``trace_for_key``) records
disk hits and fresh work; the parallel scheduler
(:mod:`repro.harness.parallel`) records per-worker wall time and PID
for fanned-out jobs.  In-process memo hits are *not* recorded — they
are dictionary lookups, and recording them would swamp the signal
(figure assembly loops re-read every variant from the memo).

Cache hit/miss/corrupt counters live in :mod:`repro.harness.cache`
(session scope, plus a best-effort lifetime total persisted in the
cache directory); :func:`metrics_snapshot` folds both in.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class VariantRecord:
    """One unit of harness work: a trace fetch/generation or a simulation.

    ``kind``   — ``"trace"`` or ``"sim"``;
    ``label``  — ``ABBREV/mode`` of the variant;
    ``source`` — ``"disk"`` (cache hit), ``"generated"``/``"simulated"``
    (real work), as observed at the recording site;
    ``worker`` — ``"main"`` or ``"pid:N"`` for pool workers.
    """

    kind: str
    label: str
    source: str
    wall_s: float
    worker: str = "main"


_RECORDS: List[VariantRecord] = []


@dataclass
class SupervisorCounters:
    """Fault-tolerance accounting of the campaign supervisor
    (:mod:`repro.harness.supervisor`).

    ``retries`` counts re-submissions after a worker failure, ``timeouts``
    watchdog kills of over-deadline jobs, ``quarantined`` jobs pulled from
    the fleet after repeated failures (they finish in the serial fallback),
    ``pool_rebuilds`` recoveries from a broken process pool,
    ``serial_degradations`` campaigns that gave up on pools entirely,
    ``resumed`` jobs skipped on ``--resume`` because the campaign journal
    already recorded them, ``resumed_quarantined`` jobs routed straight
    to the serial fallback because the journal recorded their
    quarantine, ``journal_stale`` journaled jobs whose cached
    result had vanished and had to be re-simulated, and
    ``chaos_corrupts`` cache corruptions injected by chaos mode.
    """

    campaigns: int = 0
    jobs: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    serial_degradations: int = 0
    resumed: int = 0
    resumed_quarantined: int = 0
    journal_stale: int = 0
    chaos_corrupts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def any_recovery(self) -> bool:
        """Whether any fault-handling path actually fired."""
        return any(
            value
            for key, value in asdict(self).items()
            if key not in ("campaigns", "jobs")
        )


_SUPERVISOR = SupervisorCounters()


@dataclass
class TransportCounters:
    """Fleet-health accounting of the http worker transport
    (:mod:`repro.harness.transport`).

    ``requests`` counts job submissions to remote workers and
    ``remote_jobs`` the ones that returned a verified result;
    ``retries``/``timeouts`` are failed attempts charged to jobs,
    ``crc_rejected`` responses dropped by the integrity envelope,
    ``reassignments`` jobs moved off an unusable worker,
    ``heartbeats``/``heartbeat_misses`` liveness probes and their
    failures, ``dead_workers`` peers dropped for the campaign,
    ``worker_quarantines`` bounded worker cool-offs,
    ``fleet_exhausted`` jobs that burned their network attempts,
    ``degraded_local`` campaigns that fell back to the local pool, and
    ``worker_cache_degraded`` workers that reported their own cache
    switched off mid-campaign.
    """

    requests: int = 0
    remote_jobs: int = 0
    retries: int = 0
    timeouts: int = 0
    crc_rejected: int = 0
    reassignments: int = 0
    heartbeats: int = 0
    heartbeat_misses: int = 0
    dead_workers: int = 0
    worker_quarantines: int = 0
    fleet_exhausted: int = 0
    degraded_local: int = 0
    worker_cache_degraded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def any_activity(self) -> bool:
        """Whether the http transport did anything at all."""
        return any(asdict(self).values())

    def any_degradation(self) -> bool:
        """Whether any fleet fault-handling path actually fired."""
        return any(
            value
            for key, value in asdict(self).items()
            if key not in ("requests", "remote_jobs", "heartbeats")
        )


_TRANSPORT = TransportCounters()


def transport_counters() -> TransportCounters:
    """This process's fleet transport accounting (a live object)."""
    return _TRANSPORT


@dataclass
class SystemCounters:
    """Multi-core co-simulation accounting (``run_system`` cells this
    process served, memo hits excluded — same convention as the variant
    records).  Abort/replay/broadcast totals come from the cells'
    ``extra`` counters, so disk-cached cells contribute the same numbers
    a fresh co-simulation would."""

    runs: int = 0
    cores_max: int = 0
    contention_max: float = 0.0
    conflict_aborts: int = 0
    replayed_instructions: int = 0
    store_broadcasts: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


_SYSTEM = SystemCounters()


def system_counters() -> SystemCounters:
    """This process's multi-core run accounting (a live object)."""
    return _SYSTEM


def record_system_run(cores: int, contention: float, extra: Dict) -> None:
    """Fold one served multi-core cell into the system accounting.

    *extra* is the cell's ``RunStats.extra`` (carries the system
    conflict counters — see ``SystemResult.aggregate``)."""
    _SYSTEM.runs += 1
    _SYSTEM.cores_max = max(_SYSTEM.cores_max, cores)
    _SYSTEM.contention_max = max(_SYSTEM.contention_max, contention)
    _SYSTEM.conflict_aborts += int(extra.get("conflict_aborts", 0))
    _SYSTEM.replayed_instructions += int(extra.get("replayed_instructions", 0))
    _SYSTEM.store_broadcasts += int(extra.get("store_broadcasts", 0))


def supervisor_counters() -> SupervisorCounters:
    """This process's supervisor accounting (a live object)."""
    return _SUPERVISOR


def record_variant(
    kind: str, label: str, source: str, wall_s: float, worker: str = "main"
) -> None:
    """Append one work record (called by the harness, cheap)."""
    _RECORDS.append(VariantRecord(kind, label, source, round(wall_s, 6), worker))


def variant_records() -> List[VariantRecord]:
    return list(_RECORDS)


def reset_metrics() -> None:
    """Drop all recorded work (tests and bench phases use this)."""
    global _SUPERVISOR, _SYSTEM, _TRANSPORT
    _RECORDS.clear()
    _SUPERVISOR = SupervisorCounters()
    _SYSTEM = SystemCounters()
    _TRANSPORT = TransportCounters()


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def summarize() -> Dict[str, object]:
    """Aggregate the records: counts by source, wall time by worker."""
    by_source: Dict[str, int] = {}
    wall_by_worker: Dict[str, float] = {}
    sim_wall = 0.0
    trace_wall = 0.0
    for record in _RECORDS:
        tag = f"{record.kind}:{record.source}"
        by_source[tag] = by_source.get(tag, 0) + 1
        wall_by_worker[record.worker] = (
            wall_by_worker.get(record.worker, 0.0) + record.wall_s
        )
        if record.kind == "sim":
            sim_wall += record.wall_s
        else:
            trace_wall += record.wall_s
    return {
        "records": len(_RECORDS),
        "by_source": dict(sorted(by_source.items())),
        "wall_by_worker": {
            worker: round(seconds, 3)
            for worker, seconds in sorted(wall_by_worker.items())
        },
        "sim_wall_s": round(sim_wall, 3),
        "trace_wall_s": round(trace_wall, 3),
    }


def metrics_snapshot() -> Dict[str, object]:
    """Everything ``--metrics-out`` writes: cache counters (session and
    lifetime), the per-variant records and their summary, the telemetry
    registry (:mod:`repro.obs.telemetry` — empty unless enabled), and
    the system accounting of any multi-core runs this process made.

    Schema 4 added ``telemetry`` and ``system``; schema 5 adds
    ``transport`` (http fleet health)."""
    from repro.harness import cache as disk_cache
    from repro.obs import telemetry
    from repro.uarch.kernel import resolve_backend

    return {
        "schema": 5,
        "kernel_backend": resolve_backend(None),
        "cache_session": disk_cache.cache_counters().as_dict(),
        "cache_lifetime": disk_cache.lifetime_cache_counters(),
        "supervisor": _SUPERVISOR.as_dict(),
        "transport": _TRANSPORT.as_dict(),
        "system": _SYSTEM.as_dict(),
        "telemetry": telemetry.snapshot(),
        "summary": summarize(),
        "variants": [asdict(record) for record in _RECORDS],
    }


def write_metrics(path: Union[str, Path]) -> Path:
    """Write :func:`metrics_snapshot` as JSON to *path*."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(metrics_snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_metrics_line() -> Optional[str]:
    """One human-readable accounting line, or ``None`` with nothing to say."""
    from repro.harness import cache as disk_cache

    from repro.uarch.kernel import resolve_backend

    counters = disk_cache.cache_counters()
    summary = summarize()
    if not _RECORDS and not counters.total():
        return None
    parts = [f"kernel={resolve_backend(None)}"]
    if summary["records"]:
        by_source = summary["by_source"]
        sims = {
            key.split(":", 1)[1]: value
            for key, value in by_source.items()
            if key.startswith("sim:")
        }
        if sims:
            detail = ", ".join(f"{count} {source}" for source, count in sims.items())
            parts.append(f"{sum(sims.values())} variants ({detail})")
        workers = [w for w in summary["wall_by_worker"] if w != "main"]
        wall = summary["sim_wall_s"] + summary["trace_wall_s"]
        if workers:
            parts.append(f"{wall:.2f}s across {len(workers) + 1} workers")
        elif wall >= 0.005:
            parts.append(f"{wall:.2f}s")
    parts.append(
        f"cache {counters.hits()} hits / {counters.misses()} misses"
        + (
            f" / {counters.corrupt_dropped} corrupt dropped"
            if counters.corrupt_dropped
            else ""
        )
    )
    if _SYSTEM.runs:
        parts.append(
            f"{_SYSTEM.runs} system cells (<= {_SYSTEM.cores_max} cores, "
            f"{_SYSTEM.conflict_aborts} aborts)"
        )
    if _SUPERVISOR.any_recovery():
        recovery = ", ".join(
            f"{value} {key}"
            for key, value in _SUPERVISOR.as_dict().items()
            if value and key not in ("campaigns", "jobs")
        )
        parts.append(f"supervisor recovered [{recovery}]")
    if _TRANSPORT.any_activity():
        health = ", ".join(
            f"{value} {key}"
            for key, value in _TRANSPORT.as_dict().items()
            if value
        )
        parts.append(f"transport [{health}]")
    return "harness: " + ", ".join(parts)
