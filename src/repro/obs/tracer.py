"""Span/instant/counter tracing primitives.

The pipeline model emits three kinds of events when (and only when) it
was constructed with a tracer:

* **spans** — an interval ``[start, end)`` in simulated cycles: an
  sfence drain, a pcommit lifetime (issue → acknowledgement), a
  speculative epoch (checkpoint → commit/rollback), or a stall;
* **instants** — a point event: speculation entry, rollback;
* **counters** — a sampled value over time: WPQ and SSB occupancy.

The hot check in the pipeline is ``self._tracer is None`` — the
*absence* of a tracer keeps the segment-walker fast path untouched.
:class:`NullTracer` exists for call sites that require a ``Tracer``
object; note that handing one to :class:`~repro.uarch.pipeline.
PipelineModel` still routes the run through the exact per-op loop
(the model only distinguishes ``None`` from not-``None``), so to keep
the fast path pass ``tracer=None``, not a ``NullTracer``.

Timestamps are simulated core cycles throughout.  All events end up in
one in-memory list; a full B-tree SP run emits on the order of 10^5
events, so :class:`TraceEvent` is a ``__slots__`` class and adjacent
``fetch_stall`` spans (the one per-instruction-rate emitter) are
coalesced on the fly, which preserves total stall cycles exactly
because successive fetch-stall intervals never overlap (the front end's
``last_fetch`` floor is monotone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

try:  # Python < 3.8 has no typing.Protocol; degrade gracefully
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

#: Span names whose adjacent emissions are merged into one event when
#: contiguous (``new.start == last.end``) and argument-free.  Only the
#: high-cardinality fetch-stall spans qualify; every other span's
#: *count* is meaningful (cross-checked against RunStats counters).
COALESCED_SPANS = frozenset({"fetch_stall"})


class TraceEvent:
    """One trace event.  ``kind`` is ``"span"``, ``"instant"``, or
    ``"counter"``; spans carry ``dur``, counters carry ``value``."""

    __slots__ = ("kind", "name", "cat", "ts", "dur", "value", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        ts: int,
        cat: str = "",
        dur: int = 0,
        value: float = 0,
        args: Optional[dict] = None,
    ):
        self.kind = kind
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.value = value
        self.args = args

    @property
    def end(self) -> int:
        return self.ts + self.dur

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "span":
            return f"<span {self.name} [{self.ts}, {self.end})>"
        if self.kind == "counter":
            return f"<counter {self.name} @{self.ts} = {self.value}>"
        return f"<instant {self.name} @{self.ts}>"


class Tracer(Protocol):
    """What the pipeline expects from a tracer (structural protocol)."""

    def span(self, name: str, start: int, end: int, cat: str = "", **args) -> None:
        ...  # pragma: no cover - protocol

    def instant(self, name: str, ts: int, cat: str = "", **args) -> None:
        ...  # pragma: no cover - protocol

    def counter(self, name: str, ts: int, value: float) -> None:
        ...  # pragma: no cover - protocol


class NullTracer:
    """A tracer that drops everything (for APIs that require a tracer).

    Handing this to :class:`~repro.uarch.pipeline.PipelineModel` still
    deoptimises the run to the exact per-op loop — pass ``tracer=None``
    to keep the segment-walker fast path.
    """

    def span(self, name: str, start: int, end: int, cat: str = "", **args) -> None:
        pass

    def instant(self, name: str, ts: int, cat: str = "", **args) -> None:
        pass

    def counter(self, name: str, ts: int, value: float) -> None:
        pass


class SpanTracer:
    """Collects every emitted event in memory, with query helpers."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        #: last coalescible span per name (see :data:`COALESCED_SPANS`)
        self._open_tail: Dict[str, TraceEvent] = {}

    # ------------------------------------------------------------------
    # emission (the Tracer protocol)
    # ------------------------------------------------------------------
    def span(self, name: str, start: int, end: int, cat: str = "", **args) -> None:
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: [{start}, {end})")
        if not args and name in COALESCED_SPANS:
            tail = self._open_tail.get(name)
            if tail is not None and tail.end == start:
                tail.dur += end - start
                return
            event = TraceEvent("span", name, start, cat=cat, dur=end - start)
            self._open_tail[name] = event
            self.events.append(event)
            return
        self.events.append(
            TraceEvent("span", name, start, cat=cat, dur=end - start, args=args or None)
        )

    def instant(self, name: str, ts: int, cat: str = "", **args) -> None:
        self.events.append(TraceEvent("instant", name, ts, cat=cat, args=args or None))

    def counter(self, name: str, ts: int, value: float) -> None:
        self.events.append(TraceEvent("counter", name, ts, cat="counter", value=value))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def _iter(self, kind: str, name: Optional[str]) -> Iterator[TraceEvent]:
        for event in self.events:
            if event.kind == kind and (name is None or event.name == name):
                yield event

    def spans(self, name: Optional[str] = None) -> List[TraceEvent]:
        return list(self._iter("span", name))

    def instants(self, name: Optional[str] = None) -> List[TraceEvent]:
        return list(self._iter("instant", name))

    def counters(self, name: Optional[str] = None) -> List[TraceEvent]:
        return list(self._iter("counter", name))

    def span_count(self, name: str) -> int:
        return sum(1 for _ in self._iter("span", name))

    def span_cycles(self, name: str) -> int:
        """Total duration over all spans named *name* (overlap counted
        multiply — use :mod:`repro.obs.attribution` for wall-clock)."""
        return sum(event.dur for event in self._iter("span", name))

    def intervals(self, name: str) -> List[Tuple[int, int]]:
        """The ``(start, end)`` pairs of every span named *name*."""
        return [(event.ts, event.end) for event in self._iter("span", name)]


# ----------------------------------------------------------------------
# multi-core tracing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConflictRecord:
    """One cross-core conflict: a remote store that hit a speculating
    core's BLT and forced a rollback.

    Timestamps are *per-core* retire clocks: ``broadcast_ts`` is the
    aggressor's clock when the store became globally visible (drain for
    non-speculative stores, epoch commit for speculative ones),
    ``abort_ts`` the victim's clock at rollback.  The Perfetto exporter
    renders each record as a flow arrow from the aggressor's broadcast
    to the victim's ``conflict_abort`` span.
    """

    aggressor: int      #: core whose store became visible
    victim: int         #: core whose speculation was aborted
    block: int          #: the conflicting cache-block address
    broadcast_ts: int   #: aggressor retire clock at global visibility
    abort_ts: int       #: victim retire clock at rollback
    abort_cycles: int   #: pipeline-refill penalty billed to the victim
    replayed: int       #: micro-ops the victim rewinds and re-executes


class SystemTracer:
    """One :class:`SpanTracer` per core plus system-level conflict
    provenance, for :class:`~repro.uarch.system.SystemModel`.

    Hand the whole object to ``SystemModel(config, n_cores,
    system_tracer=...)``: each core's pipeline emits its spans into
    ``cores[i]`` (forcing that core's exact per-op loop), and the
    driver records one :class:`ConflictRecord` per conflict abort with
    the aggressor→victim attribution only the driver can see.  As with
    the single-core seam, ``system_tracer=None`` keeps every core on
    the fast path and the run byte-identical to an untraced one.
    """

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.cores: List[SpanTracer] = [SpanTracer() for _ in range(n_cores)]
        self.conflicts: List[ConflictRecord] = []

    def record_conflict(
        self,
        aggressor: int,
        victim: int,
        block: int,
        broadcast_ts: int,
        abort_ts: int,
        abort_cycles: int,
        replayed: int,
    ) -> None:
        self.conflicts.append(ConflictRecord(
            aggressor=aggressor, victim=victim, block=block,
            broadcast_ts=broadcast_ts, abort_ts=abort_ts,
            abort_cycles=abort_cycles, replayed=replayed,
        ))

    def conflict_pairs(self) -> Dict[Tuple[int, int], int]:
        """Abort counts keyed ``(aggressor, victim)``."""
        pairs: Dict[Tuple[int, int], int] = {}
        for record in self.conflicts:
            key = (record.aggressor, record.victim)
            pairs[key] = pairs.get(key, 0) + 1
        return pairs
