"""Stall attribution: decompose ``stats.cycles`` into disjoint buckets.

The run's raw stall *counters* (``sfence_stall_cycles``,
``fetch_stall_cycles``, ...) measure each mechanism in isolation and
deliberately over-count wall-clock: a fence waiting out a WPQ drain
backpressures the ROB and the fetch queue, so the same wall-clock cycle
is often billed to both the sfence counter and the fetch-stall counter
(on eager log+p+sf runs their sum exceeds ``cycles`` several times
over).  That is the right design for the paper's per-mechanism figures,
but useless for answering "where did this run's cycles actually go".

This module answers that question from the traced stall *spans* instead:
each span is a wall-clock interval, so attributing every cycle in
``[0, cycles)`` to exactly one bucket is interval arithmetic —

1. clip all stall spans to ``[0, cycles)``;
2. walk the buckets in priority order (``sfence_drain`` >
   ``checkpoint_stall`` > ``ssb_full_stall`` > ``fetch_stall``: the
   deeper persistency cause wins a contested cycle, since the front-end
   stall is a *symptom* of the back-pressure the fence created);
3. each bucket owns the union of its intervals minus everything a
   higher-priority bucket already claimed;
4. ``compute`` is the residue.

By construction the buckets are disjoint, non-negative, and sum to
``stats.cycles`` exactly — :func:`attribution_errors` asserts it, and
the conformance engine runs that assertion over the whole
workload×mode×config matrix (``python -m repro validate --quick``).

:func:`consistency_errors` is the companion cross-check in the other
direction: traced span counts/durations must agree with the RunStats
counters (e.g. pcommit spans == ``stats.pcommits``), so the tracer can
never silently drop or invent events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.stats.run import RunStats

#: Stall buckets in claim-priority order; ``compute`` is the residue.
ATTRIBUTION_BUCKETS = (
    "conflict_abort",
    "sfence_drain",
    "checkpoint_stall",
    "ssb_full_stall",
    "fetch_stall",
)

#: (span durations summed, RunStats counter) pairs that must agree.
_SPAN_CYCLE_COUNTERS = (
    ("conflict_abort", "conflict_abort_cycles"),
    ("sfence_drain", "sfence_stall_cycles"),
    ("checkpoint_stall", "checkpoint_stall_cycles"),
    ("ssb_full_stall", "ssb_full_stall_cycles"),
    ("fetch_stall", "fetch_stall_cycles"),
)

Interval = Tuple[int, int]


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Sorted disjoint union of *intervals* (empty intervals dropped)."""
    live = sorted(pair for pair in intervals if pair[1] > pair[0])
    merged: List[Interval] = []
    for start, end in live:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(
    intervals: List[Interval], covered: List[Interval]
) -> List[Interval]:
    """*intervals* minus *covered*; both must be sorted and disjoint."""
    result: List[Interval] = []
    ci = 0
    n_covered = len(covered)
    for start, end in intervals:
        cursor = start
        while ci < n_covered and covered[ci][1] <= cursor:
            ci += 1
        scan = ci
        while cursor < end and scan < n_covered and covered[scan][0] < end:
            c_start, c_end = covered[scan]
            if c_start > cursor:
                result.append((cursor, c_start))
            cursor = max(cursor, c_end)
            scan += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def _clip(intervals: List[Interval], cycles: int) -> List[Interval]:
    return [
        (max(0, start), min(end, cycles))
        for start, end in intervals
        if start < cycles and end > 0
    ]


@dataclass
class AttributionReport:
    """Where one run's cycles went, bucket-disjoint."""

    cycles: int
    buckets: Dict[str, int] = field(default_factory=dict)

    @property
    def compute(self) -> int:
        return self.buckets.get("compute", 0)

    def total(self) -> int:
        return sum(self.buckets.values())

    def as_dict(self) -> Dict[str, int]:
        return {"cycles": self.cycles, **self.buckets}

    def render(self) -> str:
        lines = [f"stall attribution ({self.cycles:,} cycles)"]
        for name in ("compute",) + ATTRIBUTION_BUCKETS:
            value = self.buckets.get(name, 0)
            share = value / self.cycles if self.cycles else 0.0
            lines.append(f"  {name:<17}: {value:>12,}  ({share:6.1%})")
        return "\n".join(lines)


def attribute(stats: RunStats, tracer) -> AttributionReport:
    """Decompose *stats.cycles* using *tracer*'s stall spans.

    *tracer* is a :class:`~repro.obs.tracer.SpanTracer` (anything with
    an ``intervals(name)`` method works).
    """
    cycles = stats.cycles
    report = AttributionReport(cycles=cycles)
    covered: List[Interval] = []
    for name in ATTRIBUTION_BUCKETS:
        own = subtract_intervals(
            merge_intervals(_clip(tracer.intervals(name), cycles)), covered
        )
        report.buckets[name] = sum(end - start for start, end in own)
        covered = merge_intervals(covered + own)
    report.buckets["compute"] = cycles - sum(
        end - start for start, end in covered
    )
    return report


def attribution_errors(stats: RunStats, tracer) -> List[str]:
    """Violations of the attribution invariants (empty when healthy).

    Checks that every stall span is well-formed and lies within the
    billed execution window ``[0, stats.cycles]`` (epoch/pcommit spans
    may legitimately outlive ``cycles`` — background commit is not
    billed — but a *stall* charged after the last retirement would mean
    the pipeline accounted a wait it never served), and that the bucket
    decomposition sums exactly to ``cycles`` with no negative residue.
    """
    errors: List[str] = []
    for name in ATTRIBUTION_BUCKETS:
        for start, end in tracer.intervals(name):
            if end < start:
                errors.append(f"{name} span [{start}, {end}) has negative duration")
            if start < 0 or end > stats.cycles:
                errors.append(
                    f"{name} span [{start}, {end}) outside [0, {stats.cycles}]"
                )
    report = attribute(stats, tracer)
    if report.buckets.get("compute", 0) < 0:
        errors.append(f"negative compute residue: {report.buckets['compute']}")
    if report.total() != stats.cycles:
        errors.append(
            f"buckets sum to {report.total()}, not cycles={stats.cycles}"
        )
    return errors


# ----------------------------------------------------------------------
# cross-core attribution (multi-core SystemModel runs)
# ----------------------------------------------------------------------

#: Buckets that bill a core's *own* persistence machinery (as opposed
#: to ``conflict_abort``, which bills cross-core interference, and
#: ``fetch_stall``, a front-end symptom).
_PRIVATE_PERSISTENCE_BUCKETS = (
    "sfence_drain", "checkpoint_stall", "ssb_full_stall",
)


@dataclass
class SystemAttributionReport:
    """Where every core's cycles went, plus the system contention story.

    ``per_core[i]`` is core *i*'s :class:`AttributionReport` — disjoint
    buckets summing exactly to that core's ``stats.cycles``.  The
    contention section attributes cross-core damage: abort counts and
    billed refill cycles by ``aggressor->victim`` pair, the speculative
    work thrown away and re-executed, and the split of each core's
    persistence stalls between *interference* (``conflict_abort`` —
    another core's store killed our speculation) and *private* drain
    (our own fences/checkpoints/SSB waiting out the NVMM).
    """

    per_core: List[AttributionReport] = field(default_factory=list)
    conflict_aborts: int = 0
    aborts_by_pair: Dict[str, int] = field(default_factory=dict)
    abort_cycles_by_pair: Dict[str, int] = field(default_factory=dict)
    replayed_instructions: int = 0
    store_broadcasts: int = 0
    conflict_probes: int = 0

    @property
    def interference_cycles(self) -> int:
        """Cycles billed to cross-core conflict aborts, all cores."""
        return sum(
            report.buckets.get("conflict_abort", 0) for report in self.per_core
        )

    @property
    def private_drain_cycles(self) -> int:
        """Cycles billed to each core's own persistence machinery."""
        return sum(
            report.buckets.get(name, 0)
            for report in self.per_core
            for name in _PRIVATE_PERSISTENCE_BUCKETS
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "per_core": [report.as_dict() for report in self.per_core],
            "conflict_aborts": self.conflict_aborts,
            "aborts_by_pair": dict(self.aborts_by_pair),
            "abort_cycles_by_pair": dict(self.abort_cycles_by_pair),
            "replayed_instructions": self.replayed_instructions,
            "store_broadcasts": self.store_broadcasts,
            "conflict_probes": self.conflict_probes,
            "interference_cycles": self.interference_cycles,
            "private_drain_cycles": self.private_drain_cycles,
        }

    def render(self) -> str:
        lines: List[str] = []
        for index, report in enumerate(self.per_core):
            lines.append(f"core {index} " + report.render())
        lines.append(
            f"contention: {self.conflict_aborts} conflict aborts, "
            f"{self.replayed_instructions:,} instructions replayed, "
            f"{self.store_broadcasts} store broadcasts, "
            f"{self.conflict_probes} BLT probes"
        )
        for pair in sorted(self.aborts_by_pair):
            lines.append(
                f"  {pair:<8}: {self.aborts_by_pair[pair]} aborts, "
                f"{self.abort_cycles_by_pair.get(pair, 0):,} refill cycles"
            )
        persistence = self.interference_cycles + self.private_drain_cycles
        if persistence:
            share = self.interference_cycles / persistence
            lines.append(
                f"persistence stall split: {self.interference_cycles:,} "
                f"interference vs {self.private_drain_cycles:,} private "
                f"drain ({share:.1%} cross-core)"
            )
        return "\n".join(lines)


def attribute_system(result, system_tracer) -> SystemAttributionReport:
    """Decompose a :class:`~repro.uarch.system.SystemResult` core by
    core, and aggregate its conflict records into the contention report.

    *system_tracer* is the :class:`~repro.obs.tracer.SystemTracer` the
    run was traced with; each core's buckets come from
    :func:`attribute` over that core's spans, so they inherit the
    sums-to-cycles guarantee per core.
    """
    report = SystemAttributionReport(
        per_core=[
            attribute(stats, tracer)
            for stats, tracer in zip(result.per_core, system_tracer.cores)
        ],
        conflict_aborts=result.conflict_aborts,
        replayed_instructions=result.replayed_instructions,
        store_broadcasts=result.store_broadcasts,
        conflict_probes=result.conflict_probes,
    )
    for record in system_tracer.conflicts:
        pair = f"{record.aggressor}->{record.victim}"
        report.aborts_by_pair[pair] = report.aborts_by_pair.get(pair, 0) + 1
        report.abort_cycles_by_pair[pair] = (
            report.abort_cycles_by_pair.get(pair, 0) + record.abort_cycles
        )
    return report


def system_attribution_errors(result, system_tracer) -> List[str]:
    """Violations of the system attribution invariants (empty = healthy).

    Per core: the single-core attribution and span/counter consistency
    checks.  System-wide: the driver's conflict records must agree with
    the result counters — one record per abort, replayed totals equal,
    and every record's billed cycles showing up in its victim's
    ``conflict_abort_cycles``.
    """
    errors: List[str] = []
    for index, (stats, tracer) in enumerate(
        zip(result.per_core, system_tracer.cores)
    ):
        errors.extend(
            f"core {index}: {error}"
            for error in attribution_errors(stats, tracer)
            + consistency_errors(stats, tracer)
        )
    conflicts = system_tracer.conflicts
    if len(conflicts) != result.conflict_aborts:
        errors.append(
            f"{len(conflicts)} conflict records but "
            f"{result.conflict_aborts} conflict aborts"
        )
    replayed = sum(record.replayed for record in conflicts)
    if replayed != result.replayed_instructions:
        errors.append(
            f"conflict records replay {replayed} instructions but the "
            f"driver counted {result.replayed_instructions}"
        )
    for victim in range(len(result.per_core)):
        billed = sum(
            record.abort_cycles for record in conflicts
            if record.victim == victim
        )
        counted = result.per_core[victim].conflict_abort_cycles
        if billed != counted:
            errors.append(
                f"core {victim}: conflict records bill {billed} abort "
                f"cycles but stats.conflict_abort_cycles == {counted}"
            )
    return errors


def consistency_errors(stats: RunStats, tracer) -> List[str]:
    """Span-set vs RunStats-counter disagreements (empty when healthy).

    Valid for *finished* runs only (``run(trace, finish=True)``): a
    paused run may hold open epochs whose spans are not emitted yet.
    """
    errors: List[str] = []
    for span_name, counter in _SPAN_CYCLE_COUNTERS:
        traced = tracer.span_cycles(span_name)
        counted = getattr(stats, counter)
        if traced != counted:
            errors.append(
                f"{span_name} spans total {traced} cycles but "
                f"stats.{counter} == {counted}"
            )
    for span_name, counter in (("pcommit", "pcommits"), ("epoch", "epochs_created")):
        n_spans = tracer.span_count(span_name)
        counted = getattr(stats, counter)
        if n_spans != counted:
            errors.append(
                f"{n_spans} {span_name} spans but stats.{counter} == {counted}"
            )
    for instant_name, counter in (("sp_enter", "sp_entries"), ("rollback", "rollbacks")):
        n_instants = len(tracer.instants(instant_name))
        counted = getattr(stats, counter)
        if n_instants != counted:
            errors.append(
                f"{n_instants} {instant_name} instants but "
                f"stats.{counter} == {counted}"
            )
    return errors
