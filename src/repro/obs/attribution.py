"""Stall attribution: decompose ``stats.cycles`` into disjoint buckets.

The run's raw stall *counters* (``sfence_stall_cycles``,
``fetch_stall_cycles``, ...) measure each mechanism in isolation and
deliberately over-count wall-clock: a fence waiting out a WPQ drain
backpressures the ROB and the fetch queue, so the same wall-clock cycle
is often billed to both the sfence counter and the fetch-stall counter
(on eager log+p+sf runs their sum exceeds ``cycles`` several times
over).  That is the right design for the paper's per-mechanism figures,
but useless for answering "where did this run's cycles actually go".

This module answers that question from the traced stall *spans* instead:
each span is a wall-clock interval, so attributing every cycle in
``[0, cycles)`` to exactly one bucket is interval arithmetic —

1. clip all stall spans to ``[0, cycles)``;
2. walk the buckets in priority order (``sfence_drain`` >
   ``checkpoint_stall`` > ``ssb_full_stall`` > ``fetch_stall``: the
   deeper persistency cause wins a contested cycle, since the front-end
   stall is a *symptom* of the back-pressure the fence created);
3. each bucket owns the union of its intervals minus everything a
   higher-priority bucket already claimed;
4. ``compute`` is the residue.

By construction the buckets are disjoint, non-negative, and sum to
``stats.cycles`` exactly — :func:`attribution_errors` asserts it, and
the conformance engine runs that assertion over the whole
workload×mode×config matrix (``python -m repro validate --quick``).

:func:`consistency_errors` is the companion cross-check in the other
direction: traced span counts/durations must agree with the RunStats
counters (e.g. pcommit spans == ``stats.pcommits``), so the tracer can
never silently drop or invent events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.stats.run import RunStats

#: Stall buckets in claim-priority order; ``compute`` is the residue.
ATTRIBUTION_BUCKETS = (
    "conflict_abort",
    "sfence_drain",
    "checkpoint_stall",
    "ssb_full_stall",
    "fetch_stall",
)

#: (span durations summed, RunStats counter) pairs that must agree.
_SPAN_CYCLE_COUNTERS = (
    ("conflict_abort", "conflict_abort_cycles"),
    ("sfence_drain", "sfence_stall_cycles"),
    ("checkpoint_stall", "checkpoint_stall_cycles"),
    ("ssb_full_stall", "ssb_full_stall_cycles"),
    ("fetch_stall", "fetch_stall_cycles"),
)

Interval = Tuple[int, int]


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Sorted disjoint union of *intervals* (empty intervals dropped)."""
    live = sorted(pair for pair in intervals if pair[1] > pair[0])
    merged: List[Interval] = []
    for start, end in live:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(
    intervals: List[Interval], covered: List[Interval]
) -> List[Interval]:
    """*intervals* minus *covered*; both must be sorted and disjoint."""
    result: List[Interval] = []
    ci = 0
    n_covered = len(covered)
    for start, end in intervals:
        cursor = start
        while ci < n_covered and covered[ci][1] <= cursor:
            ci += 1
        scan = ci
        while cursor < end and scan < n_covered and covered[scan][0] < end:
            c_start, c_end = covered[scan]
            if c_start > cursor:
                result.append((cursor, c_start))
            cursor = max(cursor, c_end)
            scan += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def _clip(intervals: List[Interval], cycles: int) -> List[Interval]:
    return [
        (max(0, start), min(end, cycles))
        for start, end in intervals
        if start < cycles and end > 0
    ]


@dataclass
class AttributionReport:
    """Where one run's cycles went, bucket-disjoint."""

    cycles: int
    buckets: Dict[str, int] = field(default_factory=dict)

    @property
    def compute(self) -> int:
        return self.buckets.get("compute", 0)

    def total(self) -> int:
        return sum(self.buckets.values())

    def as_dict(self) -> Dict[str, int]:
        return {"cycles": self.cycles, **self.buckets}

    def render(self) -> str:
        lines = [f"stall attribution ({self.cycles:,} cycles)"]
        for name in ("compute",) + ATTRIBUTION_BUCKETS:
            value = self.buckets.get(name, 0)
            share = value / self.cycles if self.cycles else 0.0
            lines.append(f"  {name:<17}: {value:>12,}  ({share:6.1%})")
        return "\n".join(lines)


def attribute(stats: RunStats, tracer) -> AttributionReport:
    """Decompose *stats.cycles* using *tracer*'s stall spans.

    *tracer* is a :class:`~repro.obs.tracer.SpanTracer` (anything with
    an ``intervals(name)`` method works).
    """
    cycles = stats.cycles
    report = AttributionReport(cycles=cycles)
    covered: List[Interval] = []
    for name in ATTRIBUTION_BUCKETS:
        own = subtract_intervals(
            merge_intervals(_clip(tracer.intervals(name), cycles)), covered
        )
        report.buckets[name] = sum(end - start for start, end in own)
        covered = merge_intervals(covered + own)
    report.buckets["compute"] = cycles - sum(
        end - start for start, end in covered
    )
    return report


def attribution_errors(stats: RunStats, tracer) -> List[str]:
    """Violations of the attribution invariants (empty when healthy).

    Checks that every stall span is well-formed and lies within the
    billed execution window ``[0, stats.cycles]`` (epoch/pcommit spans
    may legitimately outlive ``cycles`` — background commit is not
    billed — but a *stall* charged after the last retirement would mean
    the pipeline accounted a wait it never served), and that the bucket
    decomposition sums exactly to ``cycles`` with no negative residue.
    """
    errors: List[str] = []
    for name in ATTRIBUTION_BUCKETS:
        for start, end in tracer.intervals(name):
            if end < start:
                errors.append(f"{name} span [{start}, {end}) has negative duration")
            if start < 0 or end > stats.cycles:
                errors.append(
                    f"{name} span [{start}, {end}) outside [0, {stats.cycles}]"
                )
    report = attribute(stats, tracer)
    if report.buckets.get("compute", 0) < 0:
        errors.append(f"negative compute residue: {report.buckets['compute']}")
    if report.total() != stats.cycles:
        errors.append(
            f"buckets sum to {report.total()}, not cycles={stats.cycles}"
        )
    return errors


def consistency_errors(stats: RunStats, tracer) -> List[str]:
    """Span-set vs RunStats-counter disagreements (empty when healthy).

    Valid for *finished* runs only (``run(trace, finish=True)``): a
    paused run may hold open epochs whose spans are not emitted yet.
    """
    errors: List[str] = []
    for span_name, counter in _SPAN_CYCLE_COUNTERS:
        traced = tracer.span_cycles(span_name)
        counted = getattr(stats, counter)
        if traced != counted:
            errors.append(
                f"{span_name} spans total {traced} cycles but "
                f"stats.{counter} == {counted}"
            )
    for span_name, counter in (("pcommit", "pcommits"), ("epoch", "epochs_created")):
        n_spans = tracer.span_count(span_name)
        counted = getattr(stats, counter)
        if n_spans != counted:
            errors.append(
                f"{n_spans} {span_name} spans but stats.{counter} == {counted}"
            )
    for instant_name, counter in (("sp_enter", "sp_entries"), ("rollback", "rollbacks")):
        n_instants = len(tracer.instants(instant_name))
        counted = getattr(stats, counter)
        if n_instants != counted:
            errors.append(
                f"{n_instants} {instant_name} instants but "
                f"stats.{counter} == {counted}"
            )
    return errors
