"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

One :class:`~repro.obs.tracer.SpanTracer` becomes one *JSON object
format* trace: span events map to complete (``"ph": "X"``) events,
instants to ``"i"``, counters to ``"C"``, and the event categories map
to named pseudo-threads so Perfetto renders pipeline activity,
stalls, pcommits, and speculation epochs as separate tracks.

Timestamps are simulated core cycles passed through as microseconds
(the trace-event ``ts`` unit) — in Perfetto, read "1 µs" as "1 cycle".

:func:`validate_chrome_trace` is a minimal, dependency-free schema
check over the emitted JSON; CI runs it against the ``python -m repro
trace`` artifact so a malformed export fails the build rather than
failing silently in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Event category -> trace-event thread id (rendered as tracks).
_TRACKS: Dict[str, int] = {
    "": 0,
    "pipeline": 0,
    "stall": 1,
    "pmem": 2,
    "speculation": 3,
}
_TRACK_NAMES = {0: "pipeline", 1: "stalls", 2: "pmem", 3: "speculation"}

#: Phases the validator accepts (the subset this exporter emits, plus
#: the begin/end pair so hand-edited traces still validate).
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})


class ChromeTraceError(ValueError):
    """The JSON is not a loadable Chrome trace-event stream."""


def chrome_trace_events(tracer, pid: int = 0) -> List[dict]:
    """Convert *tracer*'s events into trace-event dicts."""
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro pipeline"},
        }
    ]
    for tid, name in sorted(_TRACK_NAMES.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for event in tracer.events:
        tid = _TRACKS.get(event.cat, 0)
        if event.kind == "span":
            record = {
                "ph": "X",
                "name": event.name,
                "cat": event.cat or "pipeline",
                "ts": event.ts,
                "dur": event.dur,
                "pid": pid,
                "tid": tid,
            }
        elif event.kind == "instant":
            record = {
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.cat or "pipeline",
                "ts": event.ts,
                "pid": pid,
                "tid": tid,
            }
        else:  # counter
            record = {
                "ph": "C",
                "name": event.name,
                "ts": event.ts,
                "pid": pid,
                "args": {"value": event.value},
            }
        if event.kind != "counter" and event.args:
            record["args"] = dict(event.args)
        events.append(record)
    return events


def write_chrome_trace(
    path: Union[str, Path],
    tracer,
    stats=None,
    meta: Optional[dict] = None,
    pid: int = 0,
) -> Path:
    """Serialise *tracer* (plus optional run metadata) to *path*."""
    other: dict = dict(meta or {})
    if stats is not None:
        other["run_stats"] = stats.as_dict()
    payload = {
        "traceEvents": chrome_trace_events(tracer, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# validation (no external dependencies — CI runs this)
# ----------------------------------------------------------------------
def _check_event(index: int, event) -> None:
    if not isinstance(event, dict):
        raise ChromeTraceError(f"event {index} is not an object")
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
        raise ChromeTraceError(f"event {index} has unknown phase {phase!r}")
    if phase != "M":
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise ChromeTraceError(f"event {index} has bad ts {ts!r}")
    if not isinstance(event.get("name"), str) or not event["name"]:
        raise ChromeTraceError(f"event {index} has no name")
    for field in ("pid", "tid"):
        if field in event and (
            not isinstance(event[field], int) or isinstance(event[field], bool)
        ):
            raise ChromeTraceError(f"event {index} has non-integer {field}")
    if phase == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ChromeTraceError(f"event {index} ('X') has bad dur {dur!r}")
    if phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            raise ChromeTraceError(f"event {index} ('C') has no args")
        for key, value in args.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ChromeTraceError(
                    f"event {index} ('C') arg {key!r} is not numeric"
                )


def validate_chrome_trace(source: Union[str, Path, dict]) -> int:
    """Validate a Chrome trace-event JSON file (or parsed object).

    Returns the number of trace events; raises :class:`ChromeTraceError`
    on the first violation.  Deliberately minimal: checks exactly what
    Perfetto's JSON importer relies on (object format, event list,
    known phases, numeric non-negative timestamps/durations, named
    events, integral pid/tid, numeric counter args).
    """
    if isinstance(source, dict):
        payload = source
    else:
        try:
            with open(source, "r") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ChromeTraceError(f"unreadable trace JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ChromeTraceError("top level is not an object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ChromeTraceError("missing traceEvents list")
    if not events:
        raise ChromeTraceError("traceEvents is empty")
    for index, event in enumerate(events):
        _check_event(index, event)
    return len(events)
