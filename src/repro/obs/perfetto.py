"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

One :class:`~repro.obs.tracer.SpanTracer` becomes one *JSON object
format* trace: span events map to complete (``"ph": "X"``) events,
instants to ``"i"``, counters to ``"C"``, and the event categories map
to named pseudo-threads so Perfetto renders pipeline activity,
stalls, pcommits, and speculation epochs as separate tracks.

A :class:`~repro.obs.tracer.SystemTracer` becomes one *system* trace:
each core is its own process (pid ``1..N``, four tracks apiece), and a
synthetic **persistence domain** process (pid 0) carries the shared
NVMM side of the run — per-core WPQ occupancy counters, drain windows,
and pcommit lifetimes re-emitted side by side so cross-core overlap in
the shared domain is visible on one screen.  Every
:class:`~repro.obs.tracer.ConflictRecord` is rendered as a **flow
arrow** (``"s"``/``"f"`` flow events) from the aggressor's
``store_visible`` instant on its pmem track to the victim's
``conflict_abort`` span on its stalls track.

Timestamps are simulated core cycles passed through as microseconds
(the trace-event ``ts`` unit) — in Perfetto, read "1 µs" as "1 cycle".

:func:`validate_chrome_trace` is a minimal, dependency-free schema
check over the emitted JSON; CI runs it against the ``python -m repro
trace`` artifact so a malformed export fails the build rather than
failing silently in the viewer.  It also enforces the system-trace
invariants: unique process/track names per (pid, tid) and paired flow
events (every flow id has exactly one start and one finish).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Event category -> trace-event thread id (rendered as tracks).
_TRACKS: Dict[str, int] = {
    "": 0,
    "pipeline": 0,
    "stall": 1,
    "pmem": 2,
    "speculation": 3,
}
_TRACK_NAMES = {0: "pipeline", 1: "stalls", 2: "pmem", 3: "speculation"}

#: Phases the validator accepts (the subset this exporter emits, plus
#: the begin/end pair so hand-edited traces still validate).
#: ``s``/``t``/``f`` are flow start/step/finish — the conflict arrows.
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M", "s", "t", "f"})

#: The shared persistence-domain pseudo-process of a system export.
DOMAIN_PID = 0


class ChromeTraceError(ValueError):
    """The JSON is not a loadable Chrome trace-event stream."""


def chrome_trace_events(
    tracer, pid: int = 0, process_name: str = "repro pipeline"
) -> List[dict]:
    """Convert *tracer*'s events into trace-event dicts."""
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, name in sorted(_TRACK_NAMES.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for event in tracer.events:
        tid = _TRACKS.get(event.cat, 0)
        if event.kind == "span":
            record = {
                "ph": "X",
                "name": event.name,
                "cat": event.cat or "pipeline",
                "ts": event.ts,
                "dur": event.dur,
                "pid": pid,
                "tid": tid,
            }
        elif event.kind == "instant":
            record = {
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.cat or "pipeline",
                "ts": event.ts,
                "pid": pid,
                "tid": tid,
            }
        else:  # counter
            record = {
                "ph": "C",
                "name": event.name,
                "ts": event.ts,
                "pid": pid,
                "args": {"value": event.value},
            }
        if event.kind != "counter" and event.args:
            record["args"] = dict(event.args)
        events.append(record)
    return events


def write_chrome_trace(
    path: Union[str, Path],
    tracer,
    stats=None,
    meta: Optional[dict] = None,
    pid: int = 0,
) -> Path:
    """Serialise *tracer* (plus optional run metadata) to *path*."""
    other: dict = dict(meta or {})
    if stats is not None:
        other["run_stats"] = stats.as_dict()
    payload = {
        "traceEvents": chrome_trace_events(tracer, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# system (multi-core) export
# ----------------------------------------------------------------------
def chrome_system_trace_events(system_tracer) -> List[dict]:
    """Convert a :class:`~repro.obs.tracer.SystemTracer` into trace-event
    dicts: one process per core, one shared persistence-domain process,
    and one flow arrow per conflict record."""
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": DOMAIN_PID,
            "tid": 0,
            "args": {"name": "persistence domain"},
        }
    ]
    # ---- shared-domain tracks: one per core, side by side ------------
    for core_index in range(system_tracer.n_cores):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": DOMAIN_PID,
                "tid": core_index,
                "args": {"name": f"domain core{core_index}"},
            }
        )
    for core_index, tracer in enumerate(system_tracer.cores):
        for event in tracer.events:
            if event.kind == "counter" and event.name == "wpq_occupancy":
                events.append(
                    {
                        "ph": "C",
                        "name": f"wpq_occupancy/core{core_index}",
                        "ts": event.ts,
                        "pid": DOMAIN_PID,
                        "args": {"value": event.value},
                    }
                )
            elif event.kind == "span" and event.name in (
                "sfence_drain", "pcommit"
            ):
                name = (
                    "drain_window" if event.name == "sfence_drain" else "pcommit"
                )
                record = {
                    "ph": "X",
                    "name": name,
                    "cat": "domain",
                    "ts": event.ts,
                    "dur": event.dur,
                    "pid": DOMAIN_PID,
                    "tid": core_index,
                    "args": {"core": core_index, **(event.args or {})},
                }
                events.append(record)
    # ---- per-core processes ------------------------------------------
    for core_index, tracer in enumerate(system_tracer.cores):
        events.extend(
            chrome_trace_events(
                tracer, pid=core_index + 1, process_name=f"core {core_index}"
            )
        )
    # ---- conflict flow arrows (aggressor pmem -> victim stalls) ------
    for flow_id, record in enumerate(system_tracer.conflicts, start=1):
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": "store_visible",
                "cat": "pmem",
                "ts": record.broadcast_ts,
                "pid": record.aggressor + 1,
                "tid": _TRACKS["pmem"],
                "args": {"block": record.block, "victim": record.victim},
            }
        )
        events.append(
            {
                "ph": "s",
                "name": "conflict",
                "cat": "conflict",
                "id": flow_id,
                "ts": record.broadcast_ts,
                "pid": record.aggressor + 1,
                "tid": _TRACKS["pmem"],
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": "conflict",
                "cat": "conflict",
                "id": flow_id,
                "ts": record.abort_ts,
                "pid": record.victim + 1,
                "tid": _TRACKS["stall"],
            }
        )
    return events


def write_system_chrome_trace(
    path: Union[str, Path],
    system_tracer,
    per_core_stats=None,
    meta: Optional[dict] = None,
) -> Path:
    """Serialise a system trace (plus optional metadata) to *path*."""
    other: dict = dict(meta or {})
    if per_core_stats is not None:
        other["run_stats_per_core"] = [
            stats.as_dict() for stats in per_core_stats
        ]
    other["conflicts"] = [
        {
            "aggressor": record.aggressor,
            "victim": record.victim,
            "block": record.block,
            "broadcast_ts": record.broadcast_ts,
            "abort_ts": record.abort_ts,
            "abort_cycles": record.abort_cycles,
            "replayed": record.replayed,
        }
        for record in system_tracer.conflicts
    ]
    payload = {
        "traceEvents": chrome_system_trace_events(system_tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# validation (no external dependencies — CI runs this)
# ----------------------------------------------------------------------
def _check_event(index: int, event) -> None:
    if not isinstance(event, dict):
        raise ChromeTraceError(f"event {index} is not an object")
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
        raise ChromeTraceError(f"event {index} has unknown phase {phase!r}")
    if phase != "M":
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise ChromeTraceError(f"event {index} has bad ts {ts!r}")
    if not isinstance(event.get("name"), str) or not event["name"]:
        raise ChromeTraceError(f"event {index} has no name")
    for field in ("pid", "tid"):
        if field in event and (
            not isinstance(event[field], int) or isinstance(event[field], bool)
        ):
            raise ChromeTraceError(f"event {index} has non-integer {field}")
    if phase == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ChromeTraceError(f"event {index} ('X') has bad dur {dur!r}")
    if phase in ("s", "t", "f"):
        flow_id = event.get("id")
        if not isinstance(flow_id, (int, str)) or isinstance(flow_id, bool):
            raise ChromeTraceError(
                f"event {index} (flow {phase!r}) has bad id {flow_id!r}"
            )
    if phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            raise ChromeTraceError(f"event {index} ('C') has no args")
        for key, value in args.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ChromeTraceError(
                    f"event {index} ('C') arg {key!r} is not numeric"
                )


def validate_chrome_trace(source: Union[str, Path, dict]) -> int:
    """Validate a Chrome trace-event JSON file (or parsed object).

    Returns the number of trace events; raises :class:`ChromeTraceError`
    on the first violation.  Deliberately minimal: checks exactly what
    Perfetto's JSON importer relies on (object format, event list,
    known phases, numeric non-negative timestamps/durations, named
    events, integral pid/tid, numeric counter args).
    """
    if isinstance(source, dict):
        payload = source
    else:
        try:
            with open(source, "r") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ChromeTraceError(f"unreadable trace JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ChromeTraceError("top level is not an object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ChromeTraceError("missing traceEvents list")
    if not events:
        raise ChromeTraceError("traceEvents is empty")
    process_names: Dict[int, str] = {}
    track_names: Dict[tuple, str] = {}
    flow_starts: Dict[object, int] = {}
    flow_finishes: Dict[object, int] = {}
    for index, event in enumerate(events):
        _check_event(index, event)
        phase = event["ph"]
        if phase == "M" and isinstance(event.get("args"), dict):
            name = event["args"].get("name")
            if event.get("name") == "process_name" and isinstance(name, str):
                pid = event.get("pid", 0)
                if process_names.get(pid, name) != name:
                    raise ChromeTraceError(
                        f"event {index}: pid {pid} renamed from "
                        f"{process_names[pid]!r} to {name!r}"
                    )
                process_names[pid] = name
            if event.get("name") == "thread_name" and isinstance(name, str):
                key = (event.get("pid", 0), event.get("tid", 0))
                if track_names.get(key, name) != name:
                    raise ChromeTraceError(
                        f"event {index}: track {key} renamed from "
                        f"{track_names[key]!r} to {name!r}"
                    )
                track_names[key] = name
        elif phase == "s":
            flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
        elif phase == "f":
            flow_finishes[event["id"]] = flow_finishes.get(event["id"], 0) + 1
    duplicate_names = {}
    for (pid, _tid), name in track_names.items():
        duplicate_names.setdefault((pid, name), 0)
        duplicate_names[(pid, name)] += 1
    for (pid, name), count in duplicate_names.items():
        if count > 1:
            raise ChromeTraceError(
                f"pid {pid} has {count} tracks named {name!r}"
            )
    for flow_id, count in flow_starts.items():
        if count != 1 or flow_finishes.get(flow_id, 0) != 1:
            raise ChromeTraceError(
                f"flow {flow_id!r} has {count} starts and "
                f"{flow_finishes.get(flow_id, 0)} finishes (want 1/1)"
            )
    for flow_id in flow_finishes:
        if flow_id not in flow_starts:
            raise ChromeTraceError(f"flow {flow_id!r} finishes without a start")
    return len(events)


def summarize_chrome_trace(source: Union[str, Path, dict]) -> Dict[str, int]:
    """Validate *source* and return its shape: event, process, track,
    and flow-arrow counts.  The ``trace`` CLI and CI use this to assert
    a multi-core export actually carries the per-core + shared-domain
    tracks and the conflict arrows it promises."""
    if isinstance(source, dict):
        payload = source
    else:
        with open(source, "r") as handle:
            payload = json.load(handle)
    n_events = validate_chrome_trace(payload)
    pids = set()
    tracks = set()
    flows = set()
    for event in payload["traceEvents"]:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "process_name":
                pids.add(event.get("pid", 0))
            elif event.get("name") == "thread_name":
                tracks.add((event.get("pid", 0), event.get("tid", 0)))
        elif phase == "s":
            flows.add(event.get("id"))
    return {
        "events": n_events,
        "processes": len(pids),
        "tracks": len(tracks),
        "flows": len(flows),
    }
