"""Undo log stored in simulated NVMM.

Layout (all fields 8-byte words, the header padded to one cache block so
``logged_bit`` persists with a single ``clwb``)::

    base + 0   logged_bit        (0 = idle, 1 = transaction in flight)
    base + 8   n_entries
    base + 64  entry[0]
    ...

Each entry is ``16 + payload`` bytes rounded up to 8:

    +0  target address
    +8  payload size in bytes
    +16 payload (the pre-image of the target range)

Entries are written sequentially; recovery applies them in *reverse* order
(classic undo semantics — the oldest pre-image must win for ranges logged
twice within a transaction).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap, CACHE_BLOCK


class LogOverflowError(RuntimeError):
    """A transaction logged more data than the log region can hold."""


_HEADER = CACHE_BLOCK  # logged_bit + n_entries, padded to one block


def _round8(n: int) -> int:
    return (n + 7) & ~7


class UndoLog:
    """A fixed-capacity undo log living in the simulated NVMM."""

    def __init__(self, heap: NVMHeap, allocator: Allocator, capacity: int = 1 << 16):
        if capacity <= _HEADER:
            raise ValueError("log capacity too small for its header")
        self.heap = heap
        self.base = allocator.alloc(capacity)
        self.capacity = capacity
        self._cursor = self.base + _HEADER  # next free byte for entries
        # Initialise the header durably-benign: logged_bit = 0.
        heap.store_u64(self.base, 0, meta="log-init")
        heap.store_u64(self.base + 8, 0, meta="log-init")

    # ------------------------------------------------------------------
    # header accessors
    # ------------------------------------------------------------------
    @property
    def logged_bit_addr(self) -> int:
        return self.base

    def read_logged_bit(self) -> int:
        return self.heap.load_u64(self.base, meta="log-bit")

    def write_logged_bit(self, value: int) -> None:
        self.heap.store_u64(self.base, value, meta="log-bit")

    def read_n_entries(self) -> int:
        return self.heap.load_u64(self.base + 8, meta="log-hdr")

    def write_n_entries(self, value: int) -> None:
        self.heap.store_u64(self.base + 8, value, meta="log-hdr")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh transaction's log (entries become garbage)."""
        self._cursor = self.base + _HEADER
        self.write_n_entries(0)

    def append(self, addr: int, size: int) -> List[int]:
        """Log the pre-image of ``[addr, addr+size)``.

        Returns the cache-block addresses the entry occupies, so the caller
        can ``clwb`` them.
        """
        if size <= 0:
            raise ValueError("cannot log an empty range")
        entry_size = 16 + _round8(size)
        if self._cursor + entry_size > self.base + self.capacity:
            raise LogOverflowError(
                f"undo log overflow: {entry_size} bytes needed, "
                f"{self.base + self.capacity - self._cursor} free"
            )
        entry = self._cursor
        pre_image = self.heap.load_bytes(addr, size, meta="log-read")
        self.heap.store_u64(entry, addr, meta="log-write")
        self.heap.store_u64(entry + 8, size, meta="log-write")
        self.heap.store_bytes(entry + 16, pre_image.ljust(_round8(size), b"\0"),
                              meta="log-write")
        self._cursor += entry_size
        count = self.read_n_entries()
        self.write_n_entries(count + 1)
        first_block = entry & ~(CACHE_BLOCK - 1)
        last_block = (entry + entry_size - 1) & ~(CACHE_BLOCK - 1)
        return list(range(first_block, last_block + CACHE_BLOCK, CACHE_BLOCK))

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[int, int, int]]:
        """Walk the log; yields ``(entry_addr, target_addr, size)`` oldest first."""
        result: List[Tuple[int, int, int]] = []
        cursor = self.base + _HEADER
        for _ in range(self.read_n_entries()):
            addr = self.heap.load_u64(cursor, meta="log-scan")
            size = self.heap.load_u64(cursor + 8, meta="log-scan")
            result.append((cursor, addr, size))
            cursor += 16 + _round8(size)
        return result

    def apply_undo(self, persist: Optional["PersistOpsLike"] = None) -> int:
        """Apply all entries in reverse order, restoring pre-images.

        If *persist* is given, each restored block is flushed so recovery
        itself is failure safe (recovery must be idempotent and it is:
        re-applying undo entries is harmless).  Returns the number of
        entries undone.
        """
        entries = self.entries()
        touched_blocks = set()
        for entry_addr, target, size in reversed(entries):
            payload = self.heap.load_bytes(entry_addr + 16, size, meta="undo-read")
            self.heap.store_bytes(target, payload, meta="undo-write")
            first = target & ~(CACHE_BLOCK - 1)
            last = (target + size - 1) & ~(CACHE_BLOCK - 1)
            touched_blocks.update(range(first, last + CACHE_BLOCK, CACHE_BLOCK))
        if persist is not None:
            for block in sorted(touched_blocks):
                persist.clwb(block, meta="undo")
            persist.persist_barrier(meta="undo")
        return len(entries)


class PersistOpsLike:
    """Typing stub for the persist facade (avoids a circular import)."""

    def clwb(self, addr: int, meta: Optional[str] = None) -> None: ...

    def persist_barrier(self, meta: Optional[str] = None) -> None: ...
