"""Write-ahead-logging transactions over simulated NVMM (paper §3.1).

Every workload operation is wrapped in an undo-log transaction with the
paper's four strictly-ordered steps:

1. write the undo log and make it durable,
2. set ``logged_bit`` and make it durable,
3. apply the updates and make them durable,
4. clear ``logged_bit`` and make it durable.

Each step ends with a persist barrier (``sfence; pcommit; sfence``), so one
transaction costs 4 pcommits and 8 sfences — the clustering that motivates
speculative persistence.

The :class:`~repro.txn.modes.PersistMode` selects the paper's evaluation
variants: ``BASE`` (no logging), ``LOG`` (undo logging only), ``LOG_P``
(+ clwb/pcommit, no fences), and ``LOG_P_SF`` (the only failure-safe one).
"""

from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps
from repro.txn.undolog import UndoLog, LogOverflowError
from repro.txn.manager import TxManager, TxStats

__all__ = [
    "PersistMode",
    "PersistOps",
    "UndoLog",
    "LogOverflowError",
    "TxManager",
    "TxStats",
]
