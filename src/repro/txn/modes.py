"""Persistence-variant modes matching the paper's Figure 8 bars."""

from __future__ import annotations

import enum


class PersistMode(enum.Enum):
    """Which persistence machinery a workload run includes.

    The four values correspond to the successive bars of Figure 8:

    * ``BASE`` — the original volatile data structure; no logging, no
      persistency instructions.  The normalisation baseline.
    * ``LOG`` — undo logging code added, but no persistency instructions.
    * ``LOG_P`` — logging plus ``clwb``/``pcommit``, **without** the fences
      that order them.  Fast but *not* failure safe.
    * ``LOG_P_SF`` — the full, correct protocol with ``sfence`` ordering.
    """

    BASE = "base"
    LOG = "log"
    LOG_P = "log+p"
    LOG_P_SF = "log+p+sf"

    @property
    def logging(self) -> bool:
        """Whether undo-log code runs."""
        return self is not PersistMode.BASE

    @property
    def pmem(self) -> bool:
        """Whether clwb/pcommit instructions are issued."""
        return self in (PersistMode.LOG_P, PersistMode.LOG_P_SF)

    @property
    def fences(self) -> bool:
        """Whether sfences order the persists (required for failure safety)."""
        return self is PersistMode.LOG_P_SF

    @property
    def failure_safe(self) -> bool:
        """Only the fully-fenced protocol survives arbitrary crashes."""
        return self is PersistMode.LOG_P_SF

    @property
    def label(self) -> str:
        """Figure-8 bar label."""
        return {
            PersistMode.BASE: "Base",
            PersistMode.LOG: "Log",
            PersistMode.LOG_P: "Log+P",
            PersistMode.LOG_P_SF: "Log+P+Sf",
        }[self]
