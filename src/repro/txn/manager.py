"""Transaction manager implementing the four-step WAL protocol (paper §3.1).

Workloads use it as::

    tx.begin()
    tx.log_range(node_addr, 64)        # as many as needed (step 1 writes)
    tx.seal()                          # step-1 barrier + logged_bit barrier
    ... mutate the structure ...
    tx.flush(node_addr)                # clwb each modified block (step 3)
    tx.commit()                        # step-3 barrier + clear bit + barrier

Each fully-fenced transaction issues exactly 4 pcommits and 8 sfences, the
pattern Figure 2 of the paper shows for the linked list.

The manager is mode-gated through its :class:`~repro.txn.persist_ops.PersistOps`:
in ``BASE`` mode logging itself is skipped, in ``LOG`` mode the log is
written but no persistency instructions are issued, etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mem.alloc import Allocator
from repro.mem.heap import NVMHeap, CACHE_BLOCK
from repro.txn.modes import PersistMode
from repro.txn.persist_ops import PersistOps
from repro.txn.undolog import UndoLog


@dataclass
class TxStats:
    """Dynamic transaction statistics."""

    transactions: int = 0
    entries_logged: int = 0
    bytes_logged: int = 0
    recoveries: int = 0
    entries_undone: int = 0


class TxError(RuntimeError):
    """Protocol misuse (e.g. commit without begin)."""


class TxManager:
    """Drives the WAL protocol for one single-threaded workload."""

    def __init__(
        self,
        heap: NVMHeap,
        allocator: Allocator,
        persist: PersistOps,
        log_capacity: int = 1 << 16,
    ):
        self.heap = heap
        self.persist = persist
        self.log = UndoLog(heap, allocator, log_capacity)
        self.stats = TxStats()
        self._in_tx = False
        self._sealed = False
        self._log_blocks: List[int] = []
        self._flush_queue: List[int] = []

    @property
    def mode(self) -> PersistMode:
        return self.persist.mode

    # ------------------------------------------------------------------
    # the four steps
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Open a transaction; resets the undo log."""
        if self._in_tx:
            raise TxError("nested transactions are not supported")
        self._in_tx = True
        self._sealed = False
        self._log_blocks = []
        self._flush_queue = []
        if self.mode.logging:
            self.log.reset()
        self.stats.transactions += 1

    def log_range(self, addr: int, size: int) -> None:
        """Step 1 (writes): record the pre-image of a range about to change."""
        if not self._in_tx:
            raise TxError("log_range outside a transaction")
        if self._sealed:
            raise TxError("cannot log after seal(); use full logging (§3.2)")
        if not self.mode.logging:
            return
        self._log_blocks.extend(self.log.append(addr, size))
        self.stats.entries_logged += 1
        self.stats.bytes_logged += size

    def log_block(self, addr: int) -> None:
        """Log the whole cache block containing *addr* (one node)."""
        self.log_range(addr & ~(CACHE_BLOCK - 1), CACHE_BLOCK)

    def seal(self) -> None:
        """Steps 1 (barrier) and 2: persist the log, then set logged_bit."""
        if not self._in_tx:
            raise TxError("seal outside a transaction")
        if self._sealed:
            raise TxError("transaction already sealed")
        self._sealed = True
        if not self.mode.logging:
            return
        persist = self.persist
        # Step 1 barrier: flush every log block (entries + header) and wait.
        for block in dict.fromkeys(self._log_blocks):  # de-dup, keep order
            persist.clwb(block, meta="log")
        persist.clwb(self.log.base, meta="log")  # header (n_entries)
        persist.persist_barrier(meta="step1")
        # Step 2: set logged_bit and make it durable.
        self.log.write_logged_bit(1)
        persist.clwb(self.log.logged_bit_addr, meta="log-bit")
        persist.persist_barrier(meta="step2")

    def flush(self, addr: int, size: int = CACHE_BLOCK) -> None:
        """Step 3 (flushes): clwb the block(s) covering a modified range."""
        if not self._in_tx:
            raise TxError("flush outside a transaction")
        first = addr & ~(CACHE_BLOCK - 1)
        last = (addr + size - 1) & ~(CACHE_BLOCK - 1)
        for block in range(first, last + CACHE_BLOCK, CACHE_BLOCK):
            self.persist.clwb(block, meta="data")

    def commit(self) -> None:
        """Steps 3 (barrier) and 4: persist updates, then clear logged_bit."""
        if not self._in_tx:
            raise TxError("commit outside a transaction")
        if not self._sealed:
            raise TxError("commit before seal()")
        persist = self.persist
        # Step 3 barrier: all data flushes issued via flush() must be durable.
        persist.persist_barrier(meta="step3")
        if self.mode.logging:
            # Step 4: clear logged_bit and make it durable.
            self.log.write_logged_bit(0)
            persist.clwb(self.log.logged_bit_addr, meta="log-bit")
        persist.persist_barrier(meta="step4")
        self._in_tx = False
        self._sealed = False

    def abort_volatile(self) -> None:
        """Drop transaction state without touching memory (tests only)."""
        self._in_tx = False
        self._sealed = False

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Post-crash recovery: undo if a transaction was in flight.

        Returns the number of undo entries applied.  Per the paper, if the
        logged_bit is set we must pessimistically undo regardless of how far
        the transaction got.  Recovery itself is made failure safe by
        flushing every restored block before clearing the bit.
        """
        self._in_tx = False
        self._sealed = False
        self.stats.recoveries += 1
        if self.log.read_logged_bit() == 0:
            return 0
        undone = self.log.apply_undo(self.persist)
        self.log.write_logged_bit(0)
        self.persist.clwb(self.log.logged_bit_addr, meta="recover")
        self.persist.persist_barrier(meta="recover")
        self.stats.entries_undone += undone
        return undone
