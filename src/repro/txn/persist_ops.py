"""Facade that fans persistency instructions out to the attached models.

Workload and transaction code issue ``clwb``/``pcommit``/``sfence`` exactly
once, through a :class:`PersistOps`; the facade forwards each instruction to
whichever back-ends are attached:

* a :class:`~repro.isa.recorder.TraceRecorder` (for the timing models), and/or
* a :class:`~repro.pmem.domain.PersistenceDomain` (for crash semantics).

It also implements the *mode gating*: in ``LOG`` mode persistency
instructions are swallowed, in ``LOG_P`` mode fences are swallowed, so the
same workload source produces all of Figure 8's variants.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.recorder import TraceRecorder
from repro.pmem.domain import PersistenceDomain
from repro.txn.modes import PersistMode


#: Valid flush-instruction choices for :class:`PersistOps`.
FLUSH_POLICIES = ("clwb", "clflushopt", "clflush")


class PersistOps:
    """Mode-gated dispatcher for persistency instructions.

    ``flush_with`` selects which instruction :meth:`clwb` actually emits —
    the paper uses ``clwb`` (keeps the block cached) and notes that
    ``clflush`` "has a similar functionality but much worse performance"
    (footnote 2); the flush-policy ablation bench quantifies both
    alternatives.
    """

    def __init__(
        self,
        mode: PersistMode,
        recorder: Optional[TraceRecorder] = None,
        domain: Optional[PersistenceDomain] = None,
        flush_with: str = "clwb",
    ):
        if flush_with not in FLUSH_POLICIES:
            raise ValueError(f"flush_with must be one of {FLUSH_POLICIES}")
        self.mode = mode
        self.recorder = recorder
        self.domain = domain
        self.flush_with = flush_with
        # dynamic counts (Figure 9 / Figure 11 inputs)
        self.n_clwb = 0
        self.n_clflushopt = 0
        self.n_pcommit = 0
        self.n_sfence = 0

    # ------------------------------------------------------------------
    def clwb(self, addr: int, meta: Optional[str] = None) -> None:
        if not self.mode.pmem:
            return
        if self.flush_with == "clflushopt":
            self.clflushopt(addr, meta)
            return
        if self.flush_with == "clflush":
            self._clflush(addr, meta)
            return
        self.n_clwb += 1
        if self.recorder is not None:
            self.recorder.clwb(addr, meta)
        if self.domain is not None:
            self.domain.clwb(addr, meta)

    def _clflush(self, addr: int, meta: Optional[str] = None) -> None:
        self.n_clflushopt += 1
        if self.recorder is not None:
            self.recorder.clflush(addr, meta)
        if self.domain is not None:
            # functionally a flush; the serialising cost is a timing matter
            self.domain.clflushopt(addr, meta)

    def clflushopt(self, addr: int, meta: Optional[str] = None) -> None:
        if not self.mode.pmem:
            return
        self.n_clflushopt += 1
        if self.recorder is not None:
            self.recorder.clflushopt(addr, meta)
        if self.domain is not None:
            self.domain.clflushopt(addr, meta)

    def pcommit(self, meta: Optional[str] = None) -> None:
        if not self.mode.pmem:
            return
        self.n_pcommit += 1
        if self.recorder is not None:
            self.recorder.pcommit(meta)
        if self.domain is not None:
            self.domain.pcommit(meta)

    def sfence(self, meta: Optional[str] = None) -> None:
        if not self.mode.fences:
            return
        self.n_sfence += 1
        if self.recorder is not None:
            self.recorder.sfence(meta)
        if self.domain is not None:
            self.domain.sfence(meta)

    # ------------------------------------------------------------------
    def persist_barrier(self, meta: Optional[str] = None) -> None:
        """The paper's ``sfence; pcommit; sfence`` sequence (§2.2)."""
        self.sfence(meta)
        self.pcommit(meta)
        self.sfence(meta)
