"""Simulation statistics."""

from repro.stats.run import RunStats

__all__ = ["RunStats"]
