"""Per-run statistics covering every figure in the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RunStats:
    """Counters produced by one :func:`repro.uarch.pipeline.simulate` run."""

    # headline timing
    cycles: int = 0
    instructions: int = 0

    # Figure 10: fetch-queue stall cycles (front end blocked because the
    # fetch queue is full, i.e. dispatch is backpressured by the ROB).
    fetch_stall_cycles: int = 0

    # sfence behaviour
    sfences: int = 0
    sfence_stall_cycles: int = 0

    # PMEM instruction dynamics
    clwbs: int = 0
    clflushopts: int = 0
    clflushes: int = 0
    pcommits: int = 0
    #: Figure 11: maximum concurrently outstanding pcommits.
    max_inflight_pcommits: int = 0
    #: Figure 12 numerator: stores (incl. flushes) executed while at least
    #: one pcommit was outstanding.
    stores_during_pcommit: int = 0

    # memory system
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    nvmm_reads: int = 0
    nvmm_writes: int = 0

    # speculation (SP runs only)
    sp_entries: int = 0          # times speculation was entered
    epochs_created: int = 0
    max_active_epochs: int = 0
    checkpoint_stall_cycles: int = 0
    ssb_full_stall_cycles: int = 0
    ssb_max_occupancy: int = 0
    bloom_queries: int = 0
    bloom_hits: int = 0
    bloom_false_positives: int = 0
    ssb_forwards: int = 0
    rollbacks: int = 0
    #: Cycles charged to pipeline refill after a coherence-conflict abort
    #: (multi-core runs; the crash fuzzer's forced aborts also land here).
    conflict_abort_cycles: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def stores_per_pcommit(self) -> float:
        """Figure 12: speculative-store demand per outstanding pcommit."""
        return self.stores_during_pcommit / self.pcommits if self.pcommits else 0.0

    @property
    def bloom_false_positive_rate(self) -> float:
        """Figure 14: false positives per bloom-filter query."""
        return self.bloom_false_positives / self.bloom_queries if self.bloom_queries else 0.0

    def overhead_vs(self, baseline: "RunStats") -> float:
        """Execution-time overhead relative to *baseline* (Figure 8 metric)."""
        if baseline.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.cycles / baseline.cycles - 1.0

    #: Metrics :meth:`as_dict` derives from the counters; recomputed on
    #: load, never round-tripped as data.
    _DERIVED = frozenset(
        {"ipc", "stores_per_pcommit", "bloom_false_positive_rate"}
    )

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RunStats":
        """Rebuild a :class:`RunStats` from a mapping of raw counters.

        Accepts the output of :meth:`as_dict` (derived metrics are
        recomputed, not read back) as well as the persistent cache's JSON
        records (which keep ``extra`` nested).  Unknown keys land in
        ``extra`` — :meth:`as_dict` flattens ``extra`` into the mapping,
        so dropping them here would make the round trip lossy.
        """
        from dataclasses import fields

        names = {field_.name for field_ in fields(cls)}
        kwargs = {}
        extra: Dict[str, float] = {}
        for key, value in data.items():
            if key == "extra" and isinstance(value, dict):
                extra.update(value)
            elif key in names:
                kwargs[key] = value
            elif key not in cls._DERIVED:
                extra[key] = value
        if extra:
            kwargs.setdefault("extra", {}).update(extra)
        return cls(**kwargs)

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping of every counter plus the derived metrics — for
        reports, JSON export, and notebook use."""
        from dataclasses import fields

        data: Dict[str, float] = {}
        for field_ in fields(self):
            if field_.name == "extra":
                continue
            data[field_.name] = getattr(self, field_.name)
        data["ipc"] = self.ipc
        data["stores_per_pcommit"] = self.stores_per_pcommit
        data["bloom_false_positive_rate"] = self.bloom_false_positive_rate
        data.update(self.extra)
        return data
