"""Durable-state tracking for the PMEM persistency model.

The :class:`PersistenceDomain` is a *functional* (untimed) model: it observes
every store the workload makes and every persistency instruction it issues,
and maintains, at cache-block granularity, where the newest value of each
block lives — cache, write-pending queue (WPQ), or NVMM.

A key subtlety it also models is **cache evictions**: in a real write-back
hierarchy a dirty block may be written back at *any* time due to capacity
pressure, so data can become durable "early".  Failure-safe software must be
correct regardless; :meth:`PersistenceDomain.random_evict` lets crash tests
exercise that freedom (the adversarial scheduler in
:class:`~repro.pmem.crash.CrashTester` uses it).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from repro.mem.heap import NVMHeap, CACHE_BLOCK


class PmemOrderingError(RuntimeError):
    """Raised when persistency instructions are used inconsistently."""


class PersistenceDomain:
    """Tracks which cache blocks are dirty, pending in the WPQ, or durable.

    The durable image starts as a snapshot of the heap at attach time and is
    updated block-by-block as blocks become durable.  ``crash_image`` returns
    the bytes a post-failure system would observe.

    Attach it to an :class:`~repro.mem.heap.NVMHeap` via ``heap.attach``:
    it implements the observer protocol (``load``/``store``) plus the
    persistency-instruction hooks (``clwb``/``clflushopt``/``pcommit``/
    ``sfence``).
    """

    def __init__(self, heap: NVMHeap):
        self.heap = heap
        #: Blocks whose newest value is only in the cache.
        self.dirty: Set[int] = set()
        #: Blocks whose newest value sits in the memory-controller WPQ,
        #: mapped to the data that entered the queue.
        self.wpq: Dict[int, bytes] = {}
        #: Durable image overlay: block address -> durable bytes.  Blocks not
        #: present still hold their attach-time contents (``_base``).
        self._durable: Dict[int, bytes] = {}
        self._base = heap.snapshot()
        #: Flushes issued since the last sfence; clwb/clflushopt only take
        #: effect (enter the WPQ) once an sfence orders them.  This models
        #: that an un-fenced flush gives no completion guarantee.
        self._pending_flushes: Set[int] = set()
        # statistics
        self.n_stores = 0
        self.n_flushes = 0
        self.n_pcommits = 0
        self.n_sfences = 0
        self.n_evictions = 0

    # ------------------------------------------------------------------
    # MemoryObserver protocol
    # ------------------------------------------------------------------
    def load(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        """Loads do not change persistence state."""

    def store(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        first = addr & ~(CACHE_BLOCK - 1)
        last = (addr + size - 1) & ~(CACHE_BLOCK - 1)
        block = first
        while block <= last:
            self.dirty.add(block)
            # A newer store supersedes any queued or pending-flush copy of
            # the block: the cached value is now the newest.
            self.wpq.pop(block, None)
            self._pending_flushes.discard(block)
            block += CACHE_BLOCK
        self.n_stores += 1

    # ------------------------------------------------------------------
    # persistency instructions
    # ------------------------------------------------------------------
    def clwb(self, addr: int, meta: Optional[str] = None) -> None:
        """Request write-back of the block containing *addr* (keeps it cached)."""
        self._pending_flushes.add(addr & ~(CACHE_BLOCK - 1))
        self.n_flushes += 1

    # clflushopt behaves identically at this level of abstraction (eviction
    # only matters for timing, which repro.uarch models).
    clflushopt = clwb

    def sfence(self, meta: Optional[str] = None) -> None:
        """Complete all pending flushes: dirty blocks move cache -> WPQ."""
        for block in self._pending_flushes:
            if block in self.dirty:
                self._move_to_wpq(block)
        self._pending_flushes.clear()
        self.n_sfences += 1

    def pcommit(self, meta: Optional[str] = None) -> None:
        """Drain the WPQ: queued blocks become durable.

        Note: per the paper, a pcommit not followed by an sfence gives no
        ordering guarantee to younger stores — but its *effect* (the drain)
        still happens; the timed models handle the ordering half.
        """
        for block, data in self.wpq.items():
            self._durable[block] = data
        self.wpq.clear()
        self.n_pcommits += 1

    def persist_barrier(self) -> None:
        """Convenience: the full sfence; pcommit; sfence sequence."""
        self.sfence()
        self.pcommit()
        self.sfence()

    # ------------------------------------------------------------------
    # background cache behaviour
    # ------------------------------------------------------------------
    def evict(self, block: int) -> None:
        """Write back one dirty block due to cache pressure (then it may
        drain to NVMM at any time; we conservatively make it durable, the
        worst case for recovery reasoning)."""
        block &= ~(CACHE_BLOCK - 1)
        if block in self.dirty:
            self._move_to_wpq(block)
            self._durable[block] = self.wpq.pop(block)
            self.n_evictions += 1

    def random_evict(self, rng: random.Random, fraction: float = 0.5) -> None:
        """Evict a random subset of dirty blocks (adversarial scheduler)."""
        victims = [b for b in sorted(self.dirty) if rng.random() < fraction]
        for block in victims:
            self.evict(block)

    # ------------------------------------------------------------------
    # crash / inspection
    # ------------------------------------------------------------------
    def is_durable(self, addr: int, size: int = 8) -> bool:
        """Whether [addr, addr+size) is entirely durable *and* current."""
        first = addr & ~(CACHE_BLOCK - 1)
        last = (addr + size - 1) & ~(CACHE_BLOCK - 1)
        block = first
        while block <= last:
            if block in self.dirty or block in self.wpq:
                return False
            block += CACHE_BLOCK
        return True

    def crash_image(self) -> bytes:
        """The bytes NVMM would hold after an instant power failure."""
        image = bytearray(self._base)
        for block, data in self._durable.items():
            image[block : block + CACHE_BLOCK] = data
        return bytes(image)

    def crash(self) -> None:
        """Simulate the failure: overwrite the heap with the durable image
        and reset volatile state (caches and WPQ are lost)."""
        self.heap.restore(self.crash_image())
        self.dirty.clear()
        self.wpq.clear()
        self._pending_flushes.clear()
        # After the crash the durable overlay *is* the base image.
        self._base = self.heap.snapshot()
        self._durable.clear()

    def sync_base(self) -> None:
        """Declare the current heap contents fully durable (used after
        untimed initialisation, mirroring the paper's fast-forward phase)."""
        self._base = self.heap.snapshot()
        self._durable.clear()
        self.dirty.clear()
        self.wpq.clear()
        self._pending_flushes.clear()

    # ------------------------------------------------------------------
    def _move_to_wpq(self, block: int) -> None:
        self.dirty.discard(block)
        self.wpq[block] = self.heap.raw_read(block, CACHE_BLOCK)
