"""The memory-persistency-model taxonomy of paper §2.1.

The paper positions Intel PMEM against four prior persistency models:

* **strict persistency** — a store that is globally visible has persisted;
  reasoning is trivial but every store pays an NVMM write in order;
* **epoch persistency** — *persist barriers* delimit epochs; stores within
  an epoch persist in any order, but everything in epoch *k* persists
  before anything in epoch *k+1*; the barrier may stall;
* **buffered epoch persistency** — same ordering guarantee, but barriers
  do not stall: whole epochs drain to NVMM in the background, in order;
* **strand persistency** — independent *strands* carry no mutual ordering;
  only barriers within a strand order its own persists.

Each model here is a small functional machine: feed it the program's
stores and its model-specific barriers, then ask what NVMM states a crash
could expose (:meth:`PersistencyModel.sample_crash_image`) and what the
guaranteed-durable prefix is.  The classes double as executable
documentation of §2.1 and as the substrate for the model-comparison
example; the PMEM model the paper (and the rest of this repository) builds
on is the *flexible* point in this space — software picks which stores
persist and in which order via clwb/pcommit/sfence, implemented in
:class:`repro.pmem.domain.PersistenceDomain`.

State is tracked at word granularity (address -> bytes) rather than via a
full heap, so the models are cheap enough for property-based testing.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Tuple

#: One recorded store: (address, payload bytes).
Store = Tuple[int, bytes]


class PersistencyModel(abc.ABC):
    """Common interface: record stores, take barriers, sample crashes."""

    name: str = ""

    def __init__(self) -> None:
        #: durable word values (what every possible crash image contains)
        self._durable: Dict[int, bytes] = {}
        # statistics for the model-comparison experiments
        self.stores = 0
        self.barriers = 0
        self.stall_events = 0
        self.nvmm_writes = 0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def store(self, addr: int, payload: bytes) -> None:
        """Record a store in program order."""

    def persist_barrier(self) -> None:
        """The model's ordering primitive (no-op where meaningless)."""
        self.barriers += 1

    # ------------------------------------------------------------------
    def durable_value(self, addr: int) -> Optional[bytes]:
        """The value guaranteed durable at *addr* (None if never persisted)."""
        return self._durable.get(addr)

    @abc.abstractmethod
    def sample_crash_image(self, rng: random.Random) -> Dict[int, bytes]:
        """One NVMM state the model permits at a crash."""

    # helpers -----------------------------------------------------------
    def _persist(self, addr: int, payload: bytes) -> None:
        self._durable[addr] = payload
        self.nvmm_writes += 1


class StrictPersistency(PersistencyModel):
    """Every store persists, in program order, before becoming visible."""

    name = "strict"

    def store(self, addr: int, payload: bytes) -> None:
        self.stores += 1
        self.stall_events += 1  # each store waits for its NVMM write
        self._persist(addr, payload)

    def sample_crash_image(self, rng: random.Random) -> Dict[int, bytes]:
        # nothing is ever in flight: the crash image is exact
        return dict(self._durable)


class EpochPersistency(PersistencyModel):
    """Persist barriers delimit epochs; the barrier stalls until the
    current epoch has fully persisted."""

    name = "epoch"

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[Store] = []

    def store(self, addr: int, payload: bytes) -> None:
        self.stores += 1
        self._pending.append((addr, payload))

    def persist_barrier(self) -> None:
        super().persist_barrier()
        if self._pending:
            self.stall_events += 1  # the processor waits for the epoch
        for addr, payload in self._pending:
            self._persist(addr, payload)
        self._pending = []

    def sample_crash_image(self, rng: random.Random) -> Dict[int, bytes]:
        image = dict(self._durable)
        # stores of the open epoch persist in any order: any subset may
        # have made it (per-address, the *latest* write to an address can
        # only land if it lands; earlier same-address writes are folded)
        pending_by_addr: Dict[int, bytes] = {}
        for addr, payload in self._pending:
            pending_by_addr[addr] = payload
        for addr, payload in pending_by_addr.items():
            if rng.random() < 0.5:
                image[addr] = payload
        return image


class BufferedEpochPersistency(PersistencyModel):
    """Epoch ordering without barrier stalls: epochs queue and drain to
    NVMM in order, in the background."""

    name = "buffered-epoch"

    def __init__(self) -> None:
        super().__init__()
        self._queued: List[List[Store]] = []
        self._open: List[Store] = []

    def store(self, addr: int, payload: bytes) -> None:
        self.stores += 1
        self._open.append((addr, payload))

    def persist_barrier(self) -> None:
        super().persist_barrier()
        # no stall: the epoch is sealed and queued
        if self._open:
            self._queued.append(self._open)
            self._open = []

    def drain(self, epochs: int = 1) -> int:
        """Background progress: persist up to *epochs* queued epochs
        (oldest first).  Returns how many drained."""
        drained = 0
        while self._queued and drained < epochs:
            for addr, payload in self._queued.pop(0):
                self._persist(addr, payload)
            drained += 1
        return drained

    def sample_crash_image(self, rng: random.Random) -> Dict[int, bytes]:
        image = dict(self._durable)
        # some prefix of the queued epochs fully persisted ...
        epochs = self._queued + ([self._open] if self._open else [])
        if not epochs:
            return image
        survivors = rng.randrange(len(epochs) + 1)
        for epoch in epochs[:survivors]:
            for addr, payload in epoch:
                image[addr] = payload
        # ... and the next epoch may be partially persisted (any order)
        if survivors < len(epochs):
            partial: Dict[int, bytes] = {}
            for addr, payload in epochs[survivors]:
                partial[addr] = payload
            for addr, payload in partial.items():
                if rng.random() < 0.5:
                    image[addr] = payload
        return image


class StrandPersistency(PersistencyModel):
    """Strands carry no mutual persist ordering; barriers order only
    within their strand."""

    name = "strand"

    def __init__(self) -> None:
        super().__init__()
        #: per-strand epoch lists (each strand behaves like buffered epoch)
        self._strands: List[BufferedEpochPersistency] = []
        self.new_strand()

    @property
    def current_strand(self) -> BufferedEpochPersistency:
        return self._strands[-1]

    def new_strand(self) -> int:
        """Begin a new strand (the paper's strand barrier); returns its id."""
        self._strands.append(BufferedEpochPersistency())
        return len(self._strands) - 1

    def store(self, addr: int, payload: bytes) -> None:
        self.stores += 1
        self.current_strand.store(addr, payload)

    def persist_barrier(self) -> None:
        super().persist_barrier()
        self.current_strand.persist_barrier()

    def sample_crash_image(self, rng: random.Random) -> Dict[int, bytes]:
        # strands are independent: sample each one separately; later
        # strands' writes may land while earlier strands' have not
        image: Dict[int, bytes] = dict(self._durable)
        for strand in self._strands:
            image.update(strand.sample_crash_image(rng))
        return image

    @property
    def n_strands(self) -> int:
        return len(self._strands)


ALL_MODELS = (
    StrictPersistency,
    EpochPersistency,
    BufferedEpochPersistency,
    StrandPersistency,
)
