"""Functional model of the Intel PMEM persistence domain.

This package answers the question the paper's failure-safety argument rests
on: *at any instant, which bytes would survive a power failure?*

The model (paper §2.2, Figure 1) has three tiers:

1. **Caches** — a store makes a cache block dirty; dirty data is volatile.
2. **Memory-controller write-pending queue (WPQ)** — ``clwb``/``clflushopt``
   move a dirty block into the WPQ; still volatile (the paper explicitly does
   *not* assume the controller is in the persistence domain, which is why
   ``pcommit`` is retained despite its deprecation).
3. **NVMM** — ``pcommit`` drains the WPQ; only now is the data durable.

:class:`~repro.pmem.domain.PersistenceDomain` tracks the durable image as a
copy-on-write overlay over the functional heap; crashing is simply "replace
the heap contents with the durable image".  :class:`~repro.pmem.crash.CrashTester`
drives workloads to arbitrary persist points, crashes, runs recovery, and
checks invariants.
"""

from repro.pmem.domain import PersistenceDomain, PmemOrderingError
from repro.pmem.crash import CrashTester, CrashOutcome
from repro.pmem.models import (
    ALL_MODELS,
    BufferedEpochPersistency,
    EpochPersistency,
    PersistencyModel,
    StrandPersistency,
    StrictPersistency,
)

__all__ = [
    "PersistenceDomain",
    "PmemOrderingError",
    "CrashTester",
    "CrashOutcome",
    "PersistencyModel",
    "StrictPersistency",
    "EpochPersistency",
    "BufferedEpochPersistency",
    "StrandPersistency",
    "ALL_MODELS",
]
