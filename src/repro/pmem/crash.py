"""Crash-injection driver for failure-safety testing.

The paper argues (but never executes) the WAL recovery protocol.  Here we
*test* it: :class:`CrashTester` runs workload operations while observing the
heap.  To test crash point *k* it re-runs one operation and aborts it at the
*k*-th store event, simulates the power failure via
:meth:`~repro.pmem.domain.PersistenceDomain.crash`, invokes the workload's
recovery routine, and checks the workload's invariants.

Crashing *before store k* for every *k* (plus one point after the final
store) covers every distinct software-visible interleaving of the operation
with a failure: the persistency instructions between two stores have all
executed by the next store's crash point.  Randomised cache evictions
(`adversarial_evictions`) additionally vary *which* un-flushed blocks happen
to be durable at each point, the freedom a real write-back hierarchy has.

This is the moral equivalent of the exhaustive crash-state enumeration used
by file-system crash-consistency checkers, specialised to the PMEM model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.pmem.domain import PersistenceDomain


class CrashSignal(Exception):
    """Raised mid-operation to model an instantaneous power failure."""


@dataclass
class CrashOutcome:
    """Result of one injected crash."""

    crash_point: int
    crashed: bool
    invariants_ok: bool
    detail: str = ""
    #: index of the operation the crash was injected into (multi-operation
    #: campaigns; -1 for the classic single-operation sweeps).
    op_index: int = -1


class CrashTester:
    """Drives crash injection against a workload.

    Parameters
    ----------
    domain:
        The persistence domain observing the workload's heap.
    run_operation:
        Callable performing exactly one transactional operation.
    recover:
        The workload's post-crash recovery routine (WAL undo).
    check_invariants:
        Returns an error string if the recovered structure is inconsistent,
        or ``None``/empty string when consistent.
    adversarial_evictions:
        Randomly write back dirty blocks while the operation runs, modelling
        capacity evictions that make data durable "early".
    """

    def __init__(
        self,
        domain: PersistenceDomain,
        run_operation: Callable[[], None],
        recover: Callable[[], None],
        check_invariants: Callable[[], Optional[str]],
        adversarial_evictions: bool = True,
        seed: int = 0,
    ):
        self.domain = domain
        self.run_operation = run_operation
        self.recover = recover
        self.check_invariants = check_invariants
        self.adversarial_evictions = adversarial_evictions
        #: the seed every randomised decision derives from, recorded so a
        #: reported failure can be replayed exactly.
        self.seed = seed
        self._rng = random.Random(seed)
        self._countdown = -1
        self._counting = False
        self._events = 0
        self.outcomes: List[CrashOutcome] = []

    # ------------------------------------------------------------------
    # MemoryObserver protocol (the tester attaches itself to the heap)
    # ------------------------------------------------------------------
    def load(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        """Loads are not persistence events."""

    def store(self, addr: int, size: int = 8, meta: Optional[str] = None) -> None:
        if self._counting:
            self._events += 1
            return
        if self._countdown == 0:
            self._countdown = -1
            raise CrashSignal()
        if self._countdown > 0:
            self._countdown -= 1
            if self.adversarial_evictions and self._rng.random() < 0.05:
                self.domain.random_evict(self._rng, fraction=0.3)

    # ------------------------------------------------------------------
    def count_events(self) -> int:
        """Dry-run one operation, counting store events, then recover.

        The dry run mutates the structure, so the tester crash-recovers
        afterwards to restore a consistent durable state.
        """
        self._counting = True
        self._events = 0
        self.domain.heap.attach(self)
        try:
            self.run_operation()
        finally:
            self.domain.heap.detach(self)
            self._counting = False
        self.domain.crash()
        self.recover()
        return self._events

    def sweep(
        self,
        points: Optional[List[int]] = None,
        max_points: int = 64,
        stop_on_failure: bool = False,
    ) -> List[CrashOutcome]:
        """Inject crashes at a set of store-event indices.

        When *points* is ``None``, the tester measures how many events one
        operation generates and sweeps up to *max_points* of them (evenly
        spaced, always including the boundaries — the edges of the four WAL
        steps are where bugs live), plus one point past the last store
        (crash after a fully-persisted operation).

        With *stop_on_failure* the sweep aborts at the first inconsistent
        recovery: once recovery has failed, the structure is corrupted and
        further operations on it are undefined (they may not even
        terminate).  Validation engines use this so a broken recovery path
        is reported instead of wedging the run.
        """
        if points is None:
            total = self.count_events()
            candidates = set(range(total + 1))
            if len(candidates) > max_points:
                stride = max(1, (total + 1) // max_points)
                candidates = set(range(0, total + 1, stride))
                candidates |= {0, 1, max(0, total - 1), total}
            points = sorted(candidates)
        for point in points:
            outcome = self._inject(point)
            self.outcomes.append(outcome)
            if stop_on_failure and not outcome.invariants_ok:
                break
        return self.outcomes

    def campaign(
        self,
        n_crashes: int,
        max_ops_between: int = 3,
        max_point: int = 96,
        stop_on_failure: bool = False,
    ) -> List[CrashOutcome]:
        """Multi-operation randomised crash campaign.

        The classic :meth:`sweep` enumerates crash points within a *single*
        re-run operation.  A campaign instead interleaves crash-free
        operations with injected crashes over a long run: between
        consecutive injections it executes 0..*max_ops_between* complete
        operations (advancing the structure, the reference model, and the
        durable state), then crashes the next operation at a random store
        event in ``[0, max_point)`` and recovers.  A crash point beyond the
        operation's store count simply lets that operation complete — the
        "crash after a fully-persisted operation" case arises naturally.

        Every random choice comes from the tester's seeded RNG, so a
        campaign is exactly reproducible from ``(workload seed, tester
        seed)``.  Outcomes are appended to :attr:`outcomes` and returned.
        *stop_on_failure* aborts at the first inconsistent recovery (see
        :meth:`sweep`): running more operations on a structure whose
        recovery failed is undefined.
        """
        op_index = 0
        for _ in range(n_crashes):
            for _ in range(self._rng.randint(0, max_ops_between)):
                self.run_operation()
                op_index += 1
            outcome = self._inject(self._rng.randrange(max_point))
            outcome.op_index = op_index
            op_index += 1
            self.outcomes.append(outcome)
            if stop_on_failure and not outcome.invariants_ok:
                break
        return self.outcomes

    def _inject(self, point: int) -> CrashOutcome:
        self._countdown = point
        crashed = False
        self.domain.heap.attach(self)
        try:
            self.run_operation()
        except CrashSignal:
            crashed = True
        finally:
            self.domain.heap.detach(self)
            self._countdown = -1
        self.domain.crash()
        try:
            self.recover()
        except Exception as exc:  # recovery must never raise
            return CrashOutcome(point, crashed, False, f"recovery raised: {exc!r}")
        error = self.check_invariants()
        if error:
            return CrashOutcome(point, crashed, False, error)
        return CrashOutcome(point, crashed, True)

    @property
    def all_consistent(self) -> bool:
        return bool(self.outcomes) and all(o.invariants_ok for o in self.outcomes)
