"""Crash-consistency fuzzer (validation engine 2).

Extends the per-operation crash sweeps of
:class:`~repro.pmem.crash.CrashTester` in two directions:

**Multi-operation campaigns (functional).**  For every workload, a
seeded campaign interleaves crash-free operations with randomly placed
crash injections (:meth:`CrashTester.campaign`), with adversarial cache
evictions varying which un-flushed blocks happen to be durable.  Under
the fully fenced protocol (``LOG_P_SF``) every recovery must restore a
structure consistent with the reference model — across *sequences* of
operations, not just one.  The unfenced ``LOG_P`` variant runs as an
informational negative control: the paper predicts (and the seed's
single-op sweeps already show) that completed operations can evaporate
without fences.

**Mid-speculation machine probes (timing).**  Real SP hardware must
guarantee that *no speculative store becomes durable before its epoch
commits* (§4.2.1).  The fuzzer runs benchmark traces on the SP machine
and stops at randomly chosen instruction boundaries — biased toward the
shadow of persist barriers, where speculation lives — then asserts the
machine-state invariants of :mod:`repro.validate.invariants` (SSB/epoch
accounting, checkpoint accounting, bloom/BLT no-false-negatives) and
simulates a power failure via
:meth:`~repro.uarch.pipeline.PipelineModel.abort_speculation`: recovery
must resume from the oldest uncommitted checkpoint (the last committed
epoch's boundary) with the SSB discarded and every checkpoint freed.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.harness.runner import build_trace
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.pmem.crash import CrashTester
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel
from repro.uarch.system import SystemModel
from repro.validate.conformance import build_small_workload
from repro.validate.invariants import speculative_state_errors
from repro.validate.report import EngineReport
from repro.workloads.concurrent import generate_concurrent
from repro.workloads.registry import WORKLOADS


# ----------------------------------------------------------------------
# functional campaigns
# ----------------------------------------------------------------------
def run_campaign(
    abbrev: str,
    mode: PersistMode,
    seed: int,
    populate_ops: int = 40,
    n_crashes: int = 6,
    max_point: int = 64,
):
    """One multi-operation crash campaign; returns the tester."""
    workload = build_small_workload(abbrev, mode, seed)
    workload.populate(populate_ops)
    tester = CrashTester(
        workload.bench.domain,
        workload.random_operation,
        workload.recover,
        workload.check_invariants,
        seed=seed,
    )
    tester.campaign(n_crashes, max_point=max_point, stop_on_failure=True)
    return tester


# ----------------------------------------------------------------------
# mid-speculation machine probes
# ----------------------------------------------------------------------
def speculation_probe_points(
    trace: Trace, rng: random.Random, n_points: int
) -> List[int]:
    """Prefix lengths to probe: half uniform, half just after a fence
    (where speculative epochs are live)."""
    instrs = list(trace)
    n = len(instrs)
    if n < 2:
        return []
    fence_indices = [i for i, instr in enumerate(instrs) if instr.op is Op.SFENCE]
    points = set()
    for k in range(n_points):
        if fence_indices and k % 2 == 0:
            fence = rng.choice(fence_indices)
            points.add(min(n - 1, fence + 1 + rng.randrange(32)))
        else:
            points.add(rng.randrange(1, n))
    return sorted(points)


def probe_speculative_crash(
    trace: Trace, point: int, config: MachineConfig
) -> Tuple[List[str], bool]:
    """Run *trace* up to *point*, check invariants, then crash the machine.

    Returns ``(violations, was_speculating)``.
    """
    instrs = list(trace)
    model = PipelineModel(config)
    model.run(Trace(instrs[:point]), finish=False)
    errors = speculative_state_errors(model)
    was_speculating = model.epochs.speculating
    if was_speculating:
        oldest = model.epochs.oldest
        expected_resume = oldest.start_index
        committed_before = oldest.epoch_id
        resume = model.abort_speculation()
        if resume != expected_resume:
            errors.append(
                f"crash recovery resumed at {resume}, expected the oldest "
                f"uncommitted checkpoint {expected_resume} (epoch {committed_before})"
            )
        if len(model.ssb):
            errors.append(
                f"{len(model.ssb)} speculative SSB entries survived the crash "
                "(speculative stores must never become durable)"
            )
        if model.checkpoints.in_use:
            errors.append(
                f"{model.checkpoints.in_use} checkpoints still held after crash"
            )
        if model.epochs.speculating:
            errors.append("machine still speculating after crash rollback")
    return errors, was_speculating


# ----------------------------------------------------------------------
# multi-core: power cut in the middle of a conflict
# ----------------------------------------------------------------------
def probe_conflict_crash(
    abbrev: str, seed: int, contention: float = 0.9
) -> Tuple[List[str], dict]:
    """Cut power the instant a conflict abort fires on a 2-core system.

    The co-simulation stops immediately after the first remote-store
    abort — the aborting core freshly rolled back, the other core
    typically still speculating or draining its epochs.  Power then
    fails on every core: the machine-state invariants must hold, each
    still-speculating core must recover to its oldest uncommitted
    checkpoint with its SSB discarded and checkpoints freed, and no
    speculative store may have become durable.

    Returns ``(violations, context)``; scans a few seeds so the probe
    always lands on a run that actually conflicts.
    """
    config = MachineConfig().with_sp(256)
    for attempt in range(4):
        run = generate_concurrent(
            abbrev, PersistMode.LOG_P_SF, n_cores=2,
            contention=contention, seed=seed + attempt * 13,
        )
        system = SystemModel(config, n_cores=2)
        result = system.run(run.traces, finish=False, stop_after_aborts=1)
        if result.conflict_aborts:
            break
    else:
        return (
            [f"no conflict abort in 4 attempts at contention {contention}"],
            {"contention": contention},
        )

    errors: List[str] = []
    draining = 0
    speculating = 0
    for index, core in enumerate(system.cores):
        errors += [f"core {index}: {e}" for e in speculative_state_errors(core)]
        if core.epochs.speculating:
            speculating += 1
            draining += any(epoch.ended for epoch in core.epochs.active)
            expected_resume = core.epochs.oldest.start_index
            resume = core.abort_speculation()
            if resume != expected_resume:
                errors.append(
                    f"core {index} crash recovery resumed at {resume}, "
                    f"expected checkpoint {expected_resume}"
                )
        if len(core.ssb):
            errors.append(
                f"core {index}: {len(core.ssb)} speculative SSB entries "
                "survived the power cut"
            )
        if core.checkpoints.in_use:
            errors.append(
                f"core {index}: {core.checkpoints.in_use} checkpoints still held"
            )
        if core.epochs.speculating:
            errors.append(f"core {index} still speculating after the power cut")
    context = dict(
        contention=contention,
        aborts=system.conflict_aborts,
        speculating_at_cut=speculating,
        draining_at_cut=draining,
        generator_seed=run.seed,
    )
    return errors, context


def run_conflict_campaign(
    abbrev: str, seed: int, n_crashes: int = 6
):
    """Functional mid-transaction crashes on a shared-heap 2-core bench.

    Alternating cores issue transactions against the *shared* partition
    while :class:`CrashTester` cuts power at store boundaries inside
    them; recovery replays **every core's** undo log
    (:meth:`ConcurrentRun.recover_all`) and every partition must check
    out against its model — multi-log recovery under contention.
    """
    run = generate_concurrent(
        abbrev, PersistMode.LOG_P_SF, n_cores=2, contention=1.0,
        seed=seed, track_persistence=True,
    )
    shared = run.shared_partition
    rng = random.Random(seed ^ 0xC0FFEE)
    turn = [0]

    def operation():
        core = turn[0]
        turn[0] = (core + 1) % run.n_cores
        run.bench.set_active(core)
        shared.tx = run.bench.managers[core]
        return shared.operation(rng.randrange(shared._key_space))

    tester = CrashTester(
        run.bench.domain,
        operation,
        run.recover_all,
        run.check_invariants,
        seed=seed,
    )
    tester.campaign(n_crashes, max_point=48, stop_on_failure=True)
    return tester


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_crashfuzz(
    seed: int = 0,
    benchmarks: Iterable[str] = WORKLOADS,
    quick: bool = False,
    n_crashes: Optional[int] = None,
    n_probe_points: Optional[int] = None,
) -> EngineReport:
    """Run the full crash-consistency fuzzing engine."""
    benchmarks = list(benchmarks)
    n_crashes = n_crashes if n_crashes is not None else (4 if quick else 10)
    n_probe_points = (
        n_probe_points if n_probe_points is not None else (6 if quick else 12)
    )
    populate_ops = 40 if quick else 80
    report = EngineReport(
        engine="crash",
        seed=seed,
        params=dict(
            benchmarks=benchmarks,
            n_crashes=n_crashes,
            n_probe_points=n_probe_points,
            populate_ops=populate_ops,
        ),
    )

    # ---- exhaustive single-op sweeps --------------------------------
    # The deterministic complement to the random campaigns: one operation
    # per workload, a crash at EVERY store-event boundary.  Campaigns
    # sample sequences broadly; the sweep guarantees the narrow windows
    # (e.g. structure durable but logged-bit not yet cleared, where a
    # truncated undo log leaves a torn update) are always covered.
    for abbrev in benchmarks:
        workload = build_small_workload(abbrev, PersistMode.LOG_P_SF, seed)
        workload.populate(populate_ops)
        tester = CrashTester(
            workload.bench.domain,
            workload.random_operation,
            workload.recover,
            workload.check_invariants,
            seed=seed,
        )
        outcomes = tester.sweep(
            max_points=max(96, n_crashes * 16), stop_on_failure=True
        )
        bad = [o for o in outcomes if not o.invariants_ok]
        report.add(
            f"sweep/{abbrev}/log+p+sf",
            not bad,
            detail=(
                ""
                if not bad
                else "; ".join(
                    f"point {o.crash_point}: {o.detail}" for o in bad[:3]
                )
            ),
            abbrev=abbrev,
            mode=PersistMode.LOG_P_SF.value,
            points=len(outcomes),
        )

    # ---- functional campaigns ---------------------------------------
    for abbrev in benchmarks:
        tester = run_campaign(
            abbrev, PersistMode.LOG_P_SF, seed,
            populate_ops=populate_ops, n_crashes=n_crashes,
        )
        bad = [o for o in tester.outcomes if not o.invariants_ok]
        report.add(
            f"campaign/{abbrev}/log+p+sf",
            not bad,
            detail=(
                ""
                if not bad
                else "; ".join(
                    f"op {o.op_index} point {o.crash_point}: {o.detail}"
                    for o in bad[:3]
                )
            ),
            abbrev=abbrev,
            mode=PersistMode.LOG_P_SF.value,
            crashes=len(tester.outcomes),
            mid_operation=sum(o.crashed for o in tester.outcomes),
            tester_seed=tester.seed,
        )

    # negative control: the unfenced variant is NOT failure safe; record
    # what the fuzzer observes without failing the run (small campaigns
    # may or may not trip over the missing fences)
    for abbrev in benchmarks[:2]:
        tester = run_campaign(
            abbrev, PersistMode.LOG_P, seed,
            populate_ops=populate_ops, n_crashes=n_crashes,
        )
        bad = [o for o in tester.outcomes if not o.invariants_ok]
        report.add(
            f"negative-control/{abbrev}/log+p",
            True,
            detail=f"{len(bad)}/{len(tester.outcomes)} crashes inconsistent "
            "(expected: unfenced variant gives no durability guarantee)",
            abbrev=abbrev,
            mode=PersistMode.LOG_P.value,
            inconsistent=len(bad),
        )

    # ---- mid-speculation machine probes -----------------------------
    rng = random.Random(seed ^ 0x5BD1E995)
    config = MachineConfig().with_sp(256)
    trace_init, trace_sim = (100, 6) if quick else (200, 10)
    for abbrev in benchmarks:
        trace = build_trace(
            abbrev, PersistMode.LOG_P_SF, seed=seed,
            init_ops=trace_init, sim_ops=trace_sim,
        )
        points = speculation_probe_points(trace, rng, n_probe_points)
        speculative_hits = 0
        for point in points:
            errors, was_speculating = probe_speculative_crash(trace, point, config)
            speculative_hits += was_speculating
            report.add(
                f"sp-crash/{abbrev}/@{point}",
                not errors,
                detail="; ".join(errors[:3]),
                abbrev=abbrev,
                point=point,
                speculating=was_speculating,
            )
        report.add(
            f"sp-coverage/{abbrev}",
            speculative_hits > 0,
            detail=(
                f"{speculative_hits}/{len(points)} probe points landed "
                "mid-speculation"
                if speculative_hits
                else "no probe point observed live speculation — the "
                "SSB/checkpoint invariants were never exercised"
            ),
            abbrev=abbrev,
            probes=len(points),
            speculative=speculative_hits,
        )

    # ---- multi-core conflicts: machine-state + functional cuts ------
    mc_benchmarks = [ab for ab in benchmarks if ab in ("HM", "BT")]
    if quick:
        mc_benchmarks = mc_benchmarks[:1]
    for abbrev in mc_benchmarks:
        errors, context = probe_conflict_crash(abbrev, seed)
        report.add(
            f"mc-crash/{abbrev}/mid-conflict",
            not errors,
            detail="; ".join(errors[:3]),
            abbrev=abbrev,
            **context,
        )
        tester = run_conflict_campaign(
            abbrev, seed, n_crashes=max(3, n_crashes // 2)
        )
        bad = [o for o in tester.outcomes if not o.invariants_ok]
        report.add(
            f"mc-crash/{abbrev}/shared-partition-campaign",
            not bad,
            detail=(
                ""
                if not bad
                else "; ".join(
                    f"op {o.op_index} point {o.crash_point}: {o.detail}"
                    for o in bad[:3]
                )
            ),
            abbrev=abbrev,
            crashes=len(tester.outcomes),
            mid_operation=sum(o.crashed for o in tester.outcomes),
        )
    return report
