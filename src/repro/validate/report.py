"""Structured results for the validation subsystem.

Every engine reduces to a flat list of :class:`CheckResult` records — one
per asserted property — grouped into an :class:`EngineReport`; the
:class:`ValidationReport` aggregates the engines and serialises to the
JSON document ``python -m repro validate`` emits.  Each record carries the
seed it was derived from, so any reported failure names everything needed
to replay it (see docs/VALIDATION.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class CheckResult:
    """One asserted property: a name, a verdict, and replay context."""

    name: str
    ok: bool
    detail: str = ""
    seed: Optional[int] = None
    #: free-form replay context (benchmark, mode, crash point, shrunk
    #: trace, ...) — everything needed to reproduce the check.
    context: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"name": self.name, "ok": self.ok}
        if self.detail:
            data["detail"] = self.detail
        if self.seed is not None:
            data["seed"] = self.seed
        if self.context:
            data["context"] = self.context
        return data


@dataclass
class EngineReport:
    """All checks one engine ran, plus its configuration echo."""

    engine: str
    seed: int
    checks: List[CheckResult] = field(default_factory=list)
    #: the engine's effective parameters (sizes, case counts, ...).
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def add(
        self,
        name: str,
        ok: bool,
        detail: str = "",
        seed: Optional[int] = None,
        **context: object,
    ) -> CheckResult:
        result = CheckResult(
            name, ok, detail, self.seed if seed is None else seed, context
        )
        self.checks.append(result)
        return result

    def as_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "ok": self.ok,
            "params": self.params,
            "n_checks": len(self.checks),
            "n_failures": len(self.failures),
            "checks": [check.as_dict() for check in self.checks],
        }


@dataclass
class ValidationReport:
    """The full ``repro validate`` run."""

    seed: int
    quick: bool
    engines: Dict[str, EngineReport] = field(default_factory=dict)
    #: name of the injected mutation, when the run was deliberately broken
    #: (``--inject``); None for honest runs.
    injected: Optional[str] = None

    @property
    def ok(self) -> bool:
        return bool(self.engines) and all(e.ok for e in self.engines.values())

    def as_dict(self) -> Dict[str, object]:
        from repro.obs import metrics as obs_metrics

        supervisor = obs_metrics.supervisor_counters()
        return {
            "subsystem": "repro.validate",
            "seed": self.seed,
            "quick": self.quick,
            "injected": self.injected,
            "ok": self.ok,
            # fault-tolerance accounting: campaigns the supervisor ran for
            # the oracle's cache warm-up, and any recovery that fired —
            # a validation verdict obtained through retries/requeues is
            # still trustworthy (results are pure and merge-deterministic),
            # but the report says the run was not failure-free
            "supervisor": supervisor.as_dict(),
            # same rationale for the fleet transport: remote execution
            # with retries/reassignments yields the same verdicts, but
            # the report records that the fleet had to recover
            "transport": obs_metrics.transport_counters().as_dict(),
            "engines": {name: rep.as_dict() for name, rep in self.engines.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable run summary (printed alongside the JSON file)."""
        lines = [
            f"repro validate — seed {self.seed}"
            + (" (quick)" if self.quick else "")
            + (f" [injected: {self.injected}]" if self.injected else "")
        ]
        for name, engine in self.engines.items():
            verdict = "ok" if engine.ok else "FAILED"
            lines.append(
                f"  {name:<12} {len(engine.checks):>4} checks  "
                f"{len(engine.failures):>3} failures  {verdict}"
            )
            for failure in engine.failures[:8]:
                lines.append(f"    ! {failure.name}: {failure.detail}")
        from repro.obs import metrics as obs_metrics

        supervisor = obs_metrics.supervisor_counters()
        if supervisor.any_recovery():
            recovery = ", ".join(
                f"{value} {key}"
                for key, value in supervisor.as_dict().items()
                if value and key not in ("campaigns", "jobs")
            )
            lines.append(f"  supervisor recovered [{recovery}]")
        transport = obs_metrics.transport_counters()
        if transport.any_degradation():
            health = ", ".join(
                f"{value} {key}"
                for key, value in transport.as_dict().items()
                if value
            )
            lines.append(f"  transport recovered [{health}]")
        lines.append("overall: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)
