"""Named fault injections that the validators must catch.

A validation subsystem is only trustworthy if it can *fail*: each
mutation here deliberately breaks one invariant the paper relies on, by
monkey-patching the target component for the duration of a ``with``
block.  The test suite (and ``repro validate --inject NAME``) runs the
engines under each mutation and asserts the corresponding checks go red:

* ``bloom-drop-bits`` — the SSB bloom filter silently drops every third
  insert, creating false negatives: a speculative load would miss its
  own store's forwarding data.  Caught by the no-false-negative
  invariant (crash and trace fuzzers).
* ``undo-skip-tail`` — WAL recovery skips the newest undo entry,
  leaving a torn update in place after a crash.  Caught by the crash
  fuzzer's post-recovery invariant checks.
* ``fence-no-order`` — ``sfence`` discards pending flushes instead of
  completing them, so "flushed" data never becomes durable.  Caught by
  the crash fuzzer (and the recovery-equivalence oracle check).
* ``pipeline-skew`` — the optimised pipeline's batched compute path
  drifts one cycle per batch from the reference model.  Caught by the
  conformance oracle's pipeline-vs-reference differential (and the
  trace fuzzer's divergence property).  Patching ``_compute_batch``
  trips the pipeline's pristine-method deoptimisation guard
  (:func:`repro.uarch.pipeline._deoptimized`), so the model abandons its
  inlined segment walker and routes every run through the exact per-op
  loop where the patched method is actually called — the mutation bites
  even though the production fast path never calls ``_compute_batch``.

All patches are process-local and restored on exit; the engines consult
:func:`active_mutation` to bypass result caches while a fault is live.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, Optional

_active: Optional[str] = None


def active_mutation() -> Optional[str]:
    """Name of the currently injected mutation, or ``None``."""
    return _active


@contextlib.contextmanager
def _activate(name: str) -> Iterator[None]:
    global _active
    previous = _active
    _active = name
    try:
        yield
    finally:
        _active = previous


@contextlib.contextmanager
def _bloom_drop_bits() -> Iterator[None]:
    from repro.core.bloom import BloomFilter

    original = BloomFilter.insert
    state = {"count": 0}

    def broken_insert(self, block: int) -> None:
        state["count"] += 1
        if state["count"] % 3 == 0:
            self.inserts += 1  # counted but the bits never land
            return
        original(self, block)

    BloomFilter.insert = broken_insert
    try:
        with _activate("bloom-drop-bits"):
            yield
    finally:
        BloomFilter.insert = original


@contextlib.contextmanager
def _undo_skip_tail() -> Iterator[None]:
    from repro.txn.undolog import UndoLog

    original = UndoLog.entries

    def broken_entries(self):
        entries = original(self)
        # dropping the newest entry leaves the most recent pre-image
        # unrestored — exactly a torn, partially-undone transaction
        return entries[:-1] if entries else entries

    UndoLog.entries = broken_entries
    try:
        with _activate("undo-skip-tail"):
            yield
    finally:
        UndoLog.entries = original


@contextlib.contextmanager
def _fence_no_order() -> Iterator[None]:
    from repro.pmem.domain import PersistenceDomain

    original = PersistenceDomain.sfence

    def broken_sfence(self, meta=None) -> None:
        # the fence "completes" the flushes by forgetting them
        self._pending_flushes.clear()
        self.n_sfences += 1

    PersistenceDomain.sfence = broken_sfence
    try:
        with _activate("fence-no-order"):
            yield
    finally:
        PersistenceDomain.sfence = original


@contextlib.contextmanager
def _pipeline_skew() -> Iterator[None]:
    from repro.uarch.pipeline import PipelineModel

    original = PipelineModel._compute_batch

    def skewed_batch(self, count: int) -> None:
        original(self, count)
        self._last_retire += 1  # one-cycle drift per batch vs the reference

    PipelineModel._compute_batch = skewed_batch
    try:
        with _activate("pipeline-skew"):
            yield
    finally:
        PipelineModel._compute_batch = original


MUTATIONS: Dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "bloom-drop-bits": _bloom_drop_bits,
    "undo-skip-tail": _undo_skip_tail,
    "fence-no-order": _fence_no_order,
    "pipeline-skew": _pipeline_skew,
}


def inject(name: str) -> "contextlib.AbstractContextManager":
    """Context manager applying the named mutation (see :data:`MUTATIONS`)."""
    try:
        return MUTATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        ) from None
