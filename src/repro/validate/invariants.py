"""Machine-model invariants shared by the crash and trace fuzzers.

These are the §4 properties the paper's hardware must uphold at *every*
point of execution, phrased as checks over a (possibly mid-speculation)
:class:`~repro.uarch.pipeline.PipelineModel`:

* **SSB/epoch accounting** — SSB entries appear in epoch order, belong
  only to active epochs, and per-epoch entry counts match the epoch
  bookkeeping; occupancy never exceeds capacity.
* **Checkpoint accounting** — exactly one checkpoint is held per active
  epoch; none are held outside speculation.
* **Bloom no-false-negatives** — every block with a store currently in
  the SSB must hit in the bloom filter, otherwise a speculative load
  could miss its own forwarding data (a correctness bug, not a
  performance one).
* **Speculative non-durability** — while an epoch is uncommitted its
  stores live *only* in the SSB; commit is the sole path to the cache /
  memory controller.  Structurally this is the accounting invariant
  above; the functional half is asserted by the crash fuzzer through the
  persistence domain.
* **Quiescence** — outside speculation the SSB is empty and all
  checkpoints are free.
"""

from __future__ import annotations

from typing import List

from repro.core.ssb import SSBOp


def speculative_state_errors(model) -> List[str]:
    """Invariant violations in *model*'s speculative machine state.

    Valid at any point — mid-speculation (after ``run(..., finish=False)``)
    or after a completed run.  Returns human-readable violation strings;
    an empty list means every invariant holds.
    """
    errors: List[str] = []
    epochs = model.epochs
    ssb = model.ssb
    checkpoints = model.checkpoints

    if len(ssb) > ssb.capacity:
        errors.append(f"SSB over capacity: {len(ssb)} > {ssb.capacity}")

    active = list(epochs.active)
    active_ids = [epoch.epoch_id for epoch in active]
    if active_ids != sorted(active_ids):
        errors.append(f"active epochs out of order: {active_ids}")
    if checkpoints.in_use != len(active):
        errors.append(
            f"checkpoint accounting: {checkpoints.in_use} in use "
            f"for {len(active)} active epochs"
        )

    entries = ssb.entries()
    if not epochs.speculating:
        if entries:
            errors.append(f"SSB holds {len(entries)} entries outside speculation")
        return errors

    # entries must be grouped by epoch in commit (FIFO) order, and belong
    # only to active epochs
    entry_ids = [entry.epoch_id for entry in entries]
    if entry_ids != sorted(entry_ids):
        errors.append(f"SSB entries out of epoch order: {entry_ids[:16]}")
    stray = set(entry_ids) - set(active_ids)
    if stray:
        errors.append(f"SSB entries for non-active epochs: {sorted(stray)}")

    # per-epoch counts must match the epoch bookkeeping
    for epoch in active:
        stores = sum(
            1
            for entry in entries
            if entry.epoch_id == epoch.epoch_id and entry.op is SSBOp.STORE
        )
        flushes = sum(
            1
            for entry in entries
            if entry.epoch_id == epoch.epoch_id
            and entry.op in (SSBOp.CLWB, SSBOp.CLFLUSHOPT)
        )
        if stores != epoch.n_stores:
            errors.append(
                f"epoch {epoch.epoch_id}: {stores} SSB stores "
                f"vs n_stores={epoch.n_stores}"
            )
        if flushes != epoch.n_flushes:
            errors.append(
                f"epoch {epoch.epoch_id}: {flushes} SSB flushes "
                f"vs n_flushes={epoch.n_flushes}"
            )

    # bloom filter must never produce a false negative for a buffered store
    if model.config.bloom_enabled:
        store_blocks = {
            entry.block for entry in entries if entry.op is SSBOp.STORE
        }
        for block in sorted(store_blocks):
            if not model.bloom.maybe_contains(block):
                errors.append(
                    f"bloom false negative: SSB holds a store to block "
                    f"{block:#x} but the filter misses it"
                )

    # the BLT must cover every speculatively stored block (coherence
    # conflict detection soundness: a probe for a buffered block MUST hit)
    for entry in entries:
        if entry.op is SSBOp.STORE and not model.blt.probe(entry.block):
            errors.append(
                f"BLT unsound: speculative store block {entry.block:#x} "
                f"not covered (external probe would miss the conflict)"
            )
    return errors


def post_run_errors(model) -> List[str]:
    """Invariants for a machine that finished a trace (wind-down done)."""
    errors = speculative_state_errors(model)
    if model.epochs.speculating:
        errors.append(
            f"machine still speculating after wind-down "
            f"({len(model.epochs.active)} active epochs)"
        )
    if len(model.ssb):
        errors.append(f"SSB not empty after wind-down: {len(model.ssb)} entries")
    if model.checkpoints.in_use:
        errors.append(
            f"{model.checkpoints.in_use} checkpoints still held after wind-down"
        )
    return errors
