"""Trace-level property fuzzer (validation engine 3).

The benchmark traces exercise the machine models along the paths real
transactional workloads take; this engine attacks the models from the
other side, with *random* instruction traces drawn from a weighted
grammar (stores and flushes over a small hot block set, barrier triples,
lone fences, strong-ordering ops) — sequences no benchmark would emit
but the hardware must still handle.  For every generated trace it checks:

* **Differential equality** — the optimised :mod:`repro.uarch.pipeline`
  and the preserved reference model :mod:`repro.uarch.pipeline_ref` must
  produce identical :class:`~repro.stats.run.RunStats`, counter for
  counter, on every machine configuration of the conformance ablation
  matrix.  If one model raises, the other must raise the same error.
* **Architectural invariance** — retired instructions equal the trace
  length (when no rollback replayed work), on every configuration.
* **Post-run machine invariants** — the SSB/epoch/checkpoint/bloom/BLT
  invariants of :mod:`repro.validate.invariants` after wind-down.

Failures are shrunk to a minimal reproducer with a bounded ddmin-style
pass, and the reproducer (opcode list + generator seed) is embedded in
the report so any finding can be replayed directly.

Separately, the component-level property fuzzes hammer the bloom filter
(no false negative over random insert/query mixes) and the checkpoint
buffer (acquire/release accounting under random interleavings) in
isolation, where millions of operations are cheap.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.isa.instr import Instr
from repro.isa.ops import Op
from repro.isa.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import PipelineModel
from repro.uarch.pipeline_ref import ReferencePipelineModel
from repro.validate.conformance import ablation_matrix
from repro.validate.invariants import post_run_errors
from repro.validate.report import EngineReport

#: Weighted grammar of trace "atoms".  Each entry emits a short burst of
#: instructions; weights skew toward the store/flush/barrier mix that
#: keeps SP machinery (SSB, epochs, bloom, BLT) busy.
_ATOM_WEIGHTS: List[Tuple[str, int]] = [
    ("alu", 20),
    ("branch", 6),
    ("load", 12),
    ("store", 22),
    ("clwb", 10),
    ("clflushopt", 4),
    ("clflush", 2),
    ("barrier", 12),
    ("lone_sfence", 5),
    ("lone_mfence", 2),
    ("lone_pcommit", 2),
    ("xchg", 2),
    ("lock_rmw", 1),
]

#: A small hot set of cache blocks so stores collide, flushes hit dirty
#: lines, and the bloom filter / BLT see repeated blocks.
_N_HOT_BLOCKS = 24
_BLOCK = 64


def _random_addr(rng: random.Random) -> int:
    block = rng.randrange(_N_HOT_BLOCKS) * _BLOCK
    return 0x10000 + block + 8 * rng.randrange(8)


def generate_trace(seed: int, length: int = 120) -> Trace:
    """A random trace of roughly *length* instructions from the grammar."""
    rng = random.Random(seed)
    atoms, weights = zip(*_ATOM_WEIGHTS)
    instrs: List[Instr] = []
    while len(instrs) < length:
        atom = rng.choices(atoms, weights=weights)[0]
        if atom == "alu":
            instrs.extend(Instr(Op.ALU) for _ in range(rng.randint(1, 6)))
        elif atom == "branch":
            instrs.append(Instr(Op.BRANCH))
        elif atom == "load":
            instrs.append(Instr(Op.LOAD, _random_addr(rng)))
        elif atom == "store":
            instrs.extend(
                Instr(Op.STORE, _random_addr(rng))
                for _ in range(rng.randint(1, 4))
            )
        elif atom == "clwb":
            instrs.append(Instr(Op.CLWB, _random_addr(rng)))
        elif atom == "clflushopt":
            instrs.append(Instr(Op.CLFLUSHOPT, _random_addr(rng)))
        elif atom == "clflush":
            instrs.append(Instr(Op.CLFLUSH, _random_addr(rng)))
        elif atom == "barrier":
            instrs.extend(
                [Instr(Op.SFENCE), Instr(Op.PCOMMIT), Instr(Op.SFENCE)]
            )
        elif atom == "lone_sfence":
            instrs.append(Instr(Op.SFENCE))
        elif atom == "lone_mfence":
            instrs.append(Instr(Op.MFENCE))
        elif atom == "lone_pcommit":
            instrs.append(Instr(Op.PCOMMIT))
        elif atom == "xchg":
            instrs.append(Instr(Op.XCHG, _random_addr(rng)))
        elif atom == "lock_rmw":
            instrs.append(Instr(Op.LOCK_RMW, _random_addr(rng)))
    return Trace(instrs)


# ----------------------------------------------------------------------
# the differential property
# ----------------------------------------------------------------------
def _run_model(model_cls, trace: Trace, config: MachineConfig):
    """Run one model; returns ``(stats_dict, model, error_repr)``."""
    model = model_cls(config)
    try:
        stats = model.run(trace)
    except Exception as exc:  # noqa: BLE001 - the property is "same error"
        return None, model, f"{type(exc).__name__}: {exc}"
    return stats.as_dict(), model, None


def trace_property_violations(
    trace: Trace, config: MachineConfig
) -> List[str]:
    """All property violations of *trace* on *config* (empty = holds)."""
    fast, fast_model, fast_err = _run_model(PipelineModel, trace, config)
    ref, _, ref_err = _run_model(ReferencePipelineModel, trace, config)

    violations: List[str] = []
    if fast_err or ref_err:
        if fast_err != ref_err:
            violations.append(
                f"models disagree on failure: fast={fast_err!r} ref={ref_err!r}"
            )
        return violations  # matching exceptions: models agree, trace is just illegal

    diverged = {
        key: (fast[key], ref[key]) for key in fast if fast[key] != ref.get(key)
    }
    if diverged:
        violations.append(f"fast vs reference diverged: {diverged}")
    if not fast["rollbacks"] and fast["instructions"] != len(trace):
        violations.append(
            f"retired {fast['instructions']} instructions for a "
            f"{len(trace)}-instruction trace (no rollbacks)"
        )
    violations.extend(post_run_errors(fast_model))
    return violations


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_trace(
    trace: Trace,
    failing: Callable[[Trace], bool],
    max_evals: int = 200,
) -> Trace:
    """ddmin-style reduction of *trace* to a smaller failing reproducer.

    Greedily removes chunks (halving the chunk size as removals stop
    helping) while *failing* stays true, within a *max_evals* budget.
    Returns the smallest failing trace found (possibly the input).
    """
    instrs = list(trace)
    evals = 0
    chunk = max(1, len(instrs) // 2)
    while chunk >= 1 and evals < max_evals:
        removed_any = False
        start = 0
        while start < len(instrs) and evals < max_evals:
            candidate = instrs[:start] + instrs[start + chunk:]
            if not candidate:
                start += chunk
                continue
            evals += 1
            if failing(Trace(candidate)):
                instrs = candidate
                removed_any = True
                # retry at the same offset: the next chunk shifted down
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
    return Trace(instrs)


def _format_repro(trace: Trace) -> List[str]:
    """Compact replayable encoding of a (shrunk) trace."""
    out = []
    for instr in trace:
        if instr.is_memory():
            out.append(f"{instr.op.name}@{instr.addr:#x}")
        else:
            out.append(instr.op.name)
    return out


# ----------------------------------------------------------------------
# component-level property fuzzes
# ----------------------------------------------------------------------
def fuzz_bloom(seed: int, n_ops: int = 4000) -> Optional[str]:
    """Random insert/query mix; any false negative is a violation."""
    from repro.core.bloom import BloomFilter

    rng = random.Random(seed)
    bloom = BloomFilter()
    inserted: set = set()
    for _ in range(n_ops):
        block = rng.randrange(1 << 20) * _BLOCK
        if rng.random() < 0.5:
            bloom.insert(block)
            inserted.add(block)
        elif inserted and rng.random() < 0.8:
            member = rng.choice(tuple(inserted))
            if not bloom.maybe_contains(member):
                return (
                    f"false negative after {bloom.inserts} inserts: "
                    f"block {member:#x} was inserted but the filter misses it"
                )
        else:
            bloom.maybe_contains(block)  # non-members may hit (false positive)
    return None


def fuzz_checkpoints(seed: int, n_ops: int = 4000) -> Optional[str]:
    """Random acquire/release interleavings; accounting must balance."""
    from repro.core.checkpoints import CheckpointBuffer

    rng = random.Random(seed)
    capacity = rng.randint(1, 6)
    buffer = CheckpointBuffer(capacity)
    held: List[int] = []
    for step in range(n_ops):
        if buffer.in_use != len(held):
            return (
                f"step {step}: buffer reports {buffer.in_use} in use, "
                f"harness holds {len(held)}"
            )
        if buffer.available != (len(held) < capacity):
            return (
                f"step {step}: available={buffer.available} with "
                f"{len(held)}/{capacity} held"
            )
        if held and (rng.random() < 0.5 or len(held) == capacity):
            buffer.release(held.pop(rng.randrange(len(held))))
        elif len(held) < capacity:
            checkpoint = buffer.acquire(now=step)
            if checkpoint in held:
                return f"step {step}: acquire returned held slot {checkpoint}"
            held.append(checkpoint)
    return None


def fuzz_blt(seed: int, n_ops: int = 4000) -> Optional[str]:
    """Recorded blocks must always probe positive (conflict soundness)."""
    from repro.core.blt import BlockLookupTable

    rng = random.Random(seed)
    blt = BlockLookupTable()
    recorded: set = set()
    for step in range(n_ops):
        roll = rng.random()
        if roll < 0.45:
            block = rng.randrange(1 << 16) * _BLOCK
            blt.record(block)
            recorded.add(block)
        elif roll < 0.55:
            blt.clear()
            recorded.clear()
        elif recorded:
            member = rng.choice(tuple(recorded))
            if not blt.probe(member):
                return (
                    f"step {step}: recorded block {member:#x} not found "
                    "(an external probe would miss a real conflict)"
                )
    return None


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_tracefuzz(
    seed: int = 0,
    quick: bool = False,
    n_traces: Optional[int] = None,
    trace_length: Optional[int] = None,
    configs: Optional[Sequence[Tuple[str, MachineConfig]]] = None,
) -> EngineReport:
    """Run the full trace-level property fuzzing engine."""
    n_traces = n_traces if n_traces is not None else (24 if quick else 120)
    trace_length = trace_length if trace_length is not None else (80 if quick else 160)
    matrix = list(configs) if configs is not None else ablation_matrix()
    report = EngineReport(
        engine="tracefuzz",
        seed=seed,
        params=dict(
            n_traces=n_traces,
            trace_length=trace_length,
            configs=[label for label, _ in matrix],
        ),
    )

    checked = 0
    failures: Dict[str, int] = {}
    for index in range(n_traces):
        trace_seed = seed * 1_000_003 + index
        trace = generate_trace(trace_seed, trace_length)
        for label, config in matrix:
            checked += 1
            violations = trace_property_violations(trace, config)
            if not violations:
                continue
            failures[label] = failures.get(label, 0) + 1
            # shrink against the first observed violation class
            shrunk = shrink_trace(
                trace, lambda t: bool(trace_property_violations(t, config))
            )
            report.add(
                f"trace/{index}/{label}",
                False,
                detail="; ".join(violations[:3]),
                seed=trace_seed,
                config=label,
                trace_length=len(trace),
                shrunk_length=len(shrunk),
                shrunk_trace=_format_repro(shrunk),
            )
    report.add(
        "trace-properties",
        not failures,
        detail=(
            f"{checked} (trace, config) pairs checked"
            if not failures
            else f"failures by config: {failures}"
        ),
        traces=n_traces,
        pairs=checked,
    )

    # component-level property fuzzes
    component_ops = 2000 if quick else 8000
    for name, fuzz in (
        ("bloom-no-false-negative", fuzz_bloom),
        ("checkpoint-accounting", fuzz_checkpoints),
        ("blt-soundness", fuzz_blt),
    ):
        error = fuzz(seed, n_ops=component_ops)
        report.add(
            f"component/{name}",
            error is None,
            detail=error or f"{component_ops} randomized operations",
            ops=component_ops,
        )
    return report
