"""Differential validation subsystem (``python -m repro validate``).

Three engines, each attacking the reproduction from a different angle
(docs/VALIDATION.md has the full treatment):

``conformance``
    Differential oracle: every workload under every persistency mode and
    every SP ablation must produce bit-identical persistent end-state and
    recovery behaviour, and the optimised pipeline must match the
    preserved reference model counter-for-counter
    (:mod:`repro.validate.conformance`).
``crash``
    Multi-operation randomized crash campaigns plus mid-speculation
    machine probes asserting the SSB/checkpoint crash invariant
    (:mod:`repro.validate.crashfuzz`).
``tracefuzz``
    Random-trace property fuzzing with ddmin shrinking, plus
    component-level bloom/BLT/checkpoint property fuzzes
    (:mod:`repro.validate.tracefuzz`).

:func:`run_validation` orchestrates any subset and returns the
:class:`~repro.validate.report.ValidationReport` the CLI serialises.
Every randomized path is seeded from the single top-level ``--seed``;
the emitted report records each check's effective seed, so any failure
can be replayed exactly.

The subsystem can also deliberately sabotage itself:
:mod:`repro.validate.mutations` injects named faults (a lossy bloom
filter, a truncated undo log, a no-op fence, a skewed pipeline) so the
test suite can prove each engine actually catches the class of bug it
claims to.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.validate.conformance import run_conformance
from repro.validate.crashfuzz import run_crashfuzz
from repro.validate.mutations import MUTATIONS, active_mutation, inject
from repro.validate.report import CheckResult, EngineReport, ValidationReport
from repro.validate.tracefuzz import run_tracefuzz
from repro.workloads.registry import WORKLOADS

#: Engine registry, in the order ``repro validate`` runs them.
ENGINES = ("conformance", "crash", "tracefuzz")

#: Default report path for ``python -m repro validate``.
DEFAULT_REPORT = "VALIDATION_report.json"


def run_validation(
    seed: int = 0,
    engines: Optional[Sequence[str]] = None,
    benchmarks: Optional[Iterable[str]] = None,
    quick: bool = False,
    injected: Optional[str] = None,
) -> ValidationReport:
    """Run the selected validation *engines* and aggregate their reports.

    When *injected* names a mutation from :data:`MUTATIONS`, the engines
    run with that fault live — the expected outcome is a FAILING report
    (that the checks go red is itself checked by the test suite).
    """
    engine_names = list(engines) if engines else list(ENGINES)
    unknown = set(engine_names) - set(ENGINES)
    if unknown:
        raise ValueError(f"unknown engines {sorted(unknown)}; available: {ENGINES}")
    benchmarks = list(benchmarks) if benchmarks is not None else list(WORKLOADS)

    report = ValidationReport(seed=seed, quick=quick, injected=injected)

    def run_engines() -> None:
        if "conformance" in engine_names:
            report.engines["conformance"] = run_conformance(
                seed=seed, benchmarks=benchmarks, quick=quick
            )
        if "crash" in engine_names:
            report.engines["crash"] = run_crashfuzz(
                seed=seed, benchmarks=benchmarks, quick=quick
            )
        if "tracefuzz" in engine_names:
            report.engines["tracefuzz"] = run_tracefuzz(seed=seed, quick=quick)

    if injected:
        with inject(injected):
            run_engines()
    else:
        run_engines()
    return report


__all__ = [
    "CheckResult",
    "DEFAULT_REPORT",
    "ENGINES",
    "EngineReport",
    "MUTATIONS",
    "ValidationReport",
    "active_mutation",
    "inject",
    "run_conformance",
    "run_crashfuzz",
    "run_tracefuzz",
    "run_validation",
]
