"""Differential conformance oracle (validation engine 1).

The paper's central semantic claim: persistency machinery — undo logging,
PMEM instructions, fences, and the entire SP microarchitecture — changes
*when* data becomes durable, never *what* the program computes.  The
oracle checks that claim differentially, at two layers:

**Functional layer.**  Every workload is executed under every
:class:`~repro.txn.modes.PersistMode` with the same seed; the persistent
heap end-state (with the undo-log region masked — its contents are the
one legitimate mode difference) and the reference model must be
bit-identical to the eager fully-fenced WAL baseline (``LOG_P_SF``).
For failure-safe modes the oracle additionally performs the
*recovery-equivalence* check: an instant power failure after the run
followed by WAL recovery must reproduce the same masked heap image —
a fully committed history has nothing to lose and nothing to undo.

**Timing layer.**  The recorded trace of each variant is simulated on a
matrix of machine configurations — the eager baseline, SP, and every SP
ablation (bloom filter off, barrier-checkpoint coalescing off, small
SSB, reduced checkpoint buffer) — on *both* the optimised pipeline and
the preserved reference model (:mod:`repro.uarch.pipeline_ref`).  The
two implementations must agree counter-for-counter, and the retired
instruction count must be invariant across configurations (timing knobs
must never change the architectural work performed).

Each matrix cell is additionally re-simulated with a
:class:`~repro.obs.tracer.SpanTracer` attached (forcing the exact
per-op loop): the traced run must be counter-identical to the fast
path, its span set must agree with the RunStats counters, and the
stall-attribution buckets must decompose ``cycles`` exactly
(:mod:`repro.obs.attribution`) — so the observability layer can never
drift from the model it observes.

Because the optimised pipeline consumes the trace's columnar form and
segment list while the reference model iterates ``Instr`` rows, this
matrix also pins down the dual-representation contract: a trace's
columns, its lazily materialised rows, and its segmentation must all
describe the same instruction stream, or the two models diverge.

Traces come from the persistent content-keyed cache and, for honest
(non-mutated) runs, fast-model results go through the parallel variant
scheduler — the oracle reuses both PR-1 subsystems.  When a fault
injection is active (:mod:`repro.validate.mutations`) everything is
recomputed in-process so the mutation is actually exercised.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.harness.parallel import VariantJob, run_variants
from repro.harness.runner import build_trace, run_variant
from repro.obs import attribution_errors, consistency_errors
from repro.obs.attribution import system_attribution_errors
from repro.obs.tracer import SpanTracer, SystemTracer
from repro.uarch.pipeline import PipelineModel
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.uarch.pipeline_ref import simulate_reference
from repro.uarch.system import simulate_system
from repro.validate import mutations
from repro.validate.report import EngineReport
from repro.workloads.concurrent import generate_concurrent, serial_oracle_check
from repro.workloads.base import PersistentWorkload, Workbench
from repro.workloads.registry import PAPER_SPECS, WORKLOADS

#: Small structure parameters so conformance runs stay fast; mirrors the
#: test suite's sizing (paper-scale runs live under benchmarks/).
SMALL_PARAMS: Dict[str, dict] = {
    "GH": dict(n_vertices=16),
    "HM": dict(initial_capacity=64),
    "LL": dict(max_nodes=64),
    "SS": dict(n_strings=8),
    "AT": dict(key_space=128),
    "BT": dict(key_space=128),
    "RT": dict(key_space=128),
}

SMALL_HEAP = 1 << 22


def build_small_workload(
    abbrev: str, mode: PersistMode, seed: int, heap_size: int = SMALL_HEAP
) -> PersistentWorkload:
    """A small, persistence-tracked instance of one registered workload."""
    bench = Workbench(
        mode=mode,
        heap_size=heap_size,
        record=False,
        track_persistence=True,
        seed=seed,
    )
    return PAPER_SPECS[abbrev].factory(bench, **SMALL_PARAMS[abbrev])


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def masked_heap_digest(workload: PersistentWorkload) -> str:
    """SHA-256 of the heap image with the undo-log region zeroed.

    The log region's contents legitimately differ between modes (``BASE``
    never writes it, ``LOG`` fills it); everything else — structure
    nodes, metadata blocks, string payloads — must be bit-identical for
    the same seed regardless of mode.
    """
    image = bytearray(workload.bench.heap.snapshot())
    log = workload.tx.log
    image[log.base : log.base + log.capacity] = bytes(log.capacity)
    return hashlib.sha256(bytes(image)).hexdigest()


def model_digest(workload: PersistentWorkload) -> str:
    """Canonical digest of the Python-side reference model."""
    model = workload.model
    if isinstance(model, dict):
        canon: List = sorted((repr(k), repr(v)) for k, v in model.items())
    elif isinstance(model, (set, frozenset)):
        canon = sorted(repr(item) for item in model)
    else:  # ordered containers keep their order
        canon = [repr(item) for item in model]
    blob = json.dumps(canon, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def end_state_digests(
    abbrev: str, mode: PersistMode, seed: int, init_ops: int, sim_ops: int
) -> Tuple[str, str, Optional[str]]:
    """Run one variant to completion; returns ``(heap_digest,
    model_digest, invariant_error)``."""
    workload = build_small_workload(abbrev, mode, seed)
    workload.populate(init_ops)
    workload.run(sim_ops)
    return masked_heap_digest(workload), model_digest(workload), workload.check_invariants()


# ----------------------------------------------------------------------
# the configuration matrix for the timing differential
# ----------------------------------------------------------------------
def ablation_matrix() -> List[Tuple[str, MachineConfig]]:
    """Baseline, SP, and every SP ablation the oracle cross-checks."""
    base = MachineConfig()
    return [
        ("eager", base),
        ("sp256", base.with_sp(256)),
        ("sp256-no-bloom", base.with_sp(256, bloom_enabled=False)),
        ("sp256-no-coalesce", base.with_sp(256, coalesce_barrier_checkpoints=False)),
        ("sp32", base.with_sp(32)),
        ("sp256-ckpt2", base.with_sp(256, checkpoint_entries=2)),
    ]


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_conformance(
    seed: int = 0,
    benchmarks: Iterable[str] = WORKLOADS,
    quick: bool = False,
    init_ops: Optional[int] = None,
    sim_ops: Optional[int] = None,
    trace_init_ops: Optional[int] = None,
    trace_sim_ops: Optional[int] = None,
) -> EngineReport:
    """Run the full differential conformance oracle."""
    benchmarks = list(benchmarks)
    init_ops = init_ops if init_ops is not None else (40 if quick else 120)
    sim_ops = sim_ops if sim_ops is not None else (8 if quick else 16)
    trace_init_ops = (
        trace_init_ops if trace_init_ops is not None else (100 if quick else 200)
    )
    trace_sim_ops = (
        trace_sim_ops if trace_sim_ops is not None else (6 if quick else 10)
    )
    report = EngineReport(
        engine="conformance",
        seed=seed,
        params=dict(
            benchmarks=benchmarks,
            init_ops=init_ops,
            sim_ops=sim_ops,
            trace_init_ops=trace_init_ops,
            trace_sim_ops=trace_sim_ops,
        ),
    )

    # ---- functional layer -------------------------------------------
    for abbrev in benchmarks:
        digests: Dict[PersistMode, Tuple[str, str]] = {}
        for mode in PersistMode:
            heap_dig, model_dig, error = end_state_digests(
                abbrev, mode, seed, init_ops, sim_ops
            )
            report.add(
                f"invariants/{abbrev}/{mode.value}",
                error is None,
                detail=error or "",
                abbrev=abbrev,
                mode=mode.value,
            )
            digests[mode] = (heap_dig, model_dig)
        base_heap, base_model = digests[PersistMode.LOG_P_SF]
        for mode in PersistMode:
            heap_dig, model_dig = digests[mode]
            report.add(
                f"end-state/{abbrev}/{mode.value}",
                heap_dig == base_heap and model_dig == base_model,
                detail=(
                    ""
                    if heap_dig == base_heap and model_dig == base_model
                    else f"heap {heap_dig[:12]} vs {base_heap[:12]}, "
                    f"model {model_dig[:12]} vs {base_model[:12]}"
                ),
                abbrev=abbrev,
                mode=mode.value,
                heap_digest=heap_dig,
                model_digest=model_dig,
            )

        # recovery equivalence for the failure-safe baseline
        workload = build_small_workload(abbrev, PersistMode.LOG_P_SF, seed)
        workload.populate(init_ops)
        workload.run(sim_ops)
        pre_heap = masked_heap_digest(workload)
        pre_model = model_digest(workload)
        workload.bench.domain.crash()
        workload.recover()
        post_heap = masked_heap_digest(workload)
        error = workload.check_invariants()
        ok = post_heap == pre_heap and model_digest(workload) == pre_model and error is None
        report.add(
            f"recovery/{abbrev}",
            ok,
            detail=error
            or ("" if post_heap == pre_heap else "post-crash heap image diverged"),
            abbrev=abbrev,
            mode=PersistMode.LOG_P_SF.value,
        )

    # ---- timing layer -----------------------------------------------
    matrix = ablation_matrix()
    mutated = mutations.active_mutation() is not None
    if not mutated:
        # warm the trace + stats caches through the parallel scheduler
        # (supervised by default: worker deaths, hangs, and corrupted
        # cache entries are retried/requeued rather than failing the
        # oracle — see repro.harness.supervisor)
        jobs = [
            VariantJob(ab, PersistMode.BASE, MachineConfig(), seed,
                       trace_init_ops, trace_sim_ops)
            for ab in benchmarks
        ] + [
            VariantJob(ab, PersistMode.LOG_P_SF, config, seed,
                       trace_init_ops, trace_sim_ops)
            for ab in benchmarks
            for _, config in matrix
        ]
        warmed = run_variants(jobs)
        report.add(
            "campaign/warmup-complete",
            all(stats is not None for stats in warmed),
            detail="" if all(s is not None for s in warmed)
            else "scheduler returned incomplete results",
            n_jobs=len(jobs),
        )
    for abbrev in benchmarks:
        for mode, configs in (
            (PersistMode.BASE, matrix[:1]),
            (PersistMode.LOG_P_SF, matrix),
        ):
            trace = build_trace(
                abbrev, mode, seed=seed,
                init_ops=trace_init_ops, sim_ops=trace_sim_ops,
            )
            instruction_counts: Dict[str, int] = {}
            for label, config in configs:
                if mutated:
                    # recompute in-process so the injected fault is
                    # actually exercised (caches hold honest results)
                    fast = simulate(trace, config).as_dict()
                else:
                    fast = run_variant(
                        abbrev, mode, config, seed, trace_init_ops, trace_sim_ops
                    ).as_dict()
                ref = simulate_reference(trace, config).as_dict()
                diverged = {
                    key: (fast[key], ref[key])
                    for key in fast
                    if fast[key] != ref.get(key)
                }
                report.add(
                    f"pipeline-vs-ref/{abbrev}/{mode.value}/{label}",
                    not diverged,
                    detail="" if not diverged else f"diverged counters: {diverged}",
                    abbrev=abbrev,
                    mode=mode.value,
                    config=label,
                )
                # observability cross-check: a traced run must match the
                # fast path bit-for-bit, its spans must agree with the
                # counters, and attribution must sum to cycles exactly
                try:
                    tracer = SpanTracer()
                    traced = PipelineModel(config, tracer=tracer).run(trace)
                    problems: List[str] = []
                    if traced.as_dict() != fast:
                        problems.append("traced run diverged from fast path")
                    problems += consistency_errors(traced, tracer)
                    problems += attribution_errors(traced, tracer)
                except Exception as exc:  # mutations may legally break this
                    problems = [f"traced run raised {exc!r}"]
                report.add(
                    f"observability/{abbrev}/{mode.value}/{label}",
                    not problems,
                    detail="; ".join(problems),
                    abbrev=abbrev,
                    mode=mode.value,
                    config=label,
                )
                if not fast["rollbacks"]:
                    instruction_counts[label] = fast["instructions"]
            if len(set(instruction_counts.values())) > 1:
                report.add(
                    f"instruction-invariance/{abbrev}/{mode.value}",
                    False,
                    detail=f"retired instructions vary by config: {instruction_counts}",
                    abbrev=abbrev,
                    mode=mode.value,
                )
            else:
                report.add(
                    f"instruction-invariance/{abbrev}/{mode.value}",
                    True,
                    abbrev=abbrev,
                    mode=mode.value,
                )

    # ---- system layer (multi-core co-simulation) --------------------
    system_benchmarks = [ab for ab in benchmarks if ab in ("HM", "BT")]
    if quick:
        system_benchmarks = system_benchmarks[:1]
    for abbrev in system_benchmarks:
        _system_checks(report, abbrev, seed)
    return report


def _system_checks(report: EngineReport, abbrev: str, seed: int) -> None:
    """Multi-core conformance cell (see repro.uarch.system).

    Zero contention: a 2-core run over a shared heap must equal two
    independent single-core runs of the same per-core traces,
    counter-for-counter and cycle-for-cycle, with zero conflicts.
    Under contention: every abort must be replayed to commit (each core
    retires at least its trace's micro-op count) and the shared heap
    must match the serial oracle.
    """
    for label, config in (
        ("eager", MachineConfig()),
        ("sp256", MachineConfig().with_sp(256)),
    ):
        run = generate_concurrent(
            abbrev, PersistMode.LOG_P_SF, n_cores=2, contention=0.0,
            seed=seed + 17,
        )
        result = simulate_system(run.traces, config)
        problems: List[str] = []
        if result.conflict_aborts or result.store_broadcasts == 0:
            problems.append(
                f"expected broadcasts and no aborts, got "
                f"{result.store_broadcasts} broadcasts / "
                f"{result.conflict_aborts} aborts"
            )
        for index, trace in enumerate(run.traces):
            solo = simulate(trace, config).as_dict()
            system = result.per_core[index].as_dict()
            diverged = {
                key: (system[key], solo[key])
                for key in system
                if system[key] != solo.get(key)
            }
            if diverged:
                problems.append(f"core {index} diverged: {diverged}")
        report.add(
            f"system/{abbrev}/zero-contention/{label}",
            not problems,
            detail="; ".join(problems),
            abbrev=abbrev,
            cores=2,
            contention=0.0,
            config=label,
        )

    run = generate_concurrent(
        abbrev, PersistMode.LOG_P_SF, n_cores=2, contention=0.8,
        seed=seed + 17,
    )
    result = simulate_system(run.traces, MachineConfig().with_sp(256))
    problems = []
    if not result.conflict_aborts:
        problems.append("contention 0.8 produced no conflict aborts")
    for index, trace in enumerate(run.traces):
        stats = result.per_core[index]
        if stats.instructions < len(trace):
            problems.append(
                f"core {index} retired {stats.instructions} of "
                f"{len(trace)} micro-ops (abort not replayed to commit)"
            )
        if stats.conflict_abort_cycles and not stats.rollbacks:
            problems.append(f"core {index} counted abort cycles without rollbacks")
    error = serial_oracle_check(run)
    if error is not None:
        problems.append(error)
    report.add(
        f"system/{abbrev}/conflict-replay",
        not problems,
        detail="; ".join(problems),
        abbrev=abbrev,
        cores=2,
        contention=0.8,
        config="sp256",
    )

    # ---- system observability: a traced co-simulation must match the
    # untraced one counter-for-counter on every core, its per-core
    # attribution buckets must sum to that core's cycles exactly, and
    # the driver's conflict records must account for every abort
    system_tracer = SystemTracer(2)
    traced = simulate_system(
        run.traces, MachineConfig().with_sp(256), system_tracer=system_tracer,
    )
    problems = []
    for index, (traced_stats, plain_stats) in enumerate(
        zip(traced.per_core, result.per_core)
    ):
        traced_dict, plain_dict = traced_stats.as_dict(), plain_stats.as_dict()
        diverged = {
            key: (traced_dict[key], plain_dict[key])
            for key in traced_dict
            if traced_dict[key] != plain_dict.get(key)
        }
        if diverged:
            problems.append(f"core {index} traced run diverged: {diverged}")
    if traced.conflict_aborts != result.conflict_aborts:
        problems.append(
            f"traced run saw {traced.conflict_aborts} aborts, untraced "
            f"{result.conflict_aborts}"
        )
    problems += system_attribution_errors(traced, system_tracer)
    report.add(
        f"system/{abbrev}/observability",
        not problems,
        detail="; ".join(problems),
        abbrev=abbrev,
        cores=2,
        contention=0.8,
        config="sp256",
    )
