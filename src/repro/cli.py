"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print Tables 1-3.
``figure {8,9,10,11,12,13,14}``
    Regenerate one figure of the paper's evaluation.
``headline``
    The abstract's numbers (fence overhead over Log+P, with/without SP).
``run ABBREV``
    Run one benchmark through every variant and print its row.
``crashtest ABBREV``
    Sweep crash injections through one benchmark and report consistency.
``report [PATH]``
    Regenerate everything into a markdown report (default: stdout).
``bench``
    Time cold/warm harness runs and pipeline throughput
    (writes ``BENCH_harness.json``).
``trace WORKLOAD``
    Capture one cycle-resolved traced run and export it as Chrome
    trace-event JSON (loadable in Perfetto / ``chrome://tracing``),
    printing the stall-attribution breakdown.  See docs/OBSERVABILITY.md.
``cache {info,clear}``
    Inspect or empty the persistent ``.repro-cache`` store.
``validate``
    Run the differential validation subsystem (conformance oracle,
    crash-consistency fuzzer, trace property fuzzer) and write a JSON
    report; exits non-zero on any failed check.  See docs/VALIDATION.md.

``figure``, ``report``, ``run``, ``bench``, and ``validate`` accept
``--kernel {auto,python,numpy}`` to pick the simulation kernel backend
(exported as ``REPRO_KERNEL`` so parallel workers inherit it; both
backends are cycle-identical — see docs/PERFORMANCE.md).  ``run``
accepts ``--scale paper`` to simulate Table 1's full operation counts
instead of the scaled defaults.

``figure``, ``report``, ``run``, and ``bench`` accept ``--jobs N`` to fan
variant simulation across N worker processes (default: all cores);
results are merged deterministically, so the output is byte-identical
for any job count.  They also accept ``--metrics-out PATH`` to dump the
harness's own metrics (cache hit/miss counters, per-variant wall time
and worker attribution) as JSON, and print a one-line summary of the
same after their regular output.

Multi-worker campaigns run under the fault-tolerant supervisor
(:mod:`repro.harness.supervisor`; see ``docs/RESILIENCE.md``).  The
commands above plus ``validate`` accept ``--resume`` (skip cells an
interrupted campaign already journaled), ``--no-supervise`` (the plain
PR-1 scheduler, byte-identical output), ``--job-timeout SECONDS`` (the
per-job watchdog deadline), and ``--failures-out PATH`` (structured
report of timeouts/retries/quarantines/pool rebuilds).

Fleet mode (``docs/RESILIENCE.md`` §8): the same commands accept
``--transport http --workers HOST:PORT[,...]`` to execute cells on
remote workers started with ``python -m repro worker --listen
HOST:PORT``; results merge byte-identically to local runs.
``python -m repro serve`` runs the long-lived sweep service.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import (
    fig8_overheads,
    fig9_instruction_counts,
    fig10_fetch_stalls,
    fig11_inflight_pcommits,
    fig12_stores_per_pcommit,
    fig13_ssb_sweep,
    fig14_bloom_fp,
    fig15_concurrent_speedup,
    fig15_contention_report,
    headline_claim,
    render_bar_table,
    table1_text,
    table2_text,
    table3_text,
)
from repro.harness import cache as harness_cache
from repro.harness import parallel
from repro.harness.bench import (
    DEFAULT_HISTORY,
    DEFAULT_OUTPUT,
    PIPELINE_IPS_FLOORS,
    check_floor,
    compare_to_history,
    load_history,
    render_bench,
    render_compare,
    run_bench,
)
from repro.harness.figures import GEOMEAN, render_scalar_series
from repro.harness.parallel import prefetch_variants
from repro.harness.runner import run_system, run_variant
from repro.pmem.crash import CrashTester
from repro.txn.modes import PersistMode
from repro.uarch.config import MachineConfig
from repro import validate as validation
from repro.workloads.registry import PAPER_SPECS, WORKLOADS, build_workload


def _figure_text(number: int, benchmarks: Optional[List[str]] = None) -> str:
    columns = list(benchmarks or WORKLOADS)
    if number == 8:
        return render_bar_table(
            "Figure 8: execution-time overhead vs baseline",
            fig8_overheads(columns), columns=columns + [GEOMEAN],
        )
    if number == 9:
        return render_bar_table(
            "Figure 9: instruction-count ratio to baseline",
            fig9_instruction_counts(columns), fmt="{:7.2f}", columns=columns,
        )
    if number == 10:
        return render_bar_table(
            "Figure 10: fetch-queue stall cycles / baseline cycles",
            fig10_fetch_stalls(columns), fmt="{:7.2f}", columns=columns,
        )
    if number == 11:
        return render_scalar_series(
            "Figure 11: maximum in-flight pcommits (Log+P)",
            fig11_inflight_pcommits(columns), fmt="{:8d}",
        )
    if number == 12:
        return render_scalar_series(
            "Figure 12: avg stores while a pcommit is outstanding (Log+P)",
            fig12_stores_per_pcommit(columns),
        )
    if number == 13:
        data = fig13_ssb_sweep(columns)
        return render_bar_table(
            "Figure 13: SP overhead over baseline vs SSB size",
            {f"SSB{size}": row for size, row in data.items()},
            columns=columns + [GEOMEAN],
        )
    if number == 14:
        return render_scalar_series(
            "Figure 14: bloom-filter false-positive rate (SP256)",
            fig14_bloom_fp(columns), fmt="{:8.3f}",
        )
    if number == 15:
        concurrent = [ab for ab in columns if ab in ("HM", "BT")] or None
        data = fig15_concurrent_speedup(concurrent)
        table = render_bar_table(
            "Figure 15 (new): SP speedup over Log+P+Sf, cores x contention",
            data, fmt="{:7.2f}x", columns=list(next(iter(data.values()))),
        )
        report = fig15_contention_report(concurrent)
        lines = ["", "Contention attribution (SP256 legs):"]
        lines += [
            f"  {cell:<14}: {row['aborts']:7.0f} aborts, "
            f"{row['replayed%']:5.1f}% replayed work, "
            f"{row['skew%']:4.1f}% core skew"
            for cell, row in report.items()
        ]
        return table + "\n".join(lines)
    raise ValueError(f"no figure {number} in the paper's evaluation")


def _headline_text() -> str:
    data = headline_claim()
    return (
        "Headline (geomean over the 7 benchmarks):\n"
        f"  persist-barrier overhead over Log+P : "
        f"{data['fence_overhead_vs_logp']:+.1%}  (paper: +20.3%)\n"
        f"  with speculative persistence        : "
        f"{data['sp_overhead_vs_logp']:+.1%}  (paper: +3.6%)"
    )


def _run_text(abbrev: str, scale: str = "scaled") -> str:
    machine = MachineConfig()
    spec = PAPER_SPECS[abbrev]
    if scale == "paper":
        # Table-1 operation counts: traces run to tens of millions of
        # micro-ops, so skip the multi-process prefetch (each worker
        # would regenerate the same huge trace) and simulate in-process
        # on the batch kernel.
        init_ops: Optional[int] = spec.paper_init_ops
        sim_ops: Optional[int] = spec.paper_sim_ops
    else:
        init_ops = sim_ops = None
        prefetch_variants(
            [(abbrev, mode, machine) for mode in PersistMode]
            + [(abbrev, PersistMode.LOG_P_SF, machine.with_sp(256))]
        )
    base = run_variant(
        abbrev, PersistMode.BASE, machine, init_ops=init_ops, sim_ops=sim_ops
    )
    title = f"{spec.name} ({abbrev})"
    if scale == "paper":
        title += (
            f" — paper scale ({spec.paper_init_ops:,} init ops,"
            f" {spec.paper_sim_ops:,} sim ops)"
        )
    lines = [title]
    lines.append(f"{'variant':<12}{'cycles':>14}{'overhead':>10}{'IPC':>7}")
    for mode in PersistMode:
        stats = run_variant(
            abbrev, mode, machine, init_ops=init_ops, sim_ops=sim_ops
        )
        lines.append(
            f"{mode.label:<12}{stats.cycles:>14,}"
            f"{stats.overhead_vs(base):>10.1%}{stats.ipc:>7.2f}"
        )
    sp = run_variant(
        abbrev, PersistMode.LOG_P_SF, machine.with_sp(256),
        init_ops=init_ops, sim_ops=sim_ops,
    )
    lines.append(
        f"{'SP256':<12}{sp.cycles:>14,}{sp.overhead_vs(base):>10.1%}{sp.ipc:>7.2f}"
    )
    return "\n".join(lines)


def _run_system_text(abbrev: str, cores: int, contention: float) -> str:
    """Multi-core variant table: shared-heap transactions on N cores."""
    machine = MachineConfig()
    spec = PAPER_SPECS[abbrev]
    title = (
        f"{spec.name} ({abbrev}) — {cores} cores over one shared heap, "
        f"contention p={contention:g}"
    )
    lines = [title]
    lines.append(
        f"{'variant':<12}{'makespan':>14}{'overhead':>10}"
        f"{'aborts':>8}{'replayed':>10}"
    )
    base = run_system(
        abbrev, PersistMode.BASE, machine, cores=cores, contention=contention
    )
    rows = [(mode.label, mode, machine) for mode in PersistMode]
    rows.append(("SP256", PersistMode.LOG_P_SF, machine.with_sp(256)))
    for label, mode, config in rows:
        stats = run_system(
            abbrev, mode, config, cores=cores, contention=contention
        )
        lines.append(
            f"{label:<12}{stats.cycles:>14,}"
            f"{stats.overhead_vs(base):>10.1%}"
            f"{int(stats.extra.get('conflict_aborts', 0)):>8}"
            f"{int(stats.extra.get('replayed_instructions', 0)):>10}"
        )
    return "\n".join(lines)


def _crashtest_text(abbrev: str, points: int, seed: int) -> str:
    workload = build_workload(
        abbrev, PersistMode.LOG_P_SF, track_persistence=True, seed=seed
    )
    workload.populate(min(PAPER_SPECS[abbrev].scaled_init_ops, 400))
    keys = iter(range(1_000_000))
    tester = CrashTester(
        workload.bench.domain,
        lambda: workload.operation((next(keys) * 37) % workload._key_space),
        workload.recover,
        workload.check_invariants,
        seed=seed,
    )
    outcomes = tester.sweep(max_points=points)
    bad = [o for o in outcomes if not o.invariants_ok]
    lines = [
        f"{PAPER_SPECS[abbrev].name} ({abbrev}): "
        f"{len(outcomes)} crash points, "
        f"{sum(o.crashed for o in outcomes)} mid-operation"
    ]
    if bad:
        lines.append("INCONSISTENT:")
        lines.extend(f"  point {o.crash_point}: {o.detail}" for o in bad[:10])
    else:
        lines.append("all crash points recovered consistently")
    return "\n".join(lines)


def _report_text() -> str:
    sections = [
        "# Reproduction report",
        "",
        "Generated by `python -m repro report`.",
        "",
        "```", table1_text(), "```", "",
        "```", table2_text(), "```", "",
        "```", table3_text(), "```", "",
    ]
    for number in (8, 9, 10, 11, 12, 13, 14):
        sections += ["```", _figure_text(number), "```", ""]
    sections += ["```", _headline_text(), "```", ""]
    return "\n".join(sections)


def _trace_system_command(args) -> int:
    """Capture one traced multi-core run: per-core attribution, the
    contention report, and a multi-track Perfetto export with flow
    arrows from each aggressor store to its victim's abort."""
    from repro.obs.attribution import attribute_system, system_attribution_errors
    from repro.obs.capture import traced_system_run
    from repro.obs.perfetto import (
        summarize_chrome_trace,
        validate_chrome_trace,
        write_system_chrome_trace,
    )

    try:
        result, system_tracer, info = traced_system_run(
            args.workload,
            mode=args.mode,
            cores=args.cores,
            contention=args.contention,
            seed=args.seed,
            init_ops=args.init_ops,
            sim_ops=args.sim_ops,
        )
    except ValueError as exc:
        print(exc)
        return 2
    path = write_system_chrome_trace(
        args.out, system_tracer, per_core_stats=result.per_core, meta=info,
    )
    n_events = validate_chrome_trace(path)
    print(
        f"{info['workload_name']} ({info['workload']}) on {info['mode']}"
        f" [{info['persist_mode']}], seed {info['seed']}:"
        f" {info['cores']} cores, contention {info['contention']:g},"
        f" {sum(info['trace_lens']):,} trace ops, {result.cycles:,}"
        f" cycles makespan"
    )
    print(attribute_system(result, system_tracer).render())
    problems = system_attribution_errors(result, system_tracer)
    if problems:
        print("OBSERVABILITY INVARIANT VIOLATIONS:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    summary = summarize_chrome_trace(path)
    print(
        f"wrote {n_events} trace events to {path}: "
        f"{summary['processes']} process groups, {summary['tracks']} "
        f"tracks, {summary['flows']} conflict flow arrows "
        f"(open in ui.perfetto.dev)"
    )
    return 0


def _trace_command(args) -> int:
    """Capture one traced run, print its attribution, export Perfetto JSON."""
    from repro.obs import attribution_errors, consistency_errors
    from repro.obs.attribution import attribute
    from repro.obs.capture import traced_run
    from repro.obs.perfetto import validate_chrome_trace, write_chrome_trace

    if getattr(args, "cores", 1) > 1:
        return _trace_system_command(args)
    if getattr(args, "contention", 0.0):
        print("--contention needs --cores >= 2")
        return 2
    try:
        stats, tracer, info = traced_run(
            args.workload,
            mode=args.mode,
            seed=args.seed,
            init_ops=args.init_ops,
            sim_ops=args.sim_ops,
        )
    except ValueError as exc:
        print(exc)
        return 2
    path = write_chrome_trace(args.out, tracer, stats=stats, meta=info)
    n_events = validate_chrome_trace(path)
    print(
        f"{info['workload_name']} ({info['workload']}) on {info['mode']}"
        f" [{info['persist_mode']}], seed {info['seed']}:"
        f" {info['trace_len']:,} trace ops, {stats.cycles:,} cycles"
    )
    print(attribute(stats, tracer).render())
    print(
        f"spans: {tracer.span_count('sfence_drain')} sfence drains,"
        f" {tracer.span_count('pcommit')} pcommits,"
        f" {tracer.span_count('epoch')} epochs,"
        f" {len(tracer.instants('rollback'))} rollbacks"
    )
    problems = consistency_errors(stats, tracer) + attribution_errors(stats, tracer)
    if problems:
        print("OBSERVABILITY INVARIANT VIOLATIONS:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"wrote {n_events} trace events to {path} (open in ui.perfetto.dev)")
    return 0


def _print_metrics(args) -> None:
    """The post-command harness-metrics hook (one line + optional JSON).

    Goes to stderr: the command's stdout is the data product and must stay
    byte-identical across serial/parallel and cold/warm runs, while the
    accounting line carries wall-clock times and cache hit counts that
    legitimately differ run to run.
    """
    from repro.obs import metrics as obs_metrics

    if getattr(args, "metrics_out", None):
        path = obs_metrics.write_metrics(args.metrics_out)
        print(f"metrics written to {path}", file=sys.stderr)
    line = obs_metrics.render_metrics_line()
    if line:
        print(line, file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculative Persistence (ISCA 2017) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(sub_parser):
        sub_parser.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for variant simulation "
                 "(default: all cores; 1 = serial)",
        )

    def add_metrics_out(sub_parser):
        sub_parser.add_argument(
            "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
            help="write harness metrics (cache counters, per-variant "
                 "wall time/worker) as JSON to PATH",
        )

    def add_kernel(sub_parser):
        sub_parser.add_argument(
            "--kernel", choices=("auto", "python", "numpy"), default=None,
            help="simulation kernel backend: 'numpy' for the vectorized "
                 "batch kernel, 'python' for the pure-Python segment "
                 "walker, 'auto' to pick numpy when available (default: "
                 "REPRO_KERNEL, then auto); both are cycle-identical",
        )
        sub_parser.add_argument(
            "--classify", choices=("auto", "batch", "scalar"), default=None,
            help="cache classification pass of the numpy kernel: 'batch' "
                 "pins the set-partitioned stack-distance engine, "
                 "'scalar' pins the per-access walk, 'auto' routes each "
                 "batch by its eligibility probe (default: "
                 "REPRO_CLASSIFY, then auto); all are cycle-identical",
        )

    def add_supervise(sub_parser):
        sub_parser.add_argument(
            "--resume", action="store_true",
            help="resume an interrupted campaign: cells recorded in the "
                 "campaign journal are loaded from cache, only the "
                 "missing ones are re-simulated",
        )
        sub_parser.add_argument(
            "--no-supervise", action="store_true", dest="no_supervise",
            help="bypass the fault-tolerant supervisor (no retries, "
                 "timeouts, or journals); output is byte-identical",
        )
        sub_parser.add_argument(
            "--job-timeout", type=float, default=None, metavar="SECONDS",
            dest="job_timeout",
            help="wall-clock deadline per pool job before the watchdog "
                 "kills and requeues it (default: 300, or "
                 "REPRO_JOB_TIMEOUT)",
        )
        sub_parser.add_argument(
            "--failures-out", default=None, metavar="PATH",
            dest="failures_out",
            help="write a structured failure/recovery report (retries, "
                 "timeouts, quarantines, pool rebuilds) as JSON to PATH",
        )

    def add_transport(sub_parser):
        sub_parser.add_argument(
            "--transport", choices=("local", "http"), default=None,
            help="where campaign cells execute: 'local' (in-process "
                 "pool) or 'http' (remote workers; needs --workers or "
                 "REPRO_WORKERS; default: REPRO_TRANSPORT, then local)",
        )
        sub_parser.add_argument(
            "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
            help="comma-separated endpoints of 'repro worker' processes "
                 "for the http transport (default: REPRO_WORKERS)",
        )

    sub.add_parser("tables", help="print Tables 1-3")

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("number", type=int, choices=range(8, 16))
    figure.add_argument(
        "--benchmarks", nargs="*", choices=WORKLOADS, default=None,
        help="restrict to a subset (default: all seven)",
    )
    add_jobs(figure)
    add_metrics_out(figure)
    add_supervise(figure)
    add_transport(figure)
    add_kernel(figure)

    sub.add_parser("headline", help="the abstract's claim")

    run = sub.add_parser("run", help="run one benchmark across variants")
    run.add_argument("abbrev", choices=WORKLOADS)
    run.add_argument(
        "--scale", choices=("scaled", "paper"), default="scaled",
        help="operation counts: 'scaled' (the registry's reduced "
             "defaults) or 'paper' (Table 1's #InitOps/#SimOps — traces "
             "of tens of millions of micro-ops; needs the numpy kernel "
             "to finish in minutes)",
    )
    run.add_argument(
        "--cores", type=int, default=1,
        help="simulate N cores over a shared heap (repro.uarch.system); "
             "1 = the paper's single-core run",
    )
    run.add_argument(
        "--contention", type=float, default=0.0,
        help="per-transaction probability of touching the shared "
             "partition (multi-core runs only)",
    )
    add_jobs(run)
    add_metrics_out(run)
    add_supervise(run)
    add_transport(run)
    add_kernel(run)

    trace = sub.add_parser(
        "trace",
        help="capture a cycle-resolved traced run as Chrome trace-event "
             "JSON (Perfetto)",
    )
    trace.add_argument(
        "workload",
        help="benchmark abbrev or name (BT, btree, hash-map, ...)",
    )
    trace.add_argument(
        "--mode", default="sp256", metavar="MODE",
        help="machine setup: base, log, log_p, log_p_sf, sp32, sp256, "
             "sp1024, or sp_unlim (default: sp256)",
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output JSON path (default: trace.json)",
    )
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument(
        "--init-ops", type=int, default=None, dest="init_ops",
        help="override the workload's populate op count",
    )
    trace.add_argument(
        "--sim-ops", type=int, default=None, dest="sim_ops",
        help="override the workload's measured op count",
    )
    trace.add_argument(
        "--cores", type=int, default=1,
        help="co-simulate this many cores sharing one persistence "
             "domain: one Perfetto track group per core plus the "
             "shared-domain tracks and conflict flow arrows (default: 1)",
    )
    trace.add_argument(
        "--contention", type=float, default=0.0,
        help="per-transaction probability of touching the shared "
             "partition (multi-core traces only, default: 0.0)",
    )

    crash = sub.add_parser("crashtest", help="sweep crash injection")
    crash.add_argument("abbrev", choices=WORKLOADS)
    crash.add_argument("--points", type=int, default=32)
    crash.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="full markdown report")
    report.add_argument("path", nargs="?", default=None)
    add_jobs(report)
    add_metrics_out(report)
    add_supervise(report)
    add_transport(report)
    add_kernel(report)

    bench = sub.add_parser(
        "bench", help="time cold/warm harness runs and pipeline throughput"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="cheap two-benchmark smoke variant (CI)",
    )
    bench.add_argument(
        "--output", default=DEFAULT_OUTPUT, metavar="PATH",
        help=f"where to write the JSON record (default: {DEFAULT_OUTPUT})",
    )
    bench.add_argument(
        "--enforce-floor", action="store_true",
        help="exit non-zero if pipeline_ips falls below the checked-in "
             "regression floor (used by CI)",
    )
    bench.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH",
        help="append the record to this JSON-lines trail "
             f"(default: {DEFAULT_HISTORY}; pass '' to skip)",
    )
    bench.add_argument(
        "--compare", nargs="?", const="", default=None, metavar="REF",
        help="compare against the best comparable prior record in the "
             "history trail (optionally only records whose git_rev "
             "starts with REF); warn-only — regressions are printed but "
             "never change the exit code",
    )
    add_jobs(bench)
    add_metrics_out(bench)
    add_supervise(bench)
    add_transport(bench)
    add_kernel(bench)

    cache = sub.add_parser("cache", help="persistent result cache maintenance")
    cache.add_argument("action", choices=("info", "clear"))

    validate = sub.add_parser(
        "validate", help="run the differential validation subsystem"
    )
    validate.add_argument(
        "--engine", action="append", choices=validation.ENGINES, default=None,
        metavar="ENGINE", dest="engines",
        help="run only this engine (repeatable; default: all three)",
    )
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--quick", action="store_true",
        help="reduced case counts and sizes (CI smoke variant)",
    )
    validate.add_argument(
        "--benchmarks", nargs="*", choices=WORKLOADS, default=None,
        help="restrict to a subset (default: all seven)",
    )
    validate.add_argument(
        "--inject", choices=sorted(validation.MUTATIONS), default=None,
        metavar="MUTATION",
        help="deliberately inject a named fault (the run SHOULD fail; "
             "used to demonstrate the validators catch real bugs)",
    )
    validate.add_argument(
        "--report", default=validation.DEFAULT_REPORT, metavar="PATH",
        help=f"where to write the JSON report "
             f"(default: {validation.DEFAULT_REPORT}; '-' to skip)",
    )
    add_jobs(validate)
    add_supervise(validate)
    add_transport(validate)
    add_kernel(validate)

    worker = sub.add_parser(
        "worker",
        help="serve campaign cells over HTTP for a remote coordinator "
             "(the fleet worker; see docs/RESILIENCE.md §8)",
    )
    worker.add_argument(
        "--listen", default="127.0.0.1:8750", metavar="HOST:PORT",
        help="bind address (default: 127.0.0.1:8750; port 0 picks a "
             "free port and prints it)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N", dest="max_jobs",
        help="exit after serving N jobs (tests/CI)",
    )
    add_kernel(worker)

    serve = sub.add_parser(
        "serve",
        help="long-running simulation-as-a-service endpoint: POST /sweep "
             "streams per-cell results, GET /metrics reports health",
    )
    serve.add_argument(
        "--listen", default="127.0.0.1:8800", metavar="HOST:PORT",
        help="bind address (default: 127.0.0.1:8800; port 0 picks a "
             "free port and prints it)",
    )
    add_jobs(serve)
    add_supervise(serve)
    add_transport(serve)
    add_kernel(serve)
    return parser


def _configure_supervisor(args) -> None:
    """Apply the --resume/--no-supervise/--job-timeout flags."""
    from repro.harness import supervisor

    if getattr(args, "no_supervise", False):
        supervisor.set_enabled(False)
    if getattr(args, "resume", False):
        supervisor.set_resume(True)
    if getattr(args, "job_timeout", None) is not None:
        supervisor.set_job_timeout(args.job_timeout)


def _configure_transport(args) -> Optional[str]:
    """Apply --transport/--workers; returns an error message if the
    combination is unusable."""
    from repro.harness import transport

    if getattr(args, "transport", None):
        transport.set_transport(args.transport)
    if getattr(args, "workers", None):
        transport.set_workers(args.workers.split(","))
    try:
        if transport.configured_transport() == "http":
            addresses = transport.worker_addresses()
            if not addresses:
                return (
                    "--transport http needs worker endpoints "
                    "(--workers HOST:PORT[,HOST:PORT...] or REPRO_WORKERS)"
                )
            for address in addresses:
                transport.parse_hostport(address)
    except transport.TransportConfigError as exc:
        return str(exc)
    return None


def _write_failures(args) -> None:
    """Write the --failures-out recovery report, if requested."""
    if getattr(args, "failures_out", None):
        from repro.harness import supervisor

        path = supervisor.write_failure_report(args.failures_out)
        print(f"failure report written to {path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "jobs", None) is not None:
        parallel.set_default_jobs(args.jobs)
    if getattr(args, "kernel", None):
        # exported rather than threaded through every call site so that
        # parallel worker processes inherit the same backend choice; the
        # backends are cycle-identical, so this never affects results or
        # cache keys, only wall-clock speed
        import os

        os.environ["REPRO_KERNEL"] = args.kernel
    if getattr(args, "classify", None):
        # same worker-inheritance rationale as --kernel; classification
        # modes are cycle-identical so only wall-clock speed can differ
        import os

        os.environ["REPRO_CLASSIFY"] = args.classify
    _configure_supervisor(args)
    transport_error = _configure_transport(args)
    if transport_error:
        print(transport_error, file=sys.stderr)
        return 2
    if args.command == "worker":
        from repro.harness.worker import serve_worker

        return serve_worker(args.listen, max_jobs=args.max_jobs)
    if args.command == "serve":
        from repro.harness.service import serve_service

        return serve_service(args.listen, jobs=args.jobs)
    if args.command == "tables":
        print(table1_text())
        print()
        print(table2_text())
        print()
        print(table3_text())
    elif args.command == "figure":
        print(_figure_text(args.number, args.benchmarks))
        _print_metrics(args)
    elif args.command == "headline":
        print(_headline_text())
    elif args.command == "run":
        if args.cores > 1:
            print(_run_system_text(args.abbrev, args.cores, args.contention))
        else:
            if args.contention:
                parser.error("--contention needs --cores >= 2")
            print(_run_text(args.abbrev, scale=args.scale))
        _print_metrics(args)
    elif args.command == "trace":
        return _trace_command(args)
    elif args.command == "crashtest":
        print(_crashtest_text(args.abbrev, args.points, args.seed))
    elif args.command == "report":
        text = _report_text()
        if args.path:
            with open(args.path, "w") as handle:
                handle.write(text)
            print(f"report written to {args.path}")
        else:
            print(text)
        _print_metrics(args)
    elif args.command == "bench":
        record = run_bench(
            quick=args.quick, output=args.output,
            history=args.history or None,
        )
        print(render_bench(record))
        if args.output:
            print(f"record written to {args.output}")
        if args.compare is not None:
            # warn-only by design: history baselines come from whatever
            # machines ran before, so a miss is a signal, not a verdict
            history = load_history(args.history or DEFAULT_HISTORY)
            if args.history and history:
                history = history[:-1]  # this run's own appended record
            print(render_compare(
                compare_to_history(record, history, ref=args.compare or None)
            ))
        _print_metrics(args)
        if args.enforce_floor:
            error = check_floor(record)
            if error:
                print(error)
                return 1
            floors = ", ".join(
                f"{backend} >= {floor:,}"
                for backend, floor in sorted(PIPELINE_IPS_FLOORS.items())
            )
            print(f"pipeline_ips floors ok ({floors} instr/s)")
    elif args.command == "cache":
        if args.action == "clear":
            removed = harness_cache.clear_cache()
            print(f"removed {removed} cached entries")
        else:
            for key, value in harness_cache.cache_info().items():
                if isinstance(value, dict):
                    print(f"{key:>17}:")
                    for sub_key, sub_value in value.items():
                        print(f"{sub_key:>27}: {sub_value}")
                else:
                    print(f"{key:>17}: {value}")
    elif args.command == "validate":
        result = validation.run_validation(
            seed=args.seed,
            engines=args.engines,
            benchmarks=args.benchmarks,
            quick=args.quick,
            injected=args.inject,
        )
        if args.report != "-":
            path = result.write(args.report)
            print(f"report written to {path}")
        print(result.summary())
        _write_failures(args)
        harness_cache.persist_cache_counters()
        return 0 if result.ok else 1
    _write_failures(args)
    harness_cache.persist_cache_counters()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
