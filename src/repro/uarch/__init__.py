"""Timing models: cache hierarchy, memory controller/NVMM, OOO pipeline.

The pipeline is a trace-driven sliding-window model of the paper's baseline
core (Table 2): 4-wide fetch/dispatch/retire, a 128-entry ROB, a 48-entry
fetch queue, in-order retirement, and the sfence retirement rules of the
PMEM persistency model.  It reproduces the first-order phenomenon the paper
studies — retirement stalling at ``sfence-pcommit-sfence`` sequences while
memory-controller write-pending queues drain — and, with speculation enabled
(:mod:`repro.core`), their removal.
"""

from repro.uarch.config import (
    CacheConfig,
    MachineConfig,
    SSB_LATENCY_TABLE,
    ssb_latency,
)
from repro.uarch.caches import CacheLevel, CacheHierarchy
from repro.uarch.memctrl import MemoryController, MemoryControllerArray
from repro.uarch.pipeline import PipelineModel, simulate

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "SSB_LATENCY_TABLE",
    "ssb_latency",
    "CacheLevel",
    "CacheHierarchy",
    "MemoryController",
    "MemoryControllerArray",
    "PipelineModel",
    "simulate",
]
