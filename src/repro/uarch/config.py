"""Machine configuration — paper Tables 2 and 3.

All latencies are in core cycles at the paper's 2.1 GHz clock; the NVMM
latencies (50 ns read / 150 ns write) convert to 105 / 315 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Table 3 — SSB size (entries) to access latency (cycles).
SSB_LATENCY_TABLE: Dict[int, int] = {32: 2, 64: 3, 128: 4, 256: 5, 512: 7, 1024: 10}


def ssb_latency(entries: int) -> int:
    """Access latency of an SSB with *entries* entries (paper Table 3)."""
    try:
        return SSB_LATENCY_TABLE[entries]
    except KeyError:
        raise ValueError(
            f"no Table-3 latency for SSB size {entries}; "
            f"valid sizes: {sorted(SSB_LATENCY_TABLE)}"
        ) from None


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    ways: int
    latency: int
    block_size: int = 64

    @property
    def n_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.block_size)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"cache produces non-power-of-two set count {sets}")
        return sets


@dataclass(frozen=True)
class PipelineConfig:
    """Execution-engine knobs: *how* the simulator runs, not *what* it
    models.

    Deliberately separate from :class:`MachineConfig` — both backends
    are cycle-for-cycle identical by contract, so the backend choice
    must never enter config hashing, result caching, or trace keys.

    ``kernel`` is ``auto`` (numpy when importable, else Python),
    ``python`` (force the segment walker), or ``numpy`` (force the
    vectorized kernel; warns once and degrades to Python if numpy is
    missing or too old).  ``kernel_min_batch`` is the batch length below
    which the kernel defers to the walker — the kernel's fixed per-batch
    cost only amortises past about a thousand instructions per
    event-free span.
    """

    kernel: str = "auto"
    kernel_min_batch: int = 1024


@dataclass(frozen=True)
class MachineConfig:
    """The baseline system of paper Table 2 plus SP knobs.

    ``clock_ghz`` is informational; all latencies below are in cycles.
    """

    # core
    clock_ghz: float = 2.1
    width: int = 4                 # fetch/issue/retire width
    rob_entries: int = 128
    fetchq_entries: int = 48
    issueq_entries: int = 48
    lsq_entries: int = 48
    fetch_to_dispatch: int = 3     # front-end depth in cycles

    # caches (L1D / L2 / L3)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 8, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8, 11))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 20))

    # NVMM (50 ns read / 150 ns write at 2.1 GHz)
    nvmm_read_cycles: int = 105
    nvmm_write_cycles: int = 315
    nvmm_banks: int = 16           # WPQ drain parallelism (MCs x banks)
    wpq_entries: int = 64
    mc_roundtrip: int = 20         # core <-> memory-controller ack latency
    #: >1 instantiates a MemoryControllerArray: blocks interleave across
    #: controllers and pcommit waits for acknowledgement from all of them
    #: (the paper's plural "memory controllers" semantics).
    n_memory_controllers: int = 1

    # speculative persistence
    sp_enabled: bool = False
    ssb_entries: int = 256
    checkpoint_entries: int = 4
    bloom_bytes: int = 512
    bloom_hashes: int = 2
    checkpoint_cycles: int = 1     # cycles to snapshot the register state
    drain_per_cycle: int = 4       # SSB entries replayed per cycle at commit
    #: paper §4.2.2 optimisation: one checkpoint per sfence-pcommit-sfence.
    #: Disabling it models the naive design where each fence of the
    #: sequence takes its own checkpoint (the ablation the paper argues
    #: against: "it would be wasteful to devote an entire checkpoint to a
    #: single pcommit instruction").
    coalesce_barrier_checkpoints: bool = True
    #: Bloom filter in front of the SSB.  Disabling it makes every
    #: speculative load pay the SSB CAM latency (ablation).
    bloom_enabled: bool = True
    #: Pipeline-refill penalty after a rollback to the oldest checkpoint.
    #: The paper notes rollback cost is nearly irrelevant (speculation
    #: fails only on coherence conflicts / real system failures).
    rollback_penalty: int = 20

    @property
    def ssb_latency(self) -> int:
        return ssb_latency(self.ssb_entries)

    def with_sp(self, ssb_entries: int = 256, **overrides) -> "MachineConfig":
        """A copy of this config with speculation enabled."""
        from dataclasses import replace

        return replace(self, sp_enabled=True, ssb_entries=ssb_entries, **overrides)

    def ns_to_cycles(self, ns: float) -> int:
        return int(round(ns * self.clock_ghz))
